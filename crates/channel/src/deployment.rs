//! Node deployments: geometric placements of sensor nodes around a base
//! station.
//!
//! The case study describes "1600 nodes uniformly distributed in a circular
//! area around a base-station". [`Deployment::uniform_disc`] realizes that
//! geometry; combined with a distance-based
//! [`PathLossModel`] it yields a per-node
//! path-loss population, and [`Deployment::channel_partition`] splits the
//! population over the 16 channels as the paper does (100 nodes/channel).

use wsn_units::Meters;

use wsn_phy::noise::UniformSource;

use crate::pathloss::PathLossModel;
use wsn_units::Db;

/// A point in the deployment plane, in meters, with the base station at the
/// origin.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Position {
    /// East coordinate.
    pub x: f64,
    /// North coordinate.
    pub y: f64,
}

impl Position {
    /// Distance from the base station at the origin.
    pub fn range(&self) -> Meters {
        Meters::new((self.x * self.x + self.y * self.y).sqrt())
    }
}

/// A set of node positions around a central base station.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Deployment {
    positions: Vec<Position>,
    radius: Meters,
}

impl Deployment {
    /// Places `n` nodes uniformly (by area) in a disc of radius `radius`.
    ///
    /// Uses inverse-CDF sampling (`r = R·√u`) so density is uniform per
    /// unit area, as in the paper's scenario.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive.
    pub fn uniform_disc<U: UniformSource>(n: usize, radius: Meters, rng: &mut U) -> Self {
        assert!(radius.meters() > 0.0, "deployment radius must be positive");
        let positions = (0..n)
            .map(|_| {
                let r = radius.meters() * rng.next_f64().sqrt();
                let theta = core::f64::consts::TAU * rng.next_f64();
                Position {
                    x: r * theta.cos(),
                    y: r * theta.sin(),
                }
            })
            .collect();
        Deployment { positions, radius }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The disc radius.
    pub fn radius(&self) -> Meters {
        self.radius
    }

    /// Node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Distances of every node from the base station.
    pub fn ranges(&self) -> Vec<Meters> {
        self.positions.iter().map(Position::range).collect()
    }

    /// Per-node path losses under a distance-based model.
    pub fn path_losses<M: PathLossModel>(&self, model: &M) -> Vec<Db> {
        self.positions
            .iter()
            .map(|p| model.path_loss(p.range()))
            .collect()
    }

    /// Splits node indices round-robin over `channels` channels — the
    /// paper's 1600-node / 16-channel partition yields 100 nodes per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn channel_partition(&self, channels: usize) -> Vec<Vec<usize>> {
        assert!(channels > 0, "at least one channel required");
        let mut parts = vec![Vec::new(); channels];
        for i in 0..self.positions.len() {
            parts[i % channels].push(i);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::LogDistance;
    use wsn_phy::noise::SplitMix64;

    #[test]
    fn all_nodes_inside_disc() {
        let mut rng = SplitMix64::new(1);
        let d = Deployment::uniform_disc(500, Meters::new(50.0), &mut rng);
        assert_eq!(d.len(), 500);
        assert!(!d.is_empty());
        for p in d.positions() {
            assert!(p.range().meters() <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn density_is_uniform_by_area() {
        // In a uniform-area disc, the inner half-radius circle holds 1/4 of
        // the nodes.
        let mut rng = SplitMix64::new(2);
        let d = Deployment::uniform_disc(20_000, Meters::new(10.0), &mut rng);
        let inner = d.ranges().iter().filter(|r| r.meters() <= 5.0).count() as f64;
        let frac = inner / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "inner fraction {frac}");
    }

    #[test]
    fn paper_partition_is_100_per_channel() {
        let mut rng = SplitMix64::new(3);
        let d = Deployment::uniform_disc(1600, Meters::new(30.0), &mut rng);
        let parts = d.channel_partition(16);
        assert_eq!(parts.len(), 16);
        assert!(parts.iter().all(|p| p.len() == 100));
        // Every node appears exactly once.
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1600);
    }

    #[test]
    fn path_losses_increase_with_range() {
        let mut rng = SplitMix64::new(4);
        let d = Deployment::uniform_disc(100, Meters::new(40.0), &mut rng);
        let model = LogDistance::indoor_2450();
        let losses = d.path_losses(&model);
        let ranges = d.ranges();
        // The farthest node has at least the loss of the nearest node.
        let (near_idx, _) = ranges
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.meters().total_cmp(&b.1.meters()))
            .unwrap();
        let (far_idx, _) = ranges
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.meters().total_cmp(&b.1.meters()))
            .unwrap();
        assert!(losses[far_idx] >= losses[near_idx]);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = Deployment::uniform_disc(64, Meters::new(10.0), &mut SplitMix64::new(9));
        let b = Deployment::uniform_disc(64, Meters::new(10.0), &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let _ = Deployment::uniform_disc(1, Meters::ZERO, &mut SplitMix64::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let d = Deployment::uniform_disc(4, Meters::new(1.0), &mut SplitMix64::new(0));
        let _ = d.channel_partition(0);
    }
}
