//! Node deployments: geometric placements of sensor nodes around a base
//! station.
//!
//! The case study describes "1600 nodes uniformly distributed in a circular
//! area around a base-station". [`Deployment::uniform_disc`] realizes that
//! geometry; combined with a distance-based
//! [`PathLossModel`] it yields a per-node
//! path-loss population, and [`Deployment::channel_partition`] splits the
//! population over the 16 channels as the paper does (100 nodes/channel).

use wsn_units::Meters;

use wsn_phy::noise::UniformSource;

use crate::pathloss::PathLossModel;
use wsn_units::Db;

/// A point in the deployment plane, in meters, with the base station at the
/// origin.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Position {
    /// East coordinate.
    pub x: f64,
    /// North coordinate.
    pub y: f64,
}

impl Position {
    /// Distance from the base station at the origin.
    pub fn range(&self) -> Meters {
        Meters::new((self.x * self.x + self.y * self.y).sqrt())
    }
}

/// A set of node positions around a central base station.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Deployment {
    positions: Vec<Position>,
    radius: Meters,
}

impl Deployment {
    /// Places `n` nodes uniformly (by area) in a disc of radius `radius`.
    ///
    /// Uses inverse-CDF sampling (`r = R·√u`) so density is uniform per
    /// unit area, as in the paper's scenario.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive.
    pub fn uniform_disc<U: UniformSource>(n: usize, radius: Meters, rng: &mut U) -> Self {
        assert!(radius.meters() > 0.0, "deployment radius must be positive");
        let positions = (0..n)
            .map(|_| {
                let r = radius.meters() * rng.next_f64().sqrt();
                let theta = core::f64::consts::TAU * rng.next_f64();
                Position {
                    x: r * theta.cos(),
                    y: r * theta.sin(),
                }
            })
            .collect();
        Deployment { positions, radius }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The disc radius.
    pub fn radius(&self) -> Meters {
        self.radius
    }

    /// Node positions.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Distances of every node from the base station.
    pub fn ranges(&self) -> Vec<Meters> {
        self.positions.iter().map(Position::range).collect()
    }

    /// Per-node path losses under a distance-based model.
    pub fn path_losses<M: PathLossModel>(&self, model: &M) -> Vec<Db> {
        self.positions
            .iter()
            .map(|p| model.path_loss(p.range()))
            .collect()
    }

    /// Splits node indices round-robin over `channels` channels — the
    /// paper's 1600-node / 16-channel partition yields 100 nodes per
    /// channel.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn channel_partition(&self, channels: usize) -> Vec<Vec<usize>> {
        assert!(channels > 0, "at least one channel required");
        let mut parts = vec![Vec::new(); channels];
        for i in 0..self.positions.len() {
            parts[i % channels].push(i);
        }
        parts
    }

    /// Splits node indices into `channels` contiguous index blocks (the
    /// first `⌈n/channels⌉`-ish nodes on channel 0, and so on). Useful when
    /// the deployment was generated group-by-group — e.g.
    /// [`clustered`](Self::clustered) emits nodes cluster-major, so a
    /// contiguous partition assigns one cluster per channel.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn contiguous_partition(&self, channels: usize) -> Vec<Vec<usize>> {
        assert!(channels > 0, "at least one channel required");
        let n = self.positions.len();
        let base = n / channels;
        let extra = n % channels;
        let mut parts = Vec::with_capacity(channels);
        let mut next = 0usize;
        for c in 0..channels {
            let take = base + usize::from(c < extra);
            parts.push((next..next + take).collect());
            next += take;
        }
        parts
    }

    /// Splits node indices into `channels` concentric distance bands: nodes
    /// are sorted by range from the base station and the nearest block goes
    /// to channel 0, the farthest to channel `channels − 1`. This is the
    /// *ring-stratified* allocation — every channel sees a narrow path-loss
    /// band instead of the full population, which concentrates the weak
    /// links (and their retries) on the outer channels.
    ///
    /// Ties are broken by node index, so the partition is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn ring_partition(&self, channels: usize) -> Vec<Vec<usize>> {
        assert!(channels > 0, "at least one channel required");
        let mut order: Vec<usize> = (0..self.positions.len()).collect();
        order.sort_by(|&a, &b| {
            self.positions[a]
                .range()
                .meters()
                .total_cmp(&self.positions[b].range().meters())
                .then(a.cmp(&b))
        });
        let n = order.len();
        let base = n / channels;
        let extra = n % channels;
        let mut parts = Vec::with_capacity(channels);
        let mut next = 0usize;
        for c in 0..channels {
            let take = base + usize::from(c < extra);
            parts.push(order[next..next + take].to_vec());
            next += take;
        }
        parts
    }

    /// Places `per_ring` nodes on each of the given concentric `radii`
    /// (uniform random angles), emitting nodes ring-major: ring 0's nodes
    /// first. The disc radius is the largest ring radius.
    ///
    /// # Panics
    ///
    /// Panics if `radii` is empty or any radius is not strictly positive.
    pub fn rings<U: UniformSource>(per_ring: usize, radii: &[Meters], rng: &mut U) -> Self {
        assert!(!radii.is_empty(), "at least one ring required");
        assert!(
            radii.iter().all(|r| r.meters() > 0.0),
            "ring radii must be positive"
        );
        let mut positions = Vec::with_capacity(per_ring * radii.len());
        for &radius in radii {
            for _ in 0..per_ring {
                let theta = core::f64::consts::TAU * rng.next_f64();
                positions.push(Position {
                    x: radius.meters() * theta.cos(),
                    y: radius.meters() * theta.sin(),
                });
            }
        }
        let radius = radii
            .iter()
            .copied()
            .fold(Meters::ZERO, Meters::max);
        Deployment { positions, radius }
    }

    /// Places `clusters × per_cluster` nodes in compact clusters: cluster
    /// centers are spread evenly around a circle of radius
    /// `field_radius − cluster_radius`, and each cluster's nodes are
    /// uniform (by area) in a disc of `cluster_radius` around its center.
    /// Nodes are emitted cluster-major, so
    /// [`contiguous_partition`](Self::contiguous_partition) maps one
    /// cluster per channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cluster_radius < field_radius` and
    /// `clusters > 0`.
    pub fn clustered<U: UniformSource>(
        clusters: usize,
        per_cluster: usize,
        field_radius: Meters,
        cluster_radius: Meters,
        rng: &mut U,
    ) -> Self {
        assert!(clusters > 0, "at least one cluster required");
        assert!(
            cluster_radius.meters() > 0.0 && cluster_radius < field_radius,
            "cluster radius must be in (0, field radius)"
        );
        let ring = field_radius.meters() - cluster_radius.meters();
        let mut positions = Vec::with_capacity(clusters * per_cluster);
        for c in 0..clusters {
            let phi = core::f64::consts::TAU * c as f64 / clusters as f64;
            let (cx, cy) = (ring * phi.cos(), ring * phi.sin());
            for _ in 0..per_cluster {
                let r = cluster_radius.meters() * rng.next_f64().sqrt();
                let theta = core::f64::consts::TAU * rng.next_f64();
                positions.push(Position {
                    x: cx + r * theta.cos(),
                    y: cy + r * theta.sin(),
                });
            }
        }
        Deployment {
            positions,
            radius: field_radius,
        }
    }
}

/// Groups node indices by an explicit node→channel assignment: entry `c` of
/// the result lists the nodes assigned to channel `c`, in node-index order.
///
/// This is the inverse view of the partition methods above — where
/// [`Deployment::channel_partition`] *produces* an allocation,
/// `assignment_partition` *consumes* one (e.g. an adaptive re-allocation
/// computed from observed per-channel failure rates) and lowers it back to
/// the per-channel index lists the simulator compiles from.
///
/// # Panics
///
/// Panics if `channels == 0` or any assignment entry is `≥ channels`.
///
/// # Examples
///
/// ```
/// use wsn_channel::assignment_partition;
///
/// let parts = assignment_partition(&[0, 1, 0, 2, 1], 3);
/// assert_eq!(parts, vec![vec![0, 2], vec![1, 4], vec![3]]);
/// ```
pub fn assignment_partition(assignment: &[usize], channels: usize) -> Vec<Vec<usize>> {
    assert!(channels > 0, "at least one channel required");
    let mut parts = vec![Vec::new(); channels];
    for (node, &channel) in assignment.iter().enumerate() {
        assert!(
            channel < channels,
            "node {node} assigned to channel {channel} of {channels}"
        );
        parts[channel].push(node);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::LogDistance;
    use wsn_phy::noise::SplitMix64;

    #[test]
    fn all_nodes_inside_disc() {
        let mut rng = SplitMix64::new(1);
        let d = Deployment::uniform_disc(500, Meters::new(50.0), &mut rng);
        assert_eq!(d.len(), 500);
        assert!(!d.is_empty());
        for p in d.positions() {
            assert!(p.range().meters() <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn density_is_uniform_by_area() {
        // In a uniform-area disc, the inner half-radius circle holds 1/4 of
        // the nodes.
        let mut rng = SplitMix64::new(2);
        let d = Deployment::uniform_disc(20_000, Meters::new(10.0), &mut rng);
        let inner = d.ranges().iter().filter(|r| r.meters() <= 5.0).count() as f64;
        let frac = inner / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "inner fraction {frac}");
    }

    #[test]
    fn paper_partition_is_100_per_channel() {
        let mut rng = SplitMix64::new(3);
        let d = Deployment::uniform_disc(1600, Meters::new(30.0), &mut rng);
        let parts = d.channel_partition(16);
        assert_eq!(parts.len(), 16);
        assert!(parts.iter().all(|p| p.len() == 100));
        // Every node appears exactly once.
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1600);
    }

    #[test]
    fn path_losses_increase_with_range() {
        let mut rng = SplitMix64::new(4);
        let d = Deployment::uniform_disc(100, Meters::new(40.0), &mut rng);
        let model = LogDistance::indoor_2450();
        let losses = d.path_losses(&model);
        let ranges = d.ranges();
        // The farthest node has at least the loss of the nearest node.
        let (near_idx, _) = ranges
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.meters().total_cmp(&b.1.meters()))
            .unwrap();
        let (far_idx, _) = ranges
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.meters().total_cmp(&b.1.meters()))
            .unwrap();
        assert!(losses[far_idx] >= losses[near_idx]);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = Deployment::uniform_disc(64, Meters::new(10.0), &mut SplitMix64::new(9));
        let b = Deployment::uniform_disc(64, Meters::new(10.0), &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let _ = Deployment::uniform_disc(1, Meters::ZERO, &mut SplitMix64::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let d = Deployment::uniform_disc(4, Meters::new(1.0), &mut SplitMix64::new(0));
        let _ = d.channel_partition(0);
    }

    #[test]
    fn contiguous_partition_covers_in_index_order() {
        let d = Deployment::uniform_disc(10, Meters::new(5.0), &mut SplitMix64::new(6));
        let parts = d.contiguous_partition(3);
        assert_eq!(parts.len(), 3);
        // 10 = 4 + 3 + 3, indices in order.
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6]);
        assert_eq!(parts[2], vec![7, 8, 9]);
    }

    #[test]
    fn ring_partition_stratifies_by_range() {
        let mut rng = SplitMix64::new(7);
        let d = Deployment::uniform_disc(400, Meters::new(30.0), &mut rng);
        let parts = d.ring_partition(4);
        assert!(parts.iter().all(|p| p.len() == 100));
        let ranges = d.ranges();
        // Every node of band k is no farther than every node of band k+1.
        for k in 0..3 {
            let outer_of_k = parts[k]
                .iter()
                .map(|&i| ranges[i].meters())
                .fold(0.0, f64::max);
            let inner_of_next = parts[k + 1]
                .iter()
                .map(|&i| ranges[i].meters())
                .fold(f64::INFINITY, f64::min);
            assert!(outer_of_k <= inner_of_next + 1e-12, "band {k} overlaps");
        }
        // All indices appear exactly once.
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn rings_place_nodes_at_exact_radii() {
        let mut rng = SplitMix64::new(8);
        let radii = [Meters::new(5.0), Meters::new(15.0), Meters::new(25.0)];
        let d = Deployment::rings(20, &radii, &mut rng);
        assert_eq!(d.len(), 60);
        assert_eq!(d.radius(), Meters::new(25.0));
        for (i, p) in d.positions().iter().enumerate() {
            let want = radii[i / 20].meters();
            assert!((p.range().meters() - want).abs() < 1e-9, "node {i}");
        }
        // Ring-major emission: contiguous partition isolates each ring.
        let parts = d.contiguous_partition(3);
        for (k, part) in parts.iter().enumerate() {
            for &i in part {
                assert!((d.positions()[i].range().meters() - radii[k].meters()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn clusters_are_compact_and_cluster_major() {
        let mut rng = SplitMix64::new(9);
        let d = Deployment::clustered(4, 25, Meters::new(40.0), Meters::new(5.0), &mut rng);
        assert_eq!(d.len(), 100);
        assert_eq!(d.radius(), Meters::new(40.0));
        let parts = d.contiguous_partition(4);
        for part in &parts {
            assert_eq!(part.len(), 25);
            // All nodes of a cluster fit in a 2×cluster_radius-diameter disc.
            let xs: Vec<f64> = part.iter().map(|&i| d.positions()[i].x).collect();
            let ys: Vec<f64> = part.iter().map(|&i| d.positions()[i].y).collect();
            let (cx, cy) = (
                xs.iter().sum::<f64>() / 25.0,
                ys.iter().sum::<f64>() / 25.0,
            );
            for (&x, &y) in xs.iter().zip(&ys) {
                let dist = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                assert!(dist <= 10.0, "node {dist} m from its cluster centroid");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cluster radius must be in")]
    fn oversized_cluster_radius_rejected() {
        let _ = Deployment::clustered(
            2,
            2,
            Meters::new(10.0),
            Meters::new(10.0),
            &mut SplitMix64::new(0),
        );
    }
}
