//! Path-loss models: fixed, log-distance, and the paper's uniform
//! population.

use core::fmt;

use wsn_units::{Db, Meters};

/// Maps a transmitter–receiver distance to a path loss.
pub trait PathLossModel {
    /// Path loss at `distance`.
    fn path_loss(&self, distance: Meters) -> Db;
}

impl<T: PathLossModel + ?Sized> PathLossModel for &T {
    fn path_loss(&self, distance: Meters) -> Db {
        (**self).path_loss(distance)
    }
}

/// A distance-independent path loss — the wired-attenuator testbench of the
/// paper's Figure 4, and the per-node abstraction of its case study.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FixedPathLoss(pub Db);

impl PathLossModel for FixedPathLoss {
    fn path_loss(&self, _distance: Meters) -> Db {
        self.0
    }
}

impl fmt::Display for FixedPathLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fixed {}", self.0)
    }
}

/// Log-distance path loss:
/// `A(d) = A(d₀) + 10·n·log₁₀(d/d₀)`.
///
/// # Examples
///
/// ```
/// use wsn_channel::pathloss::{LogDistance, PathLossModel};
/// use wsn_units::Meters;
///
/// let model = LogDistance::free_space_2450();
/// // Free space at 2.45 GHz: ≈ 40.2 dB at 1 m, +20 dB per decade.
/// let at_10m = model.path_loss(Meters::new(10.0));
/// assert!((at_10m.db() - 60.2).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogDistance {
    reference_loss: Db,
    reference_distance: Meters,
    exponent: f64,
}

impl LogDistance {
    /// Creates a log-distance model.
    ///
    /// # Panics
    ///
    /// Panics unless `reference_distance > 0` and `exponent > 0`.
    pub fn new(reference_loss: Db, reference_distance: Meters, exponent: f64) -> Self {
        assert!(
            reference_distance.meters() > 0.0,
            "reference distance must be positive"
        );
        assert!(exponent > 0.0, "path loss exponent must be positive");
        LogDistance {
            reference_loss,
            reference_distance,
            exponent,
        }
    }

    /// Free-space loss at 2.45 GHz referenced to 1 m
    /// (`20·log₁₀(4π·1m/λ) ≈ 40.2 dB`), exponent 2.
    pub fn free_space_2450() -> Self {
        let lambda = 0.122_364_3; // c / 2.45 GHz in meters
        let ref_loss = 20.0 * (4.0 * core::f64::consts::PI / lambda).log10();
        LogDistance::new(Db::new(ref_loss), Meters::new(1.0), 2.0)
    }

    /// Indoor-office style preset: free-space reference with exponent 3.0 —
    /// the regime where 95 dB is reached within tens of meters, matching the
    /// case study's dense in-building deployment narrative.
    pub fn indoor_2450() -> Self {
        let fs = LogDistance::free_space_2450();
        LogDistance::new(fs.reference_loss, fs.reference_distance, 3.0)
    }

    /// The path-loss exponent `n`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The same reference point with a different exponent — e.g. the
    /// 2.45 GHz free-space reference hardened to an in-building exponent.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not positive.
    pub fn with_exponent(self, exponent: f64) -> Self {
        LogDistance::new(self.reference_loss, self.reference_distance, exponent)
    }

    /// Inverts the model: distance at which `loss` is reached.
    pub fn distance_for_loss(&self, loss: Db) -> Meters {
        let exp = (loss.db() - self.reference_loss.db()) / (10.0 * self.exponent);
        self.reference_distance * 10f64.powf(exp)
    }
}

impl PathLossModel for LogDistance {
    fn path_loss(&self, distance: Meters) -> Db {
        // Clamp below the reference distance: near-field values are not
        // meaningful and a negative log would *reduce* the loss.
        let d = distance.max(self.reference_distance);
        Db::new(
            self.reference_loss.db() + 10.0 * self.exponent * (d / self.reference_distance).log10(),
        )
    }
}

/// The case study's node population: path losses uniformly distributed over
/// an interval (55–95 dB in the paper).
///
/// Exposes both random sampling (via a quantile function, so any uniform
/// source works) and a deterministic integration grid; the analytical model
/// averages over the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformPathLossPopulation {
    min: Db,
    max: Db,
}

impl UniformPathLossPopulation {
    /// Creates a population over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: Db, max: Db) -> Self {
        assert!(min <= max, "min loss {min} exceeds max loss {max}");
        UniformPathLossPopulation { min, max }
    }

    /// The paper's §5 case study population: 55–95 dB.
    pub fn paper_case_study() -> Self {
        UniformPathLossPopulation::new(Db::new(55.0), Db::new(95.0))
    }

    /// Lower bound.
    pub fn min(&self) -> Db {
        self.min
    }

    /// Upper bound.
    pub fn max(&self) -> Db {
        self.max
    }

    /// Quantile function: maps `u ∈ [0, 1]` to a loss.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]`.
    pub fn quantile(&self, u: f64) -> Db {
        assert!((0.0..=1.0).contains(&u), "quantile arg {u} outside [0,1]");
        Db::new(self.min.db() + u * (self.max.db() - self.min.db()))
    }

    /// Midpoint-rule integration grid of `n` equally likely losses, used by
    /// the analytical model to average per-node quantities over the
    /// population.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn grid(&self, n: usize) -> Vec<Db> {
        assert!(n > 0, "grid needs at least one point");
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .collect()
    }
}

impl fmt::Display for UniformPathLossPopulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U({}, {})", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_distance() {
        let m = FixedPathLoss(Db::new(88.0));
        assert_eq!(m.path_loss(Meters::new(1.0)), Db::new(88.0));
        assert_eq!(m.path_loss(Meters::new(1000.0)), Db::new(88.0));
    }

    #[test]
    fn free_space_reference_values() {
        let m = LogDistance::free_space_2450();
        assert!((m.path_loss(Meters::new(1.0)).db() - 40.23).abs() < 0.05);
        // +20 dB per decade of distance.
        let d1 = m.path_loss(Meters::new(10.0)).db();
        let d2 = m.path_loss(Meters::new(100.0)).db();
        assert!((d2 - d1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn indoor_exponent_three() {
        let m = LogDistance::indoor_2450();
        let d1 = m.path_loss(Meters::new(10.0)).db();
        let d2 = m.path_loss(Meters::new(100.0)).db();
        assert!((d2 - d1 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn near_field_clamped() {
        let m = LogDistance::free_space_2450();
        let at_ref = m.path_loss(Meters::new(1.0));
        let closer = m.path_loss(Meters::new(0.1));
        assert_eq!(at_ref, closer, "losses below reference distance clamp");
    }

    #[test]
    fn distance_for_loss_inverts() {
        let m = LogDistance::indoor_2450();
        for loss in [55.0, 70.0, 88.0, 95.0] {
            let d = m.distance_for_loss(Db::new(loss));
            let back = m.path_loss(d).db();
            assert!((back - loss).abs() < 1e-9, "roundtrip at {loss} dB");
        }
    }

    #[test]
    fn case_study_population_bounds() {
        let p = UniformPathLossPopulation::paper_case_study();
        assert_eq!(p.min(), Db::new(55.0));
        assert_eq!(p.max(), Db::new(95.0));
        assert_eq!(p.quantile(0.0), Db::new(55.0));
        assert_eq!(p.quantile(1.0), Db::new(95.0));
        assert_eq!(p.quantile(0.5), Db::new(75.0));
    }

    #[test]
    fn grid_is_symmetric_and_mean_centered() {
        let p = UniformPathLossPopulation::paper_case_study();
        let grid = p.grid(40);
        assert_eq!(grid.len(), 40);
        let mean: f64 = grid.iter().map(|d| d.db()).sum::<f64>() / 40.0;
        assert!((mean - 75.0).abs() < 1e-9);
        assert!(grid.first().unwrap().db() > 55.0);
        assert!(grid.last().unwrap().db() < 95.0);
    }

    #[test]
    #[should_panic(expected = "grid needs at least one point")]
    fn empty_grid_panics() {
        let _ = UniformPathLossPopulation::paper_case_study().grid(0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_range_checked() {
        let _ = UniformPathLossPopulation::paper_case_study().quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "exceeds max loss")]
    fn inverted_bounds_rejected() {
        let _ = UniformPathLossPopulation::new(Db::new(95.0), Db::new(55.0));
    }
}
