//! Link-budget arithmetic and the AWGN link abstraction.

use wsn_units::{DBm, Db, Probability, Seconds};

use wsn_phy::ber::BerModel;
use wsn_phy::frame::PacketLayout;

/// Received power `P_Rx = P_Tx − A` (paper eq. 2).
///
/// # Examples
///
/// ```
/// use wsn_channel::received_power;
/// use wsn_units::{DBm, Db};
///
/// assert_eq!(received_power(DBm::new(0.0), Db::new(88.0)), DBm::new(-88.0));
/// ```
#[inline]
pub fn received_power(tx_power: DBm, path_loss: Db) -> DBm {
    tx_power - path_loss
}

/// An AWGN link: a fixed path loss combined with a BER model.
///
/// This is the abstraction the analytical model consumes — for every
/// candidate transmit power it asks "what is the bit error probability over
/// this path?".
///
/// # Examples
///
/// ```
/// use wsn_channel::Link;
/// use wsn_phy::ber::EmpiricalCc2420Ber;
/// use wsn_phy::frame::PacketLayout;
/// use wsn_units::{DBm, Db};
///
/// let link = Link::new(EmpiricalCc2420Ber::paper(), Db::new(88.0));
/// let pr_bit = link.bit_error_probability(DBm::new(0.0));
/// assert!(pr_bit.value() > 0.0 && pr_bit.value() < 1e-3);
///
/// let packet = PacketLayout::with_payload(120)?;
/// let pr_e = link.packet_error_probability(DBm::new(0.0), packet);
/// assert!(pr_e.value() > pr_bit.value());
/// # Ok::<(), wsn_phy::frame::FrameError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Link<B> {
    ber: B,
    path_loss: Db,
}

impl<B: BerModel> Link<B> {
    /// Creates a link with the given BER model and path loss.
    pub fn new(ber: B, path_loss: Db) -> Self {
        Link { ber, path_loss }
    }

    /// The path loss of this link.
    pub fn path_loss(&self) -> Db {
        self.path_loss
    }

    /// Replaces the path loss, keeping the BER model.
    pub fn with_path_loss(mut self, path_loss: Db) -> Self {
        self.path_loss = path_loss;
        self
    }

    /// Received power for a given transmit power.
    pub fn received_power(&self, tx_power: DBm) -> DBm {
        received_power(tx_power, self.path_loss)
    }

    /// Bit error probability when transmitting at `tx_power`.
    pub fn bit_error_probability(&self, tx_power: DBm) -> Probability {
        self.ber
            .bit_error_probability(self.received_power(tx_power))
    }

    /// Packet error probability (paper eq. 10) at `tx_power`.
    pub fn packet_error_probability(&self, tx_power: DBm, packet: PacketLayout) -> Probability {
        self.ber
            .packet_error_probability(self.received_power(tx_power), packet)
    }

    /// Borrows the underlying BER model.
    pub fn ber_model(&self) -> &B {
        &self.ber
    }
}

/// The slow-fading validity condition of the paper's §3: the AWGN treatment
/// holds while a packet fits within the channel coherence time.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelAssumptions {
    /// Channel coherence time (paper cites > 4 ms at 2.45 GHz without
    /// mobility).
    pub coherence_time: Seconds,
}

impl ChannelAssumptions {
    /// Fixed-wireless 2.45 GHz defaults; comfortably above the 4 ms maximal
    /// packet of the paper.
    pub fn fixed_wireless_2450() -> Self {
        ChannelAssumptions {
            coherence_time: Seconds::from_millis(20.0),
        }
    }

    /// `true` when a packet of the given duration experiences an
    /// effectively static channel.
    pub fn awgn_valid_for(&self, packet_duration: Seconds) -> bool {
        packet_duration <= self.coherence_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_phy::ber::EmpiricalCc2420Ber;

    #[test]
    fn budget_is_subtraction() {
        assert_eq!(
            received_power(DBm::new(-3.0), Db::new(85.0)),
            DBm::new(-88.0)
        );
    }

    #[test]
    fn link_maps_tx_power_to_error_rates() {
        let link = Link::new(EmpiricalCc2420Ber::paper(), Db::new(90.0));
        let strong = link.bit_error_probability(DBm::new(0.0));
        let weak = link.bit_error_probability(DBm::new(-15.0));
        assert!(weak.value() > strong.value());
        assert_eq!(link.received_power(DBm::new(0.0)), DBm::new(-90.0));
    }

    #[test]
    fn packet_error_grows_with_size() {
        let link = Link::new(EmpiricalCc2420Ber::paper(), Db::new(89.0));
        let small = PacketLayout::with_payload(10).unwrap();
        let large = PacketLayout::with_payload(120).unwrap();
        let pe_small = link.packet_error_probability(DBm::new(0.0), small);
        let pe_large = link.packet_error_probability(DBm::new(0.0), large);
        assert!(pe_large.value() > pe_small.value());
    }

    #[test]
    fn with_path_loss_rebinds() {
        let link = Link::new(EmpiricalCc2420Ber::paper(), Db::new(55.0));
        let harder = link.clone().with_path_loss(Db::new(95.0));
        assert!(
            harder.bit_error_probability(DBm::new(0.0)).value()
                > link.bit_error_probability(DBm::new(0.0)).value()
        );
        assert_eq!(harder.path_loss(), Db::new(95.0));
    }

    #[test]
    fn awgn_validity_window() {
        let a = ChannelAssumptions::fixed_wireless_2450();
        // Maximal paper packet: 4.256 ms — valid.
        assert!(a.awgn_valid_for(Seconds::from_millis(4.256)));
        assert!(!a.awgn_valid_for(Seconds::from_millis(25.0)));
    }
}
