//! Wireless channel models for dense microsensor networks.
//!
//! The paper's propagation assumptions are deliberately simple — and this
//! crate reproduces exactly them:
//!
//! * a **static path loss** per node (slow fading: the channel is coherent
//!   over a packet, so the link is AWGN at a fixed received power);
//! * received power `P_Rx = P_Tx − A` (paper eq. 2), captured by
//!   [`link::received_power`] and the [`link::Link`] convenience wrapper;
//! * for the §5 case study, path losses **uniformly distributed between 55
//!   and 95 dB** across the node population
//!   ([`pathloss::UniformPathLossPopulation`]);
//! * distance-based alternatives ([`pathloss::LogDistance`], including a
//!   2.45 GHz free-space preset) and a uniform-disc node
//!   [`deployment`](deployment::Deployment) for examples that want a
//!   geometric story instead of an abstract loss distribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod link;
pub mod pathloss;
pub mod shadowing;

pub use deployment::{assignment_partition, Deployment, Position};
pub use link::{received_power, ChannelAssumptions, Link};
pub use pathloss::{FixedPathLoss, LogDistance, PathLossModel, UniformPathLossPopulation};
pub use shadowing::{shadowed_population, LogNormalShadowing};
