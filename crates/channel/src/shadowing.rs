//! Log-normal shadowing — an extension beyond the paper's static-loss
//! model.
//!
//! The paper assigns each node one fixed path loss (slow fading over a
//! packet). Real deployments add site-to-site variation on top of the
//! distance law: a zero-mean Gaussian term in dB with standard deviation
//! σ ≈ 4–8 dB indoors. [`LogNormalShadowing`] wraps any
//! [`PathLossModel`] with per-evaluation shadowing, and
//! [`shadowed_population`] produces the per-node loss vector the case
//! study consumes — letting the 55–95 dB uniform population be replaced by
//! a geometric deployment with measured-like dispersion.

use wsn_phy::noise::{GaussianSource, UniformSource};
use wsn_units::{Db, Meters};

use crate::pathloss::PathLossModel;

/// A path-loss model plus frozen per-query log-normal shadowing.
///
/// Shadowing is *frozen at construction* for a fixed number of locations:
/// querying location `i` always returns the same loss, as site shadowing
/// does not change over time for static nodes.
#[derive(Debug, Clone)]
pub struct LogNormalShadowing<M> {
    base: M,
    sigma: Db,
    offsets: Vec<f64>,
}

impl<M: PathLossModel> LogNormalShadowing<M> {
    /// Wraps `base`, drawing `locations` shadowing offsets with standard
    /// deviation `sigma` from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn new<U: UniformSource>(base: M, sigma: Db, locations: usize, rng: &mut U) -> Self {
        assert!(sigma.db() >= 0.0, "shadowing σ must be non-negative");
        let mut gauss = GaussianSource::new(rng);
        let offsets = (0..locations)
            .map(|_| gauss.next_gaussian() * sigma.db())
            .collect();
        LogNormalShadowing {
            base,
            sigma,
            offsets,
        }
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> Db {
        self.sigma
    }

    /// Number of frozen locations.
    pub fn locations(&self) -> usize {
        self.offsets.len()
    }

    /// Path loss at `distance` for frozen location `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn path_loss_at(&self, index: usize, distance: Meters) -> Db {
        let base = self.base.path_loss(distance);
        Db::new(base.db() + self.offsets[index])
    }
}

/// Per-node shadowed path losses for a deployment: node `i` at distance
/// `distances[i]` with its own frozen shadowing offset.
///
/// # Panics
///
/// Panics if the model has fewer frozen locations than `distances`.
pub fn shadowed_population<M: PathLossModel>(
    model: &LogNormalShadowing<M>,
    distances: &[Meters],
) -> Vec<Db> {
    assert!(
        distances.len() <= model.locations(),
        "model frozen for {} locations, {} requested",
        model.locations(),
        distances.len()
    );
    distances
        .iter()
        .enumerate()
        .map(|(i, &d)| model.path_loss_at(i, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::{FixedPathLoss, LogDistance};
    use wsn_phy::noise::SplitMix64;

    #[test]
    fn shadowing_is_frozen_per_location() {
        let mut rng = SplitMix64::new(1);
        let m = LogNormalShadowing::new(FixedPathLoss(Db::new(70.0)), Db::new(6.0), 10, &mut rng);
        for i in 0..10 {
            let a = m.path_loss_at(i, Meters::new(5.0));
            let b = m.path_loss_at(i, Meters::new(5.0));
            assert_eq!(a, b, "shadowing must not re-roll");
        }
    }

    #[test]
    fn zero_sigma_is_transparent() {
        let mut rng = SplitMix64::new(2);
        let m = LogNormalShadowing::new(FixedPathLoss(Db::new(70.0)), Db::ZERO, 4, &mut rng);
        for i in 0..4 {
            assert!((m.path_loss_at(i, Meters::new(1.0)).db() - 70.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dispersion_matches_sigma() {
        let mut rng = SplitMix64::new(3);
        let sigma = 6.0;
        let n = 20_000;
        let m = LogNormalShadowing::new(FixedPathLoss(Db::new(75.0)), Db::new(sigma), n, &mut rng);
        let values: Vec<f64> = (0..n)
            .map(|i| m.path_loss_at(i, Meters::new(1.0)).db())
            .collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 75.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn population_combines_distance_and_shadowing() {
        let mut rng = SplitMix64::new(4);
        let model = LogNormalShadowing::new(LogDistance::indoor_2450(), Db::new(4.0), 3, &mut rng);
        let distances = [Meters::new(2.0), Meters::new(10.0), Meters::new(30.0)];
        let losses = shadowed_population(&model, &distances);
        assert_eq!(losses.len(), 3);
        // Distance trend survives moderate shadowing on average — check
        // the extremes differ by more than 2σ here.
        assert!(losses[2].db() > losses[0].db());
    }

    #[test]
    #[should_panic(expected = "frozen for")]
    fn too_many_nodes_rejected() {
        let mut rng = SplitMix64::new(5);
        let model =
            LogNormalShadowing::new(FixedPathLoss(Db::new(70.0)), Db::new(4.0), 1, &mut rng);
        let _ = shadowed_population(&model, &[Meters::new(1.0), Meters::new(2.0)]);
    }
}
