//! The §5 case study: 1600 nodes around one base station, 16 channels,
//! 1 byte of sensed data every 8 ms per node, buffered into 120-byte
//! packets sent once per 983 ms superframe (BO = 6).
//!
//! The paper's headline numbers for this scenario are an average node power
//! of **211 µW**, a delivery delay of **1.45 s** and a transmission failure
//! probability of **16 %**, with the Figure 9 breakdowns. This module
//! computes all of them from the activation model, averaging over the
//! uniform 55–95 dB path-loss population with per-node energy-optimal
//! transmit power (link adaptation).

use wsn_channel::UniformPathLossPopulation;
use wsn_mac::BeaconOrder;
use wsn_phy::ber::BerModel;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{PhaseTag, StateKind, TxPowerLevel};
use wsn_sim::network::TxPowerPolicy;
use wsn_sim::policy::{AllocationPolicy, PolicyEngine, PolicyTrace};
use wsn_sim::scenario::{
    DeploymentSpec, Scenario, ScenarioOutcome, TimedScenarioRun, TrafficSpec,
};
use wsn_sim::Runner;
use wsn_units::{Db, Power, Probability, Seconds};

use crate::activation::{ActivationModel, ModelInputs, ModelOutput};
use crate::contention::ContentionModel;
use crate::link_adaptation::LinkAdaptation;

/// The dense-network scenario.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    model: ActivationModel,
    packet: PacketLayout,
    beacon_order: BeaconOrder,
    channels: usize,
    nodes_per_channel: usize,
    population: UniformPathLossPopulation,
    grid_points: usize,
}

impl CaseStudy {
    /// The paper's configuration: 1600 nodes / 16 channels = 100 nodes per
    /// channel, 120-byte payloads, BO = 6, losses uniform in 55–95 dB.
    pub fn paper(model: ActivationModel) -> Self {
        CaseStudy {
            model,
            packet: PacketLayout::with_payload(120).expect("120 ≤ 123"),
            beacon_order: BeaconOrder::new(6).expect("BO 6 valid"),
            channels: 16,
            nodes_per_channel: 100,
            population: UniformPathLossPopulation::paper_case_study(),
            grid_points: 81,
        }
    }

    /// Replaces the activation model (improvement studies).
    pub fn with_model(mut self, model: ActivationModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the population integration grid size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_grid_points(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one grid point");
        self.grid_points = n;
        self
    }

    /// The activation model in use.
    pub fn model(&self) -> &ActivationModel {
        &self.model
    }

    /// The packet layout in use.
    pub fn packet(&self) -> PacketLayout {
        self.packet
    }

    /// The beacon order in use.
    pub fn beacon_order(&self) -> BeaconOrder {
        self.beacon_order
    }

    /// Number of independent channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Nodes sharing each channel.
    pub fn nodes_per_channel(&self) -> usize {
        self.nodes_per_channel
    }

    /// The path-loss population.
    pub fn population(&self) -> UniformPathLossPopulation {
        self.population
    }

    /// Network load λ per channel: `N·T_packet / T_ib` (≈ 0.43, the
    /// paper's "42 %").
    pub fn load(&self) -> f64 {
        self.nodes_per_channel as f64 * self.packet.duration().secs()
            / self.beacon_order.beacon_interval().secs()
    }

    /// The case study as a declarative [`Scenario`]: 16 channels × 100
    /// nodes on the uniform 55–95 dB loss grid, 120-byte payloads, BO = 6
    /// — the discrete-event counterpart of [`run`](Self::run). Compiled
    /// per-channel loads equal [`load`](Self::load) by construction.
    pub fn scenario(&self) -> Scenario {
        Scenario::new(
            "paper §5 case study",
            self.channels,
            self.nodes_per_channel,
            DeploymentSpec::UniformLossGrid {
                min_db: self.population.min().db(),
                max_db: self.population.max().db(),
            },
        )
        .with_traffic(TrafficSpec::uniform(self.packet.payload_bytes()))
        .with_beacon_order(self.beacon_order)
    }

    /// Simulates the case study end to end on the parallel runner: the
    /// scenario's 16 channels (× `replications`) run as independent
    /// discrete-event simulations with per-node energy-optimal transmit
    /// levels from the analytical link adaptation, and merge into
    /// per-channel and network-wide summaries with replication-based
    /// standard errors. Bit-identical for every thread count.
    pub fn simulate<B: BerModel + Sync, C: ContentionModel>(
        &self,
        runner: &Runner,
        ber: &B,
        contention: &C,
        superframes: u32,
        replications: u32,
    ) -> ScenarioOutcome {
        self.simulate_timed(runner, ber, contention, superframes, replications)
            .outcome
    }

    /// [`simulate`](Self::simulate) with per-channel wall-clock
    /// instrumentation — the data behind `case_study --json`'s
    /// `BENCH_network.json`. The outcome is identical to the untimed run.
    pub fn simulate_timed<B: BerModel + Sync, C: ContentionModel>(
        &self,
        runner: &Runner,
        ber: &B,
        contention: &C,
        superframes: u32,
        replications: u32,
    ) -> TimedScenarioRun {
        let (scenario, configs) =
            self.adapted_configs(ber, contention, superframes, replications);
        scenario.run_with_timed(runner, &configs, ber)
    }

    /// The simulation scenario plus its compiled per-channel configs with
    /// per-node energy-optimal transmit levels swapped in — the shared
    /// front half of [`simulate`](Self::simulate).
    pub fn adapted_configs<B: BerModel, C: ContentionModel>(
        &self,
        ber: &B,
        contention: &C,
        superframes: u32,
        replications: u32,
    ) -> (Scenario, Vec<wsn_sim::NetworkConfig>) {
        let scenario = self
            .scenario()
            .with_superframes(superframes)
            .with_replications(replications);
        let adaptation = LinkAdaptation::new(self.model.clone(), self.packet, self.beacon_order);
        let mut configs = scenario.compile();
        // The paper scenario compiles identical loss populations and loads
        // for every channel, so the (expensive) per-node adaptation is
        // computed once per distinct (losses, load) pair and reused.
        let mut adapted: Vec<(
            std::sync::Arc<[wsn_units::Db]>,
            f64,
            std::sync::Arc<[wsn_radio::TxPowerLevel]>,
        )> = Vec::new();
        for cfg in &mut configs {
            let levels = match adapted
                .iter()
                .find(|(losses, load, _)| *losses == cfg.path_losses && *load == cfg.channel.load)
            {
                Some((_, _, levels)) => levels.clone(),
                None => {
                    let levels: std::sync::Arc<[wsn_radio::TxPowerLevel]> = cfg
                        .path_losses
                        .iter()
                        .map(|&a| {
                            adaptation
                                .best_level(a, cfg.channel.load, ber, contention)
                                .level
                        })
                        .collect();
                    adapted.push((cfg.path_losses.clone(), cfg.channel.load, levels.clone()));
                    levels
                }
            };
            cfg.tx_policy = TxPowerPolicy::PerNode(levels);
        }
        (scenario, configs)
    }

    /// Runs the case study through the closed-loop [`PolicyEngine`]: the
    /// §5 scenario (16 channels, channel-inversion transmit power) is
    /// re-assigned between rounds by `policy` from observed per-channel
    /// failure rates. The returned [`PolicyTrace`] carries the
    /// convergence trajectory; bit-identical for every thread count.
    pub fn simulate_adaptive<P: AllocationPolicy + ?Sized>(
        &self,
        runner: &Runner,
        policy: &mut P,
        rounds: usize,
        superframes: u32,
        replications: u32,
    ) -> PolicyTrace {
        let scenario = self
            .scenario()
            .with_superframes(superframes)
            .with_replications(replications);
        PolicyEngine::new(scenario)
            .with_rounds(rounds)
            .run(runner, policy)
    }

    /// Runs the study.
    pub fn run<B: BerModel, C: ContentionModel>(&self, ber: &B, contention: &C) -> CaseStudyReport {
        let load = self.load();
        let adaptation = LinkAdaptation::new(self.model.clone(), self.packet, self.beacon_order);
        let stats = contention.stats(load, self.packet);

        let mut points = Vec::with_capacity(self.grid_points);
        let mut power_sum = 0.0;
        let mut delay_sum = 0.0;
        let mut fail_sum = 0.0;
        let mut phase_sums = [0.0f64; 6];
        let mut state_sums = [0.0f64; 4];
        let mut level_counts = [0usize; 8];

        for loss in self.population.grid(self.grid_points) {
            let best = adaptation.best_level(loss, load, ber, contention);
            let out = self.model.evaluate(
                &ModelInputs {
                    packet: self.packet,
                    beacon_order: self.beacon_order,
                    tx_level: best.level,
                    path_loss: loss,
                    contention: stats,
                },
                ber,
            );
            power_sum += out.average_power.watts();
            delay_sum += out.delay.secs();
            fail_sum += out.pr_fail.value();
            for (i, (_, e)) in out.phase_energy.iter().enumerate() {
                phase_sums[i] += e.joules();
            }
            for (i, (_, f)) in out.state_time_fractions().iter().enumerate() {
                state_sums[i] += f;
            }
            level_counts[best.level as usize] += 1;
            points.push(CaseStudyPoint {
                path_loss: loss,
                level: best.level,
                output: out,
            });
        }

        let n = self.grid_points as f64;
        let total_phase: f64 = phase_sums.iter().sum();
        let phase_fractions = core::array::from_fn(|i| {
            (
                points[0].output.phase_energy[i].0,
                if total_phase > 0.0 {
                    phase_sums[i] / total_phase
                } else {
                    0.0
                },
            )
        });
        let state_fractions = core::array::from_fn(|i| {
            (
                points[0].output.state_time_fractions()[i].0,
                state_sums[i] / n,
            )
        });
        let level_shares =
            core::array::from_fn(|i| (TxPowerLevel::ALL[i], level_counts[i] as f64 / n));

        CaseStudyReport {
            load,
            beacon_interval: self.beacon_order.beacon_interval(),
            average_power: Power::from_watts(power_sum / n),
            mean_delay: Seconds::from_secs(delay_sum / n),
            mean_failure: Probability::clamped(fail_sum / n),
            phase_fractions,
            state_fractions,
            level_shares,
            points,
        }
    }
}

/// One population grid point's result.
#[derive(Debug, Clone)]
pub struct CaseStudyPoint {
    /// Path loss of this node cohort.
    pub path_loss: Db,
    /// Energy-optimal transmit level.
    pub level: TxPowerLevel,
    /// Full model output.
    pub output: ModelOutput,
}

/// Aggregated case-study results (the paper's §5 scalars and Figure 9).
#[derive(Debug, Clone)]
pub struct CaseStudyReport {
    /// Channel load λ.
    pub load: f64,
    /// Inter-beacon period.
    pub beacon_interval: Seconds,
    /// Population-mean node power (paper: 211 µW).
    pub average_power: Power,
    /// Population-mean delivery delay (paper: 1.45 s).
    pub mean_delay: Seconds,
    /// Population-mean transmission failure probability (paper: 16 %).
    pub mean_failure: Probability,
    /// Population energy split by protocol phase (Figure 9a).
    pub phase_fractions: [(PhaseTag, f64); 6],
    /// Population-mean time split by radio state (Figure 9b).
    pub state_fractions: [(StateKind, f64); 4],
    /// Fraction of nodes assigned to each transmit level.
    pub level_shares: [(TxPowerLevel, f64); 8],
    /// Per-grid-point details.
    pub points: Vec<CaseStudyPoint>,
}

impl CaseStudyReport {
    /// The energy fraction of one phase.
    pub fn phase_fraction(&self, phase: PhaseTag) -> f64 {
        self.phase_fractions
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }

    /// The time fraction of one radio state.
    pub fn state_fraction(&self, kind: StateKind) -> f64 {
        self.state_fractions
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, f)| *f)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::IdealContention;
    use wsn_phy::ber::EmpiricalCc2420Ber;
    use wsn_radio::RadioModel;

    fn quick_study() -> CaseStudy {
        CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420())).with_grid_points(21)
    }

    #[test]
    fn load_matches_papers_42_percent() {
        let s = quick_study();
        assert!(
            (s.load() - 0.433).abs() < 0.005,
            "load = {:.4}, expected ≈ 0.433",
            s.load()
        );
    }

    #[test]
    fn ideal_contention_report_is_in_the_paper_band() {
        // With ideal contention (no collisions/failures) the scalars land
        // near but below the full result.
        let report = quick_study().run(&EmpiricalCc2420Ber::paper(), &IdealContention);
        let uw = report.average_power.microwatts();
        assert!((120.0..320.0).contains(&uw), "power {uw} µW");
        // Failures come only from the lossy population tail here.
        let f = report.mean_failure.value();
        assert!((0.01..0.35).contains(&f), "failure {f}");
        assert!(report.mean_delay.secs() > report.beacon_interval.secs());
    }

    #[test]
    fn transmit_dominates_but_below_half_ish() {
        let report = quick_study().run(&EmpiricalCc2420Ber::paper(), &IdealContention);
        let tx = report.phase_fraction(PhaseTag::Transmit);
        let beacon = report.phase_fraction(PhaseTag::Beacon);
        let cont = report.phase_fraction(PhaseTag::Contention);
        let ack = report.phase_fraction(PhaseTag::AckWait);
        // Figure 9a ordering: transmit largest, then contention/beacon,
        // then ACK.
        assert!(tx > cont && tx > beacon && tx > ack, "tx {tx} not dominant");
        let total = tx + beacon + cont + ack;
        assert!((total - 1.0).abs() < 1e-9, "fractions sum {total}");
    }

    #[test]
    fn nodes_sleep_vast_majority_of_time() {
        let report = quick_study().run(&EmpiricalCc2420Ber::paper(), &IdealContention);
        let shutdown = report.state_fraction(StateKind::Shutdown);
        assert!(shutdown > 0.97, "shutdown fraction {shutdown}");
        let sum: f64 = report.state_fractions.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn link_adaptation_spreads_levels() {
        let report = quick_study().run(&EmpiricalCc2420Ber::paper(), &IdealContention);
        let used: usize = report
            .level_shares
            .iter()
            .filter(|(_, share)| *share > 0.0)
            .count();
        assert!(used >= 4, "population should span ≥4 levels, used {used}");
        // Weakest level serves the near cohort.
        assert!(report.level_shares[0].1 > 0.0, "nobody uses −25 dBm");
    }

    #[test]
    fn scenario_compiles_to_16_channels_of_100_nodes_at_the_paper_load() {
        let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
        let configs = study.scenario().compile();
        assert_eq!(configs.len(), 16, "paper uses 16 channels");
        for (c, cfg) in configs.iter().enumerate() {
            assert_eq!(cfg.channel.nodes, 100, "channel {c}");
            assert_eq!(cfg.path_losses.len(), 100, "channel {c}");
            // The compiled load is the same `N·T_packet / T_ib` the
            // analytical study uses.
            assert!(
                (cfg.channel.load - study.load()).abs() < 1e-12,
                "channel {c}: compiled load {} vs model load {}",
                cfg.channel.load,
                study.load()
            );
            // Population span matches the 55–95 dB case study.
            let min = cfg.path_losses.iter().map(|l| l.db()).fold(f64::MAX, f64::min);
            let max = cfg.path_losses.iter().map(|l| l.db()).fold(f64::MIN, f64::max);
            assert!(min > 55.0 && max < 95.0);
        }
    }

    #[test]
    fn simulate_runs_in_parallel_with_replication_errors() {
        let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
        let ber = EmpiricalCc2420Ber::paper();
        let serial = study.simulate(&Runner::serial(), &ber, &IdealContention, 4, 2);
        let parallel = study.simulate(&Runner::with_threads(4), &ber, &IdealContention, 4, 2);
        assert_eq!(serial.per_channel.len(), 16);
        assert_eq!(serial.overall.replications, 2);
        assert_eq!(serial.overall.mean_node_power, parallel.overall.mean_node_power);
        assert_eq!(serial.overall.failure_ratio, parallel.overall.failure_ratio);
        assert_eq!(
            serial.overall.power_standard_error,
            parallel.overall.power_standard_error
        );
        // 16 channels × 100 nodes × 2 replications pooled.
        assert_eq!(serial.overall.node_powers.len(), 3200);
    }

    #[test]
    fn simulate_adaptive_traces_the_policy_loop() {
        use wsn_sim::policy::GreedyRebalance;

        let study = CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420()));
        let runner = Runner::from_env();
        let trace = study.simulate_adaptive(&runner, &mut GreedyRebalance::new(8), 2, 4, 1);
        assert_eq!(trace.policy, "greedy-rebalance");
        assert!(!trace.rounds.is_empty() && trace.rounds.len() <= 2);
        for round in &trace.rounds {
            assert_eq!(round.assignment.len(), 1600);
            assert_eq!(round.outcome.per_channel.len(), 16);
        }
        // The loop is deterministic across invocations.
        let again = study.simulate_adaptive(&runner, &mut GreedyRebalance::new(8), 2, 4, 1);
        assert_eq!(trace.converged_at, again.converged_at);
        assert_eq!(
            trace.worst_failure_trajectory(),
            again.worst_failure_trajectory()
        );
    }

    #[test]
    fn points_cover_population() {
        let report = quick_study().run(&EmpiricalCc2420Ber::paper(), &IdealContention);
        assert_eq!(report.points.len(), 21);
        assert!(report.points.first().unwrap().path_loss.db() > 55.0);
        assert!(report.points.last().unwrap().path_loss.db() < 95.0);
        // Failure grows along the population tail.
        let first = report.points.first().unwrap().output.pr_fail.value();
        let last = report.points.last().unwrap().output.pr_fail.value();
        assert!(last > first);
    }
}
