//! Packet size optimization: energy per useful bit versus payload size
//! (the paper's Figure 8).
//!
//! Small packets amortize the 13-byte PHY/MAC overhead poorly; large
//! packets risk more retransmissions and stress the contention procedure.
//! The paper's (initially counter-intuitive) finding is that energy per bit
//! *decreases monotonically* up to the maximum 123-byte payload — the
//! overhead effect dominates everywhere in the standard's allowed range.

use wsn_mac::BeaconOrder;
use wsn_phy::ber::BerModel;
use wsn_phy::frame::PacketLayout;
use wsn_radio::TxPowerLevel;
use wsn_units::{Db, Energy};

use crate::activation::{ActivationModel, ModelInputs};
use crate::contention::ContentionModel;

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, Copy)]
pub struct SizingPoint {
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Energy per useful bit at this size.
    pub energy_per_bit: Energy,
}

/// The packet-size study at a fixed link operating point.
#[derive(Debug, Clone)]
pub struct PacketSizing {
    model: ActivationModel,
    beacon_order: BeaconOrder,
    tx_level: TxPowerLevel,
    path_loss: Db,
}

impl PacketSizing {
    /// Creates the study.
    pub fn new(
        model: ActivationModel,
        beacon_order: BeaconOrder,
        tx_level: TxPowerLevel,
        path_loss: Db,
    ) -> Self {
        PacketSizing {
            model,
            beacon_order,
            tx_level,
            path_loss,
        }
    }

    /// Energy per bit at one payload size and load.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` exceeds the 123-byte maximum.
    pub fn energy_at<B: BerModel, C: ContentionModel>(
        &self,
        payload_bytes: usize,
        load: f64,
        ber: &B,
        contention: &C,
    ) -> Energy {
        let packet =
            PacketLayout::with_payload(payload_bytes).expect("payload within the standard's range");
        let stats = contention.stats(load, packet);
        self.model
            .evaluate(
                &ModelInputs {
                    packet,
                    beacon_order: self.beacon_order,
                    tx_level: self.tx_level,
                    path_loss: self.path_loss,
                    contention: stats,
                },
                ber,
            )
            .energy_per_data_bit
    }

    /// Sweeps payload sizes at a load — one curve of Figure 8.
    pub fn sweep<B: BerModel, C: ContentionModel>(
        &self,
        payloads: &[usize],
        load: f64,
        ber: &B,
        contention: &C,
    ) -> Vec<SizingPoint> {
        payloads
            .iter()
            .map(|&p| SizingPoint {
                payload_bytes: p,
                energy_per_bit: self.energy_at(p, load, ber, contention),
            })
            .collect()
    }

    /// The payload size minimizing energy per bit over a sweep.
    pub fn optimal_payload(points: &[SizingPoint]) -> usize {
        points
            .iter()
            .min_by(|a, b| {
                a.energy_per_bit
                    .joules()
                    .total_cmp(&b.energy_per_bit.joules())
            })
            .map(|p| p.payload_bytes)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::IdealContention;
    use wsn_phy::ber::EmpiricalCc2420Ber;
    use wsn_radio::RadioModel;

    fn study(loss: f64) -> PacketSizing {
        PacketSizing::new(
            ActivationModel::paper_defaults(RadioModel::cc2420()),
            BeaconOrder::new(6).unwrap(),
            TxPowerLevel::Zero,
            Db::new(loss),
        )
    }

    fn sizes() -> Vec<usize> {
        (1..=12).map(|i| i * 10).chain([123]).collect()
    }

    #[test]
    fn energy_decreases_monotonically_on_a_good_link() {
        // Figure 8's headline: up to 123 bytes, bigger is better.
        let points = study(70.0).sweep(
            &sizes(),
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        for pair in points.windows(2) {
            assert!(
                pair[1].energy_per_bit < pair[0].energy_per_bit,
                "energy/bit rose between {} and {} bytes",
                pair[0].payload_bytes,
                pair[1].payload_bytes
            );
        }
        assert_eq!(PacketSizing::optimal_payload(&points), 123);
    }

    #[test]
    fn small_packets_pay_heavy_overhead() {
        let s = study(70.0);
        let ber = EmpiricalCc2420Ber::paper();
        let tiny = s.energy_at(10, 0.42, &ber, &IdealContention);
        let big = s.energy_at(120, 0.42, &ber, &IdealContention);
        // 10-byte payloads carry 13 bytes of overhead: worse than 2× the
        // energy per bit of 120-byte packets.
        assert!(
            tiny.joules() > 2.0 * big.joules(),
            "tiny {tiny} vs big {big}"
        );
    }

    #[test]
    fn noisy_link_can_break_monotonicity() {
        // At a path loss beyond the paper's efficient range, large packets
        // get retransmitted so often that the optimum moves inward — the
        // tradeoff the paper says *would* appear past 123 bytes.
        let points = study(93.0).sweep(
            &sizes(),
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        let best = PacketSizing::optimal_payload(&points);
        assert!(
            best < 123,
            "on a very lossy link the optimum should shrink, got {best}"
        );
    }

    #[test]
    fn load_increases_energy_but_not_the_conclusion() {
        let s = study(70.0);
        let ber = EmpiricalCc2420Ber::paper();
        // With ideal contention the load has no effect; what matters is
        // that each load's curve still prefers the maximum size. (The
        // load-dependent curves use the Monte-Carlo source in the bench.)
        for load in [0.1, 0.42, 0.7] {
            let points = s.sweep(&sizes(), load, &ber, &IdealContention);
            assert_eq!(PacketSizing::optimal_payload(&points), 123);
        }
    }

    #[test]
    #[should_panic(expected = "within the standard's range")]
    fn oversize_payload_panics() {
        let _ = study(70.0).energy_at(200, 0.42, &EmpiricalCc2420Ber::paper(), &IdealContention);
    }
}
