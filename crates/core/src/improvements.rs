//! Improvement perspectives (the paper's §5 closing analysis).
//!
//! The energy breakdown identifies two hardware levers:
//!
//! 1. **Faster state transitions** — "reducing the transition time between
//!    states by a factor two would decrease the total average power by
//!    12 %";
//! 2. **A scalable receiver** — "a low power mode for sensing the channel
//!    and waiting for an acknowledgement frame has the potential of
//!    reducing the total average power by an additional 15 %".
//!
//! Both are expressed as [`RadioModel`] variants and evaluated by re-running
//! the full case study.

use wsn_phy::ber::BerModel;
use wsn_radio::{RadioModel, RadioState};
use wsn_units::Power;

use crate::case_study::CaseStudy;
use crate::contention::ContentionModel;

/// Result of one what-if evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ImprovementReport {
    /// Baseline population-mean power.
    pub baseline: Power,
    /// Variant population-mean power.
    pub variant: Power,
}

impl ImprovementReport {
    /// Fractional power reduction (`0.12` = −12 %).
    pub fn reduction(&self) -> f64 {
        1.0 - self.variant.watts() / self.baseline.watts()
    }
}

/// Builds the radio variant with all state-transition times (and energies)
/// scaled by `factor` (the paper studies `0.5`).
pub fn faster_transitions_radio(factor: f64) -> RadioModel {
    RadioModel::builder().transition_scale(factor).build()
}

/// Builds the scalable-receiver variant: listen-only operation (CCA and
/// ACK wait) consumes `listen_scale` of the full receive power.
///
/// # Panics
///
/// Panics unless `0 < listen_scale <= 1`.
pub fn scalable_receiver_radio(listen_scale: f64) -> RadioModel {
    assert!(
        listen_scale > 0.0 && listen_scale <= 1.0,
        "listen scale must be in (0, 1], got {listen_scale}"
    );
    let full = RadioModel::cc2420().state_power(RadioState::Rx);
    RadioModel::builder()
        .rx_listen_power(full * listen_scale)
        .build()
}

/// Builds the combined variant (both levers applied).
pub fn combined_radio(transition_factor: f64, listen_scale: f64) -> RadioModel {
    let full = RadioModel::cc2420().state_power(RadioState::Rx);
    RadioModel::builder()
        .transition_scale(transition_factor)
        .rx_listen_power(full * listen_scale)
        .build()
}

/// Evaluates a radio variant against the baseline case study.
pub fn evaluate_variant<B: BerModel, C: ContentionModel>(
    baseline: &CaseStudy,
    variant_radio: RadioModel,
    ber: &B,
    contention: &C,
) -> ImprovementReport {
    let base_report = baseline.run(ber, contention);
    let variant_model = baseline.model().clone().with_radio(variant_radio);
    let variant_report = baseline
        .clone()
        .with_model(variant_model)
        .run(ber, contention);
    ImprovementReport {
        baseline: base_report.average_power,
        variant: variant_report.average_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ActivationModel;
    use crate::contention::IdealContention;
    use wsn_phy::ber::EmpiricalCc2420Ber;

    fn study() -> CaseStudy {
        CaseStudy::paper(ActivationModel::paper_defaults(RadioModel::cc2420())).with_grid_points(15)
    }

    #[test]
    fn halved_transitions_reduce_power_meaningfully() {
        let report = evaluate_variant(
            &study(),
            faster_transitions_radio(0.5),
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        let r = report.reduction();
        assert!(
            (0.02..0.30).contains(&r),
            "transition halving changed power by {:.1} %",
            r * 100.0
        );
    }

    #[test]
    fn scalable_receiver_reduces_power_meaningfully() {
        let report = evaluate_variant(
            &study(),
            scalable_receiver_radio(0.5),
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        let r = report.reduction();
        assert!(
            (0.01..0.30).contains(&r),
            "scalable receiver changed power by {:.1} %",
            r * 100.0
        );
    }

    #[test]
    fn combined_beats_each_individually() {
        let ber = EmpiricalCc2420Ber::paper();
        let s = study();
        let a = evaluate_variant(&s, faster_transitions_radio(0.5), &ber, &IdealContention);
        let b = evaluate_variant(&s, scalable_receiver_radio(0.5), &ber, &IdealContention);
        let both = evaluate_variant(&s, combined_radio(0.5, 0.5), &ber, &IdealContention);
        assert!(both.reduction() > a.reduction());
        assert!(both.reduction() > b.reduction());
        // Sub-additivity: the combined saving cannot exceed the sum.
        assert!(both.reduction() <= a.reduction() + b.reduction() + 1e-9);
    }

    #[test]
    fn deeper_scaling_saves_more() {
        let ber = EmpiricalCc2420Ber::paper();
        let s = study();
        let half = evaluate_variant(&s, scalable_receiver_radio(0.5), &ber, &IdealContention);
        let quarter = evaluate_variant(&s, scalable_receiver_radio(0.25), &ber, &IdealContention);
        assert!(quarter.reduction() > half.reduction());
    }

    #[test]
    #[should_panic(expected = "listen scale must be in")]
    fn silly_listen_scale_rejected() {
        let _ = scalable_receiver_radio(0.0);
    }
}
