//! Downlink (indirect transmission) energy model — an extension beyond the
//! paper, which describes the mechanism (its Figure 1b) but evaluates only
//! the uplink.
//!
//! In the beacon-enabled star network the coordinator cannot push data to
//! sleeping nodes. When a node finds its address in the beacon's
//! pending-address list it:
//!
//! 1. contends (slotted CSMA/CA) to send a **data request** MAC command
//!    (10-byte MPDU with short addressing);
//! 2. receives the coordinator's acknowledgement;
//! 3. keeps the receiver on until the **data frame** arrives
//!    (`aMaxFrameResponseTime` bounds the wait);
//! 4. transmits an acknowledgement for the data frame.
//!
//! The additional energy per downlink delivery rides on the same radio
//! characterization and contention statistics as the uplink model, so the
//! two compose into a full bidirectional budget.

use wsn_phy::consts::bytes;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{PhaseTag, RadioModel, RadioState, TxPowerLevel};
use wsn_sim::ContentionStats;
use wsn_units::{Energy, Seconds};

/// MPDU bytes of the data-request MAC command with short addressing:
/// FC 2 + seq 1 + dest PAN 2 + dest 2 + src 2 (intra-PAN) + command id 1 +
/// FCS 2, plus the 6-byte SHR/PHR.
pub const DATA_REQUEST_AIR_BYTES: usize = 6 + 10;

/// Maximum wait for the requested frame (`aMaxFrameResponseTime`,
/// 1220 symbols).
pub fn max_frame_response_time() -> Seconds {
    wsn_phy::consts::symbols(1220)
}

/// Energy cost of one indirect (downlink) delivery for a node.
#[derive(Debug, Clone, Copy)]
pub struct DownlinkCost {
    /// Energy spent contending and transmitting the data request.
    pub request: Energy,
    /// Energy spent receiving the requested data frame (including the
    /// post-request wait).
    pub reception: Energy,
    /// Energy spent acknowledging the data frame.
    pub acknowledge: Energy,
}

impl DownlinkCost {
    /// Total extra energy per downlink delivery.
    pub fn total(&self) -> Energy {
        self.request + self.reception + self.acknowledge
    }
}

/// Evaluates the downlink transaction cost.
///
/// `payload` is the downlink frame's payload; `contention` the statistics
/// at the operating load (the data request contends like any uplink
/// packet); `tx_level` the node's transmit level; `response_wait` how long
/// the receiver stays on before the data frame starts (defaults to half
/// the standard's maximum if `None` — the coordinator answers promptly).
pub fn downlink_cost(
    radio: &RadioModel,
    payload: PacketLayout,
    contention: &ContentionStats,
    tx_level: TxPowerLevel,
    response_wait: Option<Seconds>,
) -> DownlinkCost {
    let p_idle = radio.state_power(RadioState::Idle);
    let p_rx = radio.state_power(RadioState::Rx);
    let p_tx = radio.state_power(RadioState::Tx(tx_level));
    let t_ia = radio.turn_on_time();

    // Request: contention idle time + CCA turn-ons + command airtime + ACK.
    let e_contention = p_idle * contention.mean_contention
        + Energy::from_joules(
            radio
                .transition(RadioState::Idle, RadioState::Rx)
                .expect("legal")
                .energy
                .joules()
                * contention.mean_ccas,
        );
    let e_tx_request = p_tx * (bytes(DATA_REQUEST_AIR_BYTES) + t_ia);
    let e_req_ack = p_rx * (Seconds::from_micros(192.0) + wsn_phy::frame::ack_duration());
    let request = e_contention + e_tx_request + e_req_ack;

    // Reception: wait for the frame, then take it.
    let wait = response_wait.unwrap_or(max_frame_response_time() / 2.0);
    let reception = p_rx * (wait + payload.duration());

    // Acknowledge the data frame (turnaround + ACK airtime).
    let acknowledge = p_tx * (Seconds::from_micros(192.0) + wsn_phy::frame::ack_duration());

    DownlinkCost {
        request,
        reception,
        acknowledge,
    }
}

/// Average extra power when a fraction `downlink_rate` of superframes
/// delivers one downlink frame to this node.
///
/// # Panics
///
/// Panics unless `0 ≤ downlink_rate ≤ 1`.
pub fn downlink_average_power(
    cost: &DownlinkCost,
    downlink_rate: f64,
    beacon_interval: Seconds,
) -> wsn_units::Power {
    assert!(
        (0.0..=1.0).contains(&downlink_rate),
        "downlink rate must be a fraction of superframes"
    );
    cost.total() * downlink_rate / beacon_interval
}

/// Bookkeeping tag for downlink energy in merged ledgers — the same
/// phase the discrete-event simulator's accountant charges, so analytical
/// and simulated ledgers merge onto one axis.
pub const DOWNLINK_PHASE: PhaseTag = PhaseTag::Downlink;

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_mac::BeaconOrder;

    fn setup() -> (RadioModel, PacketLayout, ContentionStats) {
        (
            RadioModel::cc2420(),
            PacketLayout::with_payload(60).unwrap(),
            ContentionStats::ideal(),
        )
    }

    #[test]
    fn downlink_costs_are_positive_and_ordered() {
        let (radio, payload, stats) = setup();
        let cost = downlink_cost(&radio, payload, &stats, TxPowerLevel::Neg5, None);
        assert!(cost.request.joules() > 0.0);
        assert!(cost.reception.joules() > 0.0);
        assert!(cost.acknowledge.joules() > 0.0);
        // The response wait dominates: receiver-on for ~10 ms.
        assert!(cost.reception > cost.request);
        assert!(cost.request > cost.acknowledge);
        let total = cost.total();
        assert!(
            (total.joules() - (cost.request + cost.reception + cost.acknowledge).joules()).abs()
                < 1e-18
        );
    }

    #[test]
    fn prompt_coordinator_is_cheaper() {
        let (radio, payload, stats) = setup();
        let lazy = downlink_cost(&radio, payload, &stats, TxPowerLevel::Neg5, None);
        let prompt = downlink_cost(
            &radio,
            payload,
            &stats,
            TxPowerLevel::Neg5,
            Some(Seconds::from_micros(192.0)),
        );
        assert!(prompt.total() < lazy.total());
    }

    #[test]
    fn downlink_power_scales_with_rate() {
        let (radio, payload, stats) = setup();
        let cost = downlink_cost(&radio, payload, &stats, TxPowerLevel::Neg5, None);
        let t_ib = BeaconOrder::new(6).unwrap().beacon_interval();
        let never = downlink_average_power(&cost, 0.0, t_ib);
        let always = downlink_average_power(&cost, 1.0, t_ib);
        let sometimes = downlink_average_power(&cost, 0.1, t_ib);
        assert_eq!(never.watts(), 0.0);
        assert!((sometimes.watts() - always.watts() * 0.1).abs() < 1e-15);
        // One downlink per superframe costs hundreds of µW with the
        // default (pessimistic) response wait — the receiver-on time
        // dominates, which is exactly why the paper's scalable-receiver
        // improvement matters for bidirectional traffic too.
        let uw = always.microwatts();
        assert!((50.0..900.0).contains(&uw), "downlink power {uw} µW");
        // With a prompt coordinator the cost falls near the uplink budget.
        let prompt = downlink_cost(
            &radio,
            payload,
            &stats,
            TxPowerLevel::Neg5,
            Some(Seconds::from_micros(192.0)),
        );
        let prompt_uw = downlink_average_power(&prompt, 1.0, t_ib).microwatts();
        assert!(prompt_uw < uw / 2.0, "prompt {prompt_uw} vs lazy {uw}");
    }

    #[test]
    fn response_time_constant_matches_standard() {
        assert!((max_frame_response_time().millis() - 19.52).abs() < 1e-9);
    }

    #[test]
    fn air_bytes_agree_with_the_simulator() {
        // `wsn_sim::cfp` redeclares the data-request airtime constant
        // (the dependency points this way); the two must never drift.
        assert_eq!(DATA_REQUEST_AIR_BYTES, wsn_sim::cfp::DATA_REQUEST_AIR_BYTES);
    }

    #[test]
    fn analytical_cost_tracks_the_simulated_downlink_exchange() {
        // The discrete-event accountant charges a delivered poll:
        // contention + request + request-ACK + prompt frame + frame-ACK.
        // The analytical `downlink_cost` with a prompt coordinator
        // (response wait = one turnaround) must agree on the
        // contention-free part of the budget to first order — the
        // cross-validation that makes this module and the simulator two
        // views of one model.
        let (radio, payload, stats) = setup();
        let cost = downlink_cost(
            &radio,
            payload,
            &stats,
            TxPowerLevel::Neg5,
            Some(Seconds::from_micros(192.0)),
        );
        // Reproduce the accountant's ledger arithmetic for one delivered
        // poll with zero contention (the `ideal` stats used here).
        let p_rx = radio.state_power(wsn_radio::RadioState::Rx);
        let p_tx = radio.state_power(wsn_radio::RadioState::Tx(TxPowerLevel::Neg5));
        let turn = Seconds::from_micros(192.0);
        let t_ack = wsn_phy::frame::ack_duration();
        let sim_like = p_tx * wsn_phy::consts::bytes(DATA_REQUEST_AIR_BYTES)
            + p_rx * (turn + t_ack)
            + p_rx * (turn + payload.duration())
            + p_tx * (turn + t_ack);
        let analytical = cost.total().joules();
        let simulated = sim_like.joules();
        let rel = (analytical - simulated).abs() / analytical;
        assert!(
            rel < 0.25,
            "analytical {analytical:.2e} J vs simulated-style {simulated:.2e} J (rel {rel:.2})"
        );
    }

    #[test]
    #[should_panic(expected = "fraction of superframes")]
    fn silly_rate_rejected() {
        let (radio, payload, stats) = setup();
        let cost = downlink_cost(&radio, payload, &stats, TxPowerLevel::Neg5, None);
        let _ = downlink_average_power(&cost, 1.5, Seconds::from_secs(1.0));
    }
}
