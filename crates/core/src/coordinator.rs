//! Coordinator-side energy model — an extension beyond the paper.
//!
//! The paper treats the network coordinator as "the base-station" and never
//! costs it: with its receiver effectively always on, it cannot be
//! energy-scavenging anyway. This module quantifies that assumption so a
//! system designer can see *why* the star topology concentrates the energy
//! problem at one mains-powered point:
//!
//! * the coordinator transmits every beacon and one acknowledgement per
//!   delivered uplink packet;
//! * it must listen during the whole contention access period (it cannot
//!   know when a node will transmit);
//! * per delivered packet it also receives the packet itself.

use wsn_mac::BeaconOrder;
use wsn_phy::frame::{ack_duration, beacon_duration, PacketLayout};
use wsn_radio::{RadioModel, RadioState, TxPowerLevel};
use wsn_units::{Power, Seconds};

/// Inputs of the coordinator energy evaluation.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorInputs {
    /// Beacon order of the network.
    pub beacon_order: BeaconOrder,
    /// Uplink packet layout.
    pub packet: PacketLayout,
    /// Nodes served on this channel.
    pub nodes: usize,
    /// Mean transmissions per node per superframe (collisions and
    /// corrupted packets still occupy the receiver).
    pub mean_attempts_per_node: f64,
    /// Fraction of attempts that are acknowledged (only these cost an ACK
    /// transmission).
    pub acked_fraction: f64,
    /// Transmit level used for beacons and acknowledgements.
    pub tx_level: TxPowerLevel,
}

/// Coordinator energy summary.
#[derive(Debug, Clone, Copy)]
pub struct CoordinatorReport {
    /// Average coordinator power over the beacon interval.
    pub average_power: Power,
    /// Receiver duty cycle (fraction of the interval with RX on).
    pub rx_duty: f64,
    /// Transmitter duty cycle (beacons + acknowledgements).
    pub tx_duty: f64,
}

/// Evaluates the coordinator's power for one channel.
///
/// # Panics
///
/// Panics if `mean_attempts_per_node` is negative or `acked_fraction` is
/// outside `[0, 1]`.
pub fn coordinator_power(radio: &RadioModel, inputs: &CoordinatorInputs) -> CoordinatorReport {
    assert!(
        inputs.mean_attempts_per_node >= 0.0,
        "attempts must be non-negative"
    );
    assert!(
        (0.0..=1.0).contains(&inputs.acked_fraction),
        "acked fraction must be in [0, 1]"
    );

    let t_ib = inputs.beacon_order.beacon_interval();
    let attempts = inputs.nodes as f64 * inputs.mean_attempts_per_node;

    // Transmit: one beacon per superframe plus one ACK per acked attempt.
    let t_tx = beacon_duration() + ack_duration() * (attempts * inputs.acked_fraction);

    // The ACK turnaround spends 192 µs switching; fold into TX
    // conservatively via the radio's turnaround time.
    let t_turnaround = radio.turnaround_time() * (attempts * inputs.acked_fraction) * 2.0;

    // Receive: everything that is not transmitting is listening (the
    // contention access period spans the whole active superframe here).
    let t_rx = (t_ib - t_tx - t_turnaround).max(Seconds::ZERO);

    let p_tx = radio.state_power(RadioState::Tx(inputs.tx_level));
    let p_rx = radio.state_power(RadioState::Rx);
    let energy = p_tx * (t_tx + t_turnaround) + p_rx * t_rx;

    CoordinatorReport {
        average_power: energy / t_ib,
        rx_duty: t_rx / t_ib,
        tx_duty: (t_tx + t_turnaround) / t_ib,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> CoordinatorInputs {
        CoordinatorInputs {
            beacon_order: BeaconOrder::new(6).unwrap(),
            packet: PacketLayout::with_payload(120).unwrap(),
            nodes: 100,
            mean_attempts_per_node: 1.1,
            acked_fraction: 0.9,
            tx_level: TxPowerLevel::Zero,
        }
    }

    #[test]
    fn coordinator_is_receiver_bound() {
        let r = coordinator_power(&RadioModel::cc2420(), &inputs());
        // Listening dominates: the coordinator runs at essentially full
        // receiver power — ≈ 35 mW, 170× the node's 211 µW budget.
        assert!(r.rx_duty > 0.9, "rx duty {}", r.rx_duty);
        let mw = r.average_power.milliwatts();
        assert!((30.0..36.0).contains(&mw), "coordinator power {mw} mW");
    }

    #[test]
    fn more_traffic_means_more_tx_duty() {
        let mut heavy = inputs();
        heavy.mean_attempts_per_node = 2.0;
        let light = coordinator_power(&RadioModel::cc2420(), &inputs());
        let loaded = coordinator_power(&RadioModel::cc2420(), &heavy);
        assert!(loaded.tx_duty > light.tx_duty);
        assert!((loaded.rx_duty + loaded.tx_duty - 1.0).abs() < 1e-9);
    }

    #[test]
    fn idle_channel_still_costs_full_rx() {
        let mut idle = inputs();
        idle.mean_attempts_per_node = 0.0;
        let r = coordinator_power(&RadioModel::cc2420(), &idle);
        // Only the beacon interrupts listening.
        assert!(r.rx_duty > 0.999);
        assert!(
            (r.average_power.milliwatts() - 35.28).abs() < 0.1,
            "power {}",
            r.average_power
        );
    }

    #[test]
    #[should_panic(expected = "acked fraction")]
    fn bad_fraction_rejected() {
        let mut bad = inputs();
        bad.acked_fraction = 1.5;
        let _ = coordinator_power(&RadioModel::cc2420(), &bad);
    }
}
