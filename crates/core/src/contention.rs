//! Sources of contention statistics for the analytical model.
//!
//! The model's equations consume four empirical quantities — `T̄_cont`,
//! `N̄_CCA`, `Pr_col`, `Pr_cf` — as functions of the network load λ and the
//! packet layout. The paper obtains them by Monte-Carlo simulation
//! (Figure 6); this module offers that source plus two alternatives:
//!
//! * [`MonteCarloContention`] — runs `wsn-sim`'s contention simulator on
//!   demand and caches the result per `(λ, payload)`;
//! * [`TableContention`] — a pre-computed grid with bilinear interpolation,
//!   for fast parameter sweeps (build one from the Monte-Carlo source with
//!   [`TableContention::tabulate`]);
//! * [`AnalyticContention`] — a closed-form fixed-point approximation
//!   (extension beyond the paper: no simulation required, useful for
//!   design-space exploration; cruder on collision clustering);
//! * [`IdealContention`] — a contention-free channel (ablation baseline).

use std::collections::HashMap;
use std::sync::Mutex;

use wsn_mac::csma::CsmaParams;
use wsn_mac::RetryPolicy;
use wsn_phy::frame::PacketLayout;
use wsn_sim::contention::run_channel_sim_into;
use wsn_sim::{
    replication_seed, simulate_contention, ChannelSimConfig, ContentionStats, Runner, StatsSink,
};
use wsn_units::{Probability, Seconds};

/// Supplies contention statistics for a given load and packet layout.
pub trait ContentionModel {
    /// Returns the statistics at network load `load` for `packet`.
    fn stats(&self, load: f64, packet: PacketLayout) -> ContentionStats;
}

impl<T: ContentionModel + ?Sized> ContentionModel for &T {
    fn stats(&self, load: f64, packet: PacketLayout) -> ContentionStats {
        (**self).stats(load, packet)
    }
}

/// A collision-free, always-clear channel: the minimum contention cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealContention;

impl ContentionModel for IdealContention {
    fn stats(&self, _load: f64, _packet: PacketLayout) -> ContentionStats {
        ContentionStats::ideal()
    }
}

/// Monte-Carlo backed statistics with memoization.
///
/// # Examples
///
/// ```
/// use wsn_core::contention::{ContentionModel, MonteCarloContention};
/// use wsn_phy::frame::PacketLayout;
///
/// let mc = MonteCarloContention::figure6().with_superframes(10);
/// let packet = PacketLayout::with_payload(50)?;
/// let a = mc.stats(0.3, packet);
/// let b = mc.stats(0.3, packet); // served from cache
/// assert_eq!(a.procedures, b.procedures);
/// # Ok::<(), wsn_phy::frame::FrameError>(())
/// ```
#[derive(Debug)]
pub struct MonteCarloContention {
    nodes: usize,
    csma: CsmaParams,
    retries: RetryPolicy,
    superframes: u32,
    replications: u32,
    seed: u64,
    cache: Mutex<HashMap<(u64, usize), ContentionStats>>,
}

impl MonteCarloContention {
    /// The paper's Figure 6 setting: 100 nodes, standard CSMA parameters,
    /// `N_max = 5`, one replication per point.
    pub fn figure6() -> Self {
        MonteCarloContention {
            nodes: 100,
            csma: CsmaParams::standard_2003(),
            retries: RetryPolicy::paper(),
            superframes: 40,
            replications: 1,
            seed: 0x0F16_6AA0,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the number of nodes sharing the channel.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Overrides the CSMA/CA parameters.
    pub fn with_csma(mut self, csma: CsmaParams) -> Self {
        self.csma = csma;
        self
    }

    /// Overrides the number of simulated superframes per point.
    pub fn with_superframes(mut self, superframes: u32) -> Self {
        self.superframes = superframes;
        self
    }

    /// Overrides the number of independent replications merged per point
    /// (clamped to at least 1). With `r > 1` every `(load, payload)`
    /// point is the exact replication-order merge of `r` simulations with
    /// [`replication_seed`]-derived seeds — tighter statistics, and
    /// [`prewarm`](Self::prewarm) parallelizes over the full
    /// `points × replications` grid.
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn key(load: f64, packet: PacketLayout) -> (u64, usize) {
        ((load * 1e9).round() as u64, packet.payload_bytes())
    }

    /// The base configuration of one `(load, packet)` point.
    fn config_for(&self, load: f64, packet: PacketLayout) -> ChannelSimConfig {
        assert!(
            load > 0.0 && load < 1.0,
            "load must be in (0,1), got {load}"
        );
        let key = Self::key(load, packet);
        ChannelSimConfig {
            nodes: self.nodes,
            packet,
            load,
            csma: self.csma,
            retries: self.retries,
            superframes: self.superframes,
            seed: self.seed ^ key.0 ^ (key.1 as u64) << 40,
            synchronized_arrivals: false,
            cfp: wsn_sim::CfpPlan::inert(),
            faults: wsn_sim::FaultPlan::inert(),
        }
    }

    /// One replication's statistics sink for a point. Replication 0
    /// always keeps the point's base seed (so a single-replication source
    /// reproduces pre-replication outputs exactly, and `fig6 --reps N`
    /// follows the same convention); further replications derive their
    /// seeds with [`replication_seed`].
    fn replication_sink(&self, base: &ChannelSimConfig, i: u64) -> StatsSink {
        let mut cfg = base.clone();
        if i > 0 {
            cfg.seed = replication_seed(base.seed, i);
        }
        let timings = cfg.timings();
        let mut sink = StatsSink::new();
        run_channel_sim_into(&cfg, &timings, |_| false, &mut sink);
        sink
    }

    /// The uncached Monte-Carlo evaluation of one `(load, packet)` point:
    /// the fixed-order merge over this source's replications.
    fn compute(&self, load: f64, packet: PacketLayout) -> ContentionStats {
        let base = self.config_for(load, packet);
        if self.replications == 1 {
            return simulate_contention(&base);
        }
        let mut merged = StatsSink::new();
        for i in 0..self.replications as u64 {
            merged.merge(&self.replication_sink(&base, i));
        }
        merged.contention_stats()
    }

    /// Evaluates the given `(load, packet)` points on the parallel runner
    /// and fills the memoization cache, so the model's subsequent
    /// [`ContentionModel::stats`] calls are cache hits.
    ///
    /// The full `points × replications` grid is one flat job list, and
    /// each point's replications merge in replication order afterwards —
    /// so the cached values are bit-identical to what serial on-demand
    /// evaluation would have produced, regardless of the runner's thread
    /// count.
    pub fn prewarm(&self, runner: &Runner, points: &[(f64, PacketLayout)]) {
        // Skip cached points and duplicates, preserving first-seen order.
        let mut fresh: Vec<(f64, PacketLayout)> = Vec::new();
        {
            let cache = self.cache.lock().expect("cache poisoned");
            for &(load, packet) in points {
                let key = Self::key(load, packet);
                if !cache.contains_key(&key)
                    && !fresh.iter().any(|&(l, p)| Self::key(l, p) == key)
                {
                    fresh.push((load, packet));
                }
            }
        }
        if fresh.is_empty() {
            return;
        }
        let sinks = runner.map_replicated(&fresh, self.replications, |_, &(load, packet), r| {
            self.replication_sink(&self.config_for(load, packet), r)
        });
        let mut cache = self.cache.lock().expect("cache poisoned");
        for (&(load, packet), point_sinks) in fresh.iter().zip(&sinks) {
            let mut merged = StatsSink::new();
            for sink in point_sinks {
                merged.merge(sink);
            }
            cache.insert(Self::key(load, packet), merged.contention_stats());
        }
    }
}

impl ContentionModel for MonteCarloContention {
    fn stats(&self, load: f64, packet: PacketLayout) -> ContentionStats {
        let key = Self::key(load, packet);
        if let Some(hit) = self.cache.lock().expect("cache poisoned").get(&key) {
            return *hit;
        }
        let stats = self.compute(load, packet);
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key, stats);
        stats
    }
}

/// A rectangular `(load, payload)` grid of pre-computed statistics with
/// bilinear interpolation between grid points.
#[derive(Debug, Clone)]
pub struct TableContention {
    loads: Vec<f64>,
    payloads: Vec<usize>,
    /// Row-major: `grid[load_idx * payloads.len() + payload_idx]`.
    grid: Vec<ContentionStats>,
}

impl TableContention {
    /// Builds a table by evaluating `source` on the cartesian grid.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing.
    pub fn tabulate<M: ContentionModel>(source: &M, loads: &[f64], payloads: &[usize]) -> Self {
        assert!(!loads.is_empty() && !payloads.is_empty(), "empty grid");
        assert!(
            loads.windows(2).all(|w| w[0] < w[1]),
            "loads must be strictly increasing"
        );
        assert!(
            payloads.windows(2).all(|w| w[0] < w[1]),
            "payloads must be strictly increasing"
        );
        let mut grid = Vec::with_capacity(loads.len() * payloads.len());
        for &load in loads {
            for &payload in payloads {
                let packet =
                    PacketLayout::with_payload(payload).expect("tabulated payload within range");
                grid.push(source.stats(load, packet));
            }
        }
        TableContention {
            loads: loads.to_vec(),
            payloads: payloads.to_vec(),
            grid,
        }
    }

    /// Builds the same table with the grid evaluated on the parallel
    /// [`Runner`] — each `(load, payload)` cell is an independent job, so
    /// a design-space table fills in parallel instead of serially. The
    /// result is identical to [`tabulate`](Self::tabulate) for any
    /// deterministic source, for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing.
    pub fn tabulate_parallel<M: ContentionModel + Sync>(
        runner: &Runner,
        source: &M,
        loads: &[f64],
        payloads: &[usize],
    ) -> Self {
        assert!(!loads.is_empty() && !payloads.is_empty(), "empty grid");
        assert!(
            loads.windows(2).all(|w| w[0] < w[1]),
            "loads must be strictly increasing"
        );
        assert!(
            payloads.windows(2).all(|w| w[0] < w[1]),
            "payloads must be strictly increasing"
        );
        let cells: Vec<(f64, usize)> = loads
            .iter()
            .flat_map(|&load| payloads.iter().map(move |&payload| (load, payload)))
            .collect();
        let grid = runner.map(&cells, |_, &(load, payload)| {
            let packet =
                PacketLayout::with_payload(payload).expect("tabulated payload within range");
            source.stats(load, packet)
        });
        TableContention {
            loads: loads.to_vec(),
            payloads: payloads.to_vec(),
            grid,
        }
    }

    fn at(&self, li: usize, pi: usize) -> &ContentionStats {
        &self.grid[li * self.payloads.len() + pi]
    }

    /// Locates the bracketing indices and interpolation weight for `x` on
    /// `axis` (clamping outside the grid).
    fn locate(axis: &[f64], x: f64) -> (usize, usize, f64) {
        if x <= axis[0] {
            return (0, 0, 0.0);
        }
        if x >= *axis.last().expect("non-empty axis") {
            let last = axis.len() - 1;
            return (last, last, 0.0);
        }
        let hi = axis.partition_point(|&v| v < x).max(1);
        let lo = hi - 1;
        let w = (x - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, hi, w)
    }
}

fn lerp(a: f64, b: f64, w: f64) -> f64 {
    a + (b - a) * w
}

fn blend(a: &ContentionStats, b: &ContentionStats, w: f64) -> ContentionStats {
    ContentionStats {
        mean_contention: Seconds::from_secs(lerp(
            a.mean_contention.secs(),
            b.mean_contention.secs(),
            w,
        )),
        mean_ccas: lerp(a.mean_ccas, b.mean_ccas, w),
        pr_collision: Probability::clamped(lerp(a.pr_collision.value(), b.pr_collision.value(), w)),
        pr_access_failure: Probability::clamped(lerp(
            a.pr_access_failure.value(),
            b.pr_access_failure.value(),
            w,
        )),
        procedures: a.procedures.min(b.procedures),
        transmissions: a.transmissions.min(b.transmissions),
    }
}

impl ContentionModel for TableContention {
    fn stats(&self, load: f64, packet: PacketLayout) -> ContentionStats {
        let (l0, l1, wl) = Self::locate(&self.loads, load);
        let paxis: Vec<f64> = self.payloads.iter().map(|&p| p as f64).collect();
        let (p0, p1, wp) = Self::locate(&paxis, packet.payload_bytes() as f64);
        let low = blend(self.at(l0, p0), self.at(l0, p1), wp);
        let high = blend(self.at(l1, p0), self.at(l1, p1), wp);
        blend(&low, &high, wl)
    }
}

/// A closed-form approximation of the slotted CSMA/CA statistics —
/// an *extension* beyond the paper, for instant design-space exploration.
///
/// The model iterates a fixed point on the channel utilization `u`:
///
/// * a CCA at a random backoff boundary finds the channel busy with
///   probability `b ≈ u`;
/// * the second CCA of a contention window fails only if a transmission
///   *starts* in that very slot (`c ≈ u/D`, `D` = packet length in slots);
/// * a backoff round fails with `f = b + (1−b)·c`, so channel access fails
///   with `f^(m+1)` after `m = macMaxCSMABackoffs` extra rounds;
/// * collisions require another node to finish its contention in the same
///   slot; with start rate `g ≈ u/D` per slot this is `1 − e^(−κg)`, where
///   the clustering factor `κ` captures the pile-up of deferred nodes at
///   the end of busy periods (κ ≈ 3 matches the Monte-Carlo within a
///   factor ~2 across the Figure 6 range);
/// * utilization feeds back through the expected number of transmissions.
///
/// Accuracy: within tens of percent of the Monte-Carlo for `Pr_cf`,
/// `N̄_CCA` and `T̄_cont` at moderate loads; collision probability is the
/// crudest output. Prefer [`MonteCarloContention`] for reproduction runs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticContention {
    csma: CsmaParams,
    retries: RetryPolicy,
    /// Collision clustering factor κ.
    clustering: f64,
}

impl AnalyticContention {
    /// Creates the approximation with the standard CSMA parameters and
    /// κ = 3.
    pub fn new() -> Self {
        AnalyticContention {
            csma: CsmaParams::standard_2003(),
            retries: RetryPolicy::paper(),
            clustering: 3.0,
        }
    }

    /// Overrides the CSMA parameters.
    pub fn with_csma(mut self, csma: CsmaParams) -> Self {
        self.csma = csma;
        self
    }

    /// Overrides the clustering factor κ.
    ///
    /// # Panics
    ///
    /// Panics unless `kappa` is positive and finite.
    pub fn with_clustering(mut self, kappa: f64) -> Self {
        assert!(kappa.is_finite() && kappa > 0.0, "κ must be positive");
        self.clustering = kappa;
        self
    }
}

impl Default for AnalyticContention {
    fn default() -> Self {
        AnalyticContention::new()
    }
}

impl ContentionModel for AnalyticContention {
    fn stats(&self, load: f64, packet: PacketLayout) -> ContentionStats {
        assert!(
            load > 0.0 && load < 1.0,
            "load must be in (0,1), got {load}"
        );
        let slot_us = 320.0;
        // Packet + ACK hold, in backoff slots.
        let d = (packet.duration().micros() + 544.0) / slot_us;
        let rounds = self.csma.max_backoffs as f64 + 1.0;

        // Fixed point on utilization: retransmissions inflate the offered
        // airtime beyond λ.
        let mut u = load;
        let mut f = 0.0;
        let mut pr_col = 0.0;
        for _ in 0..64 {
            let b = u.min(0.999);
            let c = (u / d).min(0.999);
            f = b + (1.0 - b) * c;
            let g = u / d;
            pr_col = 1.0 - (-self.clustering * g).exp();
            // Expected transmissions per transaction (collision-driven
            // retries, truncated at N_max).
            let q = pr_col.min(0.999);
            let n = self.retries.n_max() as f64;
            let e_tx = (1.0 - q.powf(n)) / (1.0 - q);
            let next = (load * e_tx).min(0.98);
            if (next - u).abs() < 1e-12 {
                u = next;
                break;
            }
            u = next;
        }

        let b = u.min(0.999);
        let pr_cf = f.powf(rounds);
        // CCAs per procedure: rounds reached follow a geometric in f.
        let reach = (1.0 - f.powf(rounds)) / (1.0 - f).max(1e-12);
        let mean_ccas = (2.0 - b) * reach;

        // Contention duration: escalating mean backoff windows plus the
        // CCA slots of each round reached.
        let mut t_slots = 0.0;
        let mut p_reach = 1.0;
        for k in 0..self.csma.max_backoffs as u32 + 1 {
            let be = (self.csma.min_be as u32 + k).min(self.csma.max_be as u32);
            let window = ((1u64 << be) - 1) as f64 / 2.0;
            t_slots += p_reach * (window + 2.0 - b);
            p_reach *= f;
        }

        ContentionStats {
            mean_contention: Seconds::from_micros(t_slots * slot_us),
            mean_ccas,
            pr_collision: Probability::clamped(pr_col),
            pr_access_failure: Probability::clamped(pr_cf),
            procedures: 0,
            transmissions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(bytes: usize) -> PacketLayout {
        PacketLayout::with_payload(bytes).unwrap()
    }

    #[test]
    fn ideal_is_contention_free() {
        let s = IdealContention.stats(0.9, packet(120));
        assert_eq!(s.pr_access_failure, Probability::ZERO);
        assert_eq!(s.pr_collision, Probability::ZERO);
    }

    #[test]
    fn monte_carlo_caches() {
        let mc = MonteCarloContention::figure6().with_superframes(6);
        let p = packet(50);
        let t0 = std::time::Instant::now();
        let a = mc.stats(0.4, p);
        let cold = t0.elapsed();
        let t1 = std::time::Instant::now();
        let b = mc.stats(0.4, p);
        let warm = t1.elapsed();
        assert_eq!(a, b);
        assert!(
            warm < cold / 10,
            "cache hit ({warm:?}) should be far faster than miss ({cold:?})"
        );
    }

    #[test]
    fn prewarm_fills_cache_with_identical_values() {
        let p50 = packet(50);
        let p100 = packet(100);
        let points = [(0.2, p50), (0.4, p100), (0.2, p50)]; // duplicate on purpose

        let warmed = MonteCarloContention::figure6().with_superframes(6);
        warmed.prewarm(&Runner::with_threads(4), &points);

        let cold = MonteCarloContention::figure6().with_superframes(6);
        for &(load, pkt) in &points {
            assert_eq!(warmed.stats(load, pkt), cold.stats(load, pkt));
        }
    }

    #[test]
    #[should_panic(expected = "load must be in (0,1)")]
    fn monte_carlo_rejects_bad_load() {
        let mc = MonteCarloContention::figure6();
        let _ = mc.stats(0.0, packet(50));
    }

    #[test]
    fn replicated_prewarm_matches_serial_stats() {
        let p = packet(80);
        let points = [(0.3, p), (0.5, p)];
        let warmed = MonteCarloContention::figure6()
            .with_superframes(5)
            .with_replications(3);
        warmed.prewarm(&Runner::with_threads(4), &points);
        let cold = MonteCarloContention::figure6()
            .with_superframes(5)
            .with_replications(3);
        for &(load, pkt) in &points {
            assert_eq!(warmed.stats(load, pkt), cold.stats(load, pkt));
        }
        // Three replications observe three single-replication sample sets.
        let single = MonteCarloContention::figure6().with_superframes(5);
        let one = single.stats(0.3, p);
        let three = cold.stats(0.3, p);
        assert!(three.procedures > one.procedures);
    }

    #[test]
    fn tabulate_parallel_matches_serial_tabulate() {
        let loads = [0.2, 0.4, 0.6];
        let payloads = [20usize, 60, 100];
        let serial = TableContention::tabulate(&LinearSource, &loads, &payloads);
        for threads in [1, 4] {
            let parallel = TableContention::tabulate_parallel(
                &Runner::with_threads(threads),
                &LinearSource,
                &loads,
                &payloads,
            );
            for &load in &loads {
                for &p in &payloads {
                    assert_eq!(
                        serial.stats(load, packet(p)),
                        parallel.stats(load, packet(p)),
                        "threads={threads} cell ({load},{p})"
                    );
                }
            }
        }
    }

    /// A fake analytic source for interpolation tests: every statistic is a
    /// simple linear function of (load, payload).
    struct LinearSource;

    impl ContentionModel for LinearSource {
        fn stats(&self, load: f64, packet: PacketLayout) -> ContentionStats {
            ContentionStats {
                mean_contention: Seconds::from_millis(load * 10.0),
                mean_ccas: 2.0 + load + packet.payload_bytes() as f64 / 100.0,
                pr_collision: Probability::clamped(load / 2.0),
                pr_access_failure: Probability::clamped(load / 4.0),
                procedures: 1000,
                transmissions: 900,
            }
        }
    }

    #[test]
    fn table_reproduces_grid_points_exactly() {
        let table = TableContention::tabulate(&LinearSource, &[0.2, 0.4, 0.8], &[10, 50, 100]);
        let direct = LinearSource.stats(0.4, packet(50));
        let via_table = table.stats(0.4, packet(50));
        assert_eq!(via_table.mean_ccas, direct.mean_ccas);
        assert_eq!(via_table.pr_collision, direct.pr_collision);
    }

    #[test]
    fn table_interpolates_linearly_between_points() {
        let table = TableContention::tabulate(&LinearSource, &[0.2, 0.4], &[10, 100]);
        // Midpoint in both axes: a linear function is recovered exactly.
        let got = table.stats(0.3, packet(55));
        let want = LinearSource.stats(0.3, packet(55));
        assert!((got.mean_ccas - want.mean_ccas).abs() < 1e-12);
        assert!((got.mean_contention.secs() - want.mean_contention.secs()).abs() < 1e-12);
        assert!((got.pr_access_failure.value() - want.pr_access_failure.value()).abs() < 1e-12);
    }

    #[test]
    fn table_clamps_outside_grid() {
        let table = TableContention::tabulate(&LinearSource, &[0.2, 0.4], &[10, 100]);
        let below = table.stats(0.05, packet(10));
        let at_edge = table.stats(0.2, packet(10));
        assert_eq!(below.mean_ccas, at_edge.mean_ccas);
        let above = table.stats(0.99, packet(120));
        let hi_edge = table.stats(0.4, packet(100));
        assert_eq!(above.mean_ccas, hi_edge.mean_ccas);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_rejected() {
        let _ = TableContention::tabulate(&LinearSource, &[0.4, 0.2], &[10]);
    }

    #[test]
    fn analytic_stats_degrade_with_load() {
        let a = AnalyticContention::new();
        let p = packet(100);
        let lo = a.stats(0.1, p);
        let hi = a.stats(0.7, p);
        assert!(hi.mean_contention > lo.mean_contention);
        assert!(hi.mean_ccas > lo.mean_ccas);
        assert!(hi.pr_collision.value() > lo.pr_collision.value());
        assert!(hi.pr_access_failure.value() > lo.pr_access_failure.value());
    }

    #[test]
    fn analytic_tracks_monte_carlo_order_of_magnitude() {
        let analytic = AnalyticContention::new();
        let mc = MonteCarloContention::figure6().with_superframes(20);
        let p = packet(100);
        for load in [0.2, 0.42, 0.6] {
            let a = analytic.stats(load, p);
            let m = mc.stats(load, p);
            // N_CCA within ±40 %.
            let cca_ratio = a.mean_ccas / m.mean_ccas;
            assert!(
                (0.6..1.7).contains(&cca_ratio),
                "λ={load}: N_CCA analytic {:.2} vs MC {:.2}",
                a.mean_ccas,
                m.mean_ccas
            );
            // Contention duration within a factor 2.5.
            let t_ratio = a.mean_contention.secs() / m.mean_contention.secs();
            assert!(
                (0.4..2.5).contains(&t_ratio),
                "λ={load}: T_cont analytic {} vs MC {}",
                a.mean_contention,
                m.mean_contention
            );
            // Access failure within a factor ~3 once it is non-negligible.
            if m.pr_access_failure.value() > 0.02 {
                let cf_ratio = a.pr_access_failure.value() / m.pr_access_failure.value();
                assert!(
                    (0.3..3.5).contains(&cf_ratio),
                    "λ={load}: Pr_cf analytic {:.3} vs MC {:.3}",
                    a.pr_access_failure.value(),
                    m.pr_access_failure.value()
                );
            }
        }
    }

    #[test]
    fn analytic_ideal_limit() {
        // Vanishing load approaches the ideal contention cost.
        let a = AnalyticContention::new().stats(0.001, packet(100));
        let ideal = ContentionStats::ideal();
        assert!((a.mean_ccas - 2.0).abs() < 0.05, "N_CCA {}", a.mean_ccas);
        assert!(a.pr_access_failure.value() < 1e-4);
        let ratio = a.mean_contention.secs() / ideal.mean_contention.secs();
        assert!((0.9..1.1).contains(&ratio), "T_cont ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "κ must be positive")]
    fn analytic_rejects_bad_kappa() {
        let _ = AnalyticContention::new().with_clustering(0.0);
    }
}
