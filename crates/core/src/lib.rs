//! The paper's contribution: an analytical energy/reliability model of an
//! IEEE 802.15.4 node in a dense, beacon-enabled microsensor network, and
//! the optimization studies built on it.
//!
//! * [`contention`] — the [`ContentionModel`]
//!   abstraction feeding `T̄_cont`, `N̄_CCA`, `Pr_col`, `Pr_cf` into the
//!   equations: Monte-Carlo backed, pre-tabulated (interpolating), or ideal;
//! * [`activation`] — the radio activation policy model, equations (3)–(14)
//!   of the paper: expected idle/TX/RX residencies, average power,
//!   transmission failure probability, delay and energy per bit, plus the
//!   per-phase/per-state breakdowns of Figure 9;
//! * [`link_adaptation`] — channel-inversion transmit power control with
//!   energy-optimal switching thresholds (Figure 7);
//! * [`packet_sizing`] — energy per bit versus payload size (Figure 8);
//! * [`case_study`] — the §5 scenario: 1600 nodes / 16 channels, 1 byte
//!   per 8 ms per node, 120-byte buffered packets, BO = 6 (the 211 µW /
//!   1.45 s / 16 % headline and Figure 9);
//! * [`improvements`] — the improvement perspectives: faster state
//!   transitions and a scalable receiver (−12 % and −15 % in the paper).
//!
//! # Quickstart
//!
//! ```
//! use wsn_core::activation::{ActivationModel, ModelInputs};
//! use wsn_core::contention::{ContentionModel, IdealContention};
//! use wsn_mac::BeaconOrder;
//! use wsn_phy::ber::EmpiricalCc2420Ber;
//! use wsn_phy::frame::PacketLayout;
//! use wsn_radio::{RadioModel, TxPowerLevel};
//! use wsn_units::Db;
//!
//! let model = ActivationModel::paper_defaults(RadioModel::cc2420());
//! let packet = PacketLayout::with_payload(120)?;
//! let stats = IdealContention.stats(0.42, packet);
//! let out = model.evaluate(&ModelInputs {
//!     packet,
//!     beacon_order: BeaconOrder::new(6)?,
//!     tx_level: TxPowerLevel::Zero,
//!     path_loss: Db::new(75.0),
//!     contention: stats,
//! }, &EmpiricalCc2420Ber::paper());
//! assert!(out.average_power.microwatts() < 300.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod case_study;
pub mod contention;
pub mod coordinator;
pub mod downlink;
pub mod improvements;
pub mod link_adaptation;
pub mod packet_sizing;

pub use activation::{ActivationModel, ModelInputs, ModelOutput, ModelRefinements};
pub use case_study::{CaseStudy, CaseStudyReport};
pub use contention::{
    AnalyticContention, ContentionModel, IdealContention, MonteCarloContention, TableContention,
};
pub use link_adaptation::{LinkAdaptation, LinkAdaptationPolicy};
