//! The radio activation policy model — equations (3)–(14) of the paper.
//!
//! Given a packet layout, the contention statistics, a transmit power level
//! and a path loss, the model predicts the expected per-superframe radio
//! state residencies, the average node power, the transmission failure
//! probability, the delivery delay and the energy per useful bit — plus the
//! per-phase energy and per-state time breakdowns of Figure 9.
//!
//! ## Equation map
//!
//! | paper | here |
//! |---|---|
//! | (3) `T_packet = (L_o+L)·T_B` | [`PacketLayout::duration`] |
//! | (7)(8) `P_tr(i)`, `P_tr(>N_max)` | [`attempt_distribution`] |
//! | (9) `Pr_tf` | [`ModelOutput::pr_transmission_failure`] |
//! | (10) `Pr_e` | via [`BerModel::packet_error_probability`] |
//! | (4) `T_idle` | [`ModelOutput::t_idle`] |
//! | (5) `T_Tx` | [`ModelOutput::t_tx`] |
//! | (6) `T_Rx` | [`ModelOutput::t_rx`] |
//! | (11)(12) `P_avr`, `T_ib` | [`ModelOutput::average_power`] |
//! | (13) `Pr_fail`, delay | [`ModelOutput::pr_fail`], [`ModelOutput::delay`] |
//! | (14) energy per bit | [`ModelOutput::energy_per_data_bit`] |
//!
//! Ambiguities in the scanned equations are resolved as documented in
//! DESIGN.md §5: the ACK listen window of an unacknowledged attempt is
//! `t_ack⁺ − t_ack⁻` and transition settle times are billed to the arrival
//! state.
//!
//! [`PacketLayout::duration`]: wsn_phy::frame::PacketLayout::duration
//! [`BerModel::packet_error_probability`]: wsn_phy::ber::BerModel::packet_error_probability

use wsn_channel::received_power;
use wsn_mac::{AckTiming, BeaconOrder, RetryPolicy};
use wsn_phy::ber::BerModel;
use wsn_phy::frame::{beacon_duration, PacketLayout};
use wsn_radio::{PhaseTag, RadioModel, RadioState, StateKind, TxPowerLevel};
use wsn_sim::ContentionStats;
use wsn_units::{Db, Energy, Power, Probability, Seconds};

/// Optional refinements beyond the paper's equations.
///
/// All default to `false`, which reproduces the published model exactly.
/// The discrete-event simulator bills all of these physically, so enable
/// them when cross-validating model against simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelRefinements {
    /// Bill the idle→TX turn-on (`T_ia`) before every transmission (the
    /// paper's eq. (5) counts only the packet airtime).
    pub bill_tx_turn_on: bool,
    /// Bill the 8-symbol CCA detection window at receive power on top of
    /// the per-CCA `T_ia` (the paper folds sensing into `T_ia`).
    pub bill_cca_sense: bool,
    /// Bill shutdown leakage over the sleep remainder (the paper neglects
    /// it).
    pub bill_shutdown_leakage: bool,
    /// Bill a long interframe spacing in idle after each attempt.
    pub bill_ifs: bool,
    /// Apply the channel-access-failure probability to *every* retry's
    /// contention procedure, not once per transaction. The paper's eq. (4)
    /// charges `Pr_cf` a single time; in the real protocol a retransmission
    /// whose CSMA procedure fails aborts the remaining retries, which
    /// shortens transactions on bad links.
    pub per_attempt_channel_access: bool,
}

impl ModelRefinements {
    /// Everything the simulator accounts for.
    pub fn physical() -> Self {
        ModelRefinements {
            bill_tx_turn_on: true,
            bill_cca_sense: true,
            bill_shutdown_leakage: true,
            bill_ifs: true,
            per_attempt_channel_access: true,
        }
    }
}

/// The activation-policy model: radio characterization plus the fixed
/// protocol timing constants.
#[derive(Debug, Clone)]
pub struct ActivationModel {
    radio: RadioModel,
    /// Pre-beacon wake-up budget `T_si` (1 ms in the paper).
    wakeup: Seconds,
    /// Beacon airtime.
    beacon: Seconds,
    /// Acknowledgement timing.
    ack: AckTiming,
    /// Retry budget `N_max`.
    retries: RetryPolicy,
    refinements: ModelRefinements,
}

impl ActivationModel {
    /// The paper's configuration: CC2420 radio, `T_si = 1 ms`, 19-byte
    /// beacon, standard ACK timing, `N_max = 5`, no refinements.
    pub fn paper_defaults(radio: RadioModel) -> Self {
        ActivationModel {
            radio,
            wakeup: Seconds::from_millis(1.0),
            beacon: beacon_duration(),
            ack: AckTiming::standard(),
            retries: RetryPolicy::paper(),
            refinements: ModelRefinements::default(),
        }
    }

    /// Replaces the radio model (improvement studies).
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Sets refinement flags.
    pub fn with_refinements(mut self, refinements: ModelRefinements) -> Self {
        self.refinements = refinements;
        self
    }

    /// Overrides the retry budget.
    pub fn with_retries(mut self, retries: RetryPolicy) -> Self {
        self.retries = retries;
        self
    }

    /// Overrides the beacon airtime.
    pub fn with_beacon_duration(mut self, beacon: Seconds) -> Self {
        self.beacon = beacon;
        self
    }

    /// The radio model in use.
    pub fn radio(&self) -> &RadioModel {
        &self.radio
    }

    /// Evaluates the model for one node.
    pub fn evaluate<B: BerModel>(&self, inputs: &ModelInputs, ber: &B) -> ModelOutput {
        let radio = &self.radio;
        let packet = inputs.packet;
        let t_ib = inputs.beacon_order.beacon_interval();
        let t_packet = packet.duration();
        let t_ia = radio.turn_on_time();
        let cont = &inputs.contention;

        // --- reliability chain: eqs (10), (9), (7), (8) ---
        let p_rx = received_power(inputs.tx_level.output_power(), inputs.path_loss);
        let pr_e = ber.packet_error_probability(p_rx, packet);
        let pr_tf = (pr_e.complement() * cont.pr_collision.complement()).complement();
        let (expected_attempts_eq7, expected_failed_eq7, pr_exhausted) =
            attempt_distribution(pr_tf, self.retries.n_max());
        let pr_cf = cont.pr_access_failure;
        let p_cf = pr_cf.value();
        let p_ok = 1.0 - p_cf;

        // Expected counts per transaction: contention procedures started,
        // packets transmitted, attempts acknowledged/unacknowledged.
        let (e_procedures, e_tx, e_acked, e_failed, pr_fail);
        if self.refinements.per_attempt_channel_access {
            // Every retry's CSMA procedure can itself fail: the chain
            // continues with probability q = Pr_tf·(1−Pr_cf) per round.
            let q = pr_tf.value() * p_ok;
            let n = self.retries.n_max();
            let geo = if (1.0 - q).abs() < 1e-12 {
                n as f64
            } else {
                (1.0 - q.powi(n as i32)) / (1.0 - q)
            };
            e_procedures = geo;
            e_tx = p_ok * geo;
            e_acked = p_ok * pr_tf.complement().value() * geo;
            e_failed = e_tx - e_acked;
            pr_fail = Probability::clamped(1.0 - e_acked);
        } else {
            // Paper eqs. (4)–(6): Pr_cf gates the transaction once.
            e_procedures = p_cf + p_ok * expected_attempts_eq7;
            e_tx = p_ok * expected_attempts_eq7;
            e_acked = p_ok * pr_exhausted.complement().value();
            e_failed = p_ok * expected_failed_eq7;
            // Eq. (13).
            pr_fail = (pr_cf.complement() * pr_exhausted.complement()).complement();
        }

        // --- state residencies: eqs (4), (5), (6) ---
        let t_cont = cont.mean_contention;

        // Eq. (4): wake-up, contention wall-time and the pre-ACK idle gap.
        let mut t_idle = self.wakeup + t_cont * e_procedures + self.ack.wait_min * e_tx;
        if self.refinements.bill_ifs {
            t_idle += Seconds::from_micros(640.0) * e_tx;
        }

        // Eq. (5): transmissions.
        let mut t_tx = t_packet * e_tx;
        if self.refinements.bill_tx_turn_on {
            t_tx += t_ia * e_tx;
        }

        // Eq. (6): beacon reception, CCA turn-ons, ACK listening.
        let cca_turnons = cont.mean_ccas * e_procedures;
        let mut t_rx_cca = t_ia * cca_turnons;
        if self.refinements.bill_cca_sense {
            t_rx_cca += Seconds::from_micros(128.0) * cca_turnons;
        }
        let t_rx_beacon = t_ia + self.beacon;
        let t_rx_ack =
            self.ack.listen_window_acked() * e_acked + self.ack.listen_window_unacked() * e_failed;
        let t_rx = t_rx_beacon + t_rx_cca + t_rx_ack;

        // --- power: eq. (11) ---
        let p_idle = radio.state_power(RadioState::Idle);
        let p_tx = radio.state_power(RadioState::Tx(inputs.tx_level));
        let p_rx_full = radio.state_power(RadioState::Rx);
        let p_listen = radio.rx_listen_power();

        // Energy per phase (Figure 9a). Channel sensing (the paper's
        // `N_CCA × T_ia` term) and ACK listening run at listen power —
        // these are exactly the receiver operations the paper's scalable
        // receiver improvement targets. They coincide with full RX power
        // on the stock CC2420. Beacon reception always uses the full
        // receiver (it must decode a frame).
        let e_beacon = p_idle * self.wakeup + p_rx_full * t_rx_beacon;
        let e_cont_idle = p_idle * (t_cont * e_procedures);
        let e_cont_rx = p_listen * (t_ia * cca_turnons)
            + if self.refinements.bill_cca_sense {
                p_listen * (Seconds::from_micros(128.0) * cca_turnons)
            } else {
                Energy::ZERO
            };
        let e_cont = e_cont_idle + e_cont_rx;
        let e_tx_energy = p_tx * t_tx;
        let e_ack = p_idle * (self.ack.wait_min * e_tx) + p_listen * t_rx_ack;
        let e_ifs = if self.refinements.bill_ifs {
            p_idle * (Seconds::from_micros(640.0) * e_tx)
        } else {
            Energy::ZERO
        };
        let active_time = t_idle + t_tx + t_rx;
        let e_sleep = if self.refinements.bill_shutdown_leakage {
            radio.state_power(RadioState::Shutdown) * (t_ib - active_time).max(Seconds::ZERO)
        } else {
            Energy::ZERO
        };

        let total_energy = e_beacon + e_cont + e_tx_energy + e_ack + e_ifs + e_sleep;
        let average_power = total_energy / t_ib;

        // --- service quality: eqs (13), (14) ---
        let delay = t_ib / pr_fail.complement().value().max(1e-12);
        let energy_per_data_bit = Energy::from_joules(
            average_power.watts() * delay.secs() / packet.payload_bits() as f64,
        );

        ModelOutput {
            t_idle,
            t_tx,
            t_rx,
            t_ib,
            average_power,
            pr_packet_error: pr_e,
            pr_transmission_failure: pr_tf,
            pr_exhausted,
            pr_fail,
            expected_attempts: e_tx,
            delay,
            energy_per_data_bit,
            phase_energy: [
                (PhaseTag::Beacon, e_beacon),
                (PhaseTag::Contention, e_cont),
                (PhaseTag::Transmit, e_tx_energy),
                (PhaseTag::AckWait, e_ack),
                (PhaseTag::Ifs, e_ifs),
                (PhaseTag::Sleep, e_sleep),
            ],
        }
    }
}

/// Per-node inputs to one model evaluation.
#[derive(Debug, Clone, Copy)]
pub struct ModelInputs {
    /// Uplink packet layout.
    pub packet: PacketLayout,
    /// Beacon order (sets `T_ib`).
    pub beacon_order: BeaconOrder,
    /// Transmit power level in use.
    pub tx_level: TxPowerLevel,
    /// Path loss to the coordinator.
    pub path_loss: Db,
    /// Contention statistics at the operating load.
    pub contention: ContentionStats,
}

/// Everything the model predicts for one node configuration.
#[derive(Debug, Clone)]
pub struct ModelOutput {
    /// Expected idle residency per superframe (eq. 4).
    pub t_idle: Seconds,
    /// Expected transmit residency per superframe (eq. 5).
    pub t_tx: Seconds,
    /// Expected receive residency per superframe (eq. 6).
    pub t_rx: Seconds,
    /// Inter-beacon period (eq. 12).
    pub t_ib: Seconds,
    /// Average node power (eq. 11).
    pub average_power: Power,
    /// Packet error probability `Pr_e` (eq. 10).
    pub pr_packet_error: Probability,
    /// Per-attempt transmission failure `Pr_tf` (eq. 9).
    pub pr_transmission_failure: Probability,
    /// Probability the retry budget is exhausted, `P_tr(>N_max)` (eq. 8).
    pub pr_exhausted: Probability,
    /// Transaction failure probability `Pr_fail` (eq. 13).
    pub pr_fail: Probability,
    /// Expected transmissions per superframe (0 when channel access fails).
    pub expected_attempts: f64,
    /// Expected delivery delay (eq. 13, second part).
    pub delay: Seconds,
    /// Energy per useful data bit (eq. 14).
    pub energy_per_data_bit: Energy,
    /// Energy attribution per protocol phase (Figure 9a).
    pub phase_energy: [(PhaseTag, Energy); 6],
}

impl ModelOutput {
    /// Total modeled energy per superframe.
    pub fn total_energy(&self) -> Energy {
        self.phase_energy.iter().map(|(_, e)| *e).sum()
    }

    /// Fraction of the superframe energy attributed to `phase`.
    pub fn phase_fraction(&self, phase: PhaseTag) -> f64 {
        let total = self.total_energy().joules();
        if total == 0.0 {
            return 0.0;
        }
        self.phase_energy
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, e)| e.joules() / total)
            .unwrap_or(0.0)
    }

    /// Per-state time shares of the inter-beacon period (Figure 9b).
    pub fn state_time_fractions(&self) -> [(StateKind, f64); 4] {
        let tib = self.t_ib.secs();
        let idle = self.t_idle.secs() / tib;
        let tx = self.t_tx.secs() / tib;
        let rx = self.t_rx.secs() / tib;
        [
            (StateKind::Shutdown, (1.0 - idle - tx - rx).max(0.0)),
            (StateKind::Idle, idle),
            (StateKind::Rx, rx),
            (StateKind::Tx, tx),
        ]
    }
}

/// Eqs. (7)/(8): given the per-attempt failure probability and the retry
/// budget, returns `(E[attempts], E[failed attempts], P_tr(>N_max))` where
/// the expectations follow the paper's bracketed sums
/// `Σ i·P_tr(i) + N_max·P_tr(>N_max)` and
/// `Σ (i−1)·P_tr(i) + N_max·P_tr(>N_max)`.
pub fn attempt_distribution(pr_tf: Probability, n_max: u32) -> (f64, f64, Probability) {
    let p = pr_tf.value();
    let mut expected = 0.0;
    let mut expected_failed = 0.0;
    let mut p_i = 1.0 - p; // P_tr(1) = (1−p)
    let mut survive = 1.0;
    for i in 1..=n_max {
        if i > 1 {
            p_i *= p;
        }
        expected += i as f64 * p_i;
        expected_failed += (i - 1) as f64 * p_i;
        survive *= p;
    }
    // P_tr(>N_max) = p^N_max: all attempts failed.
    expected += n_max as f64 * survive;
    expected_failed += n_max as f64 * survive;
    (expected, expected_failed, Probability::clamped(survive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_phy::ber::EmpiricalCc2420Ber;

    fn inputs(level: TxPowerLevel, loss: f64, stats: ContentionStats) -> ModelInputs {
        ModelInputs {
            packet: PacketLayout::with_payload(120).unwrap(),
            beacon_order: BeaconOrder::new(6).unwrap(),
            tx_level: level,
            path_loss: Db::new(loss),
            contention: stats,
        }
    }

    fn model() -> ActivationModel {
        ActivationModel::paper_defaults(RadioModel::cc2420())
    }

    #[test]
    fn attempt_distribution_limits() {
        // Perfect channel: exactly one attempt, none failed.
        let (e, ef, pex) = attempt_distribution(Probability::ZERO, 5);
        assert!((e - 1.0).abs() < 1e-12);
        assert!(ef.abs() < 1e-12);
        assert_eq!(pex.value(), 0.0);

        // Hopeless channel: all five attempts, all failed.
        let (e, ef, pex) = attempt_distribution(Probability::ONE, 5);
        assert!((e - 5.0).abs() < 1e-12);
        assert!((ef - 5.0).abs() < 1e-12);
        assert_eq!(pex.value(), 1.0);
    }

    #[test]
    fn attempt_distribution_matches_direct_sum() {
        let p = 0.3;
        let pr = Probability::new(p).unwrap();
        let (e, ef, pex) = attempt_distribution(pr, 5);
        let mut direct_e = 0.0;
        let mut direct_f = 0.0;
        for i in 1..=5u32 {
            let pi = p.powi(i as i32 - 1) * (1.0 - p);
            direct_e += i as f64 * pi;
            direct_f += (i - 1) as f64 * pi;
        }
        let tail = p.powi(5);
        direct_e += 5.0 * tail;
        direct_f += 5.0 * tail;
        assert!((e - direct_e).abs() < 1e-12);
        assert!((ef - direct_f).abs() < 1e-12);
        assert!((pex.value() - tail).abs() < 1e-15);
    }

    #[test]
    fn clean_link_power_band() {
        // Good link, ideal channel: the power is dominated by TX + beacon.
        let out = model().evaluate(
            &inputs(TxPowerLevel::Neg25, 55.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let uw = out.average_power.microwatts();
        assert!((100.0..260.0).contains(&uw), "P_avg = {uw} µW");
        assert!(out.pr_fail.value() < 1e-6);
        assert!((out.delay.secs() - 0.98304).abs() < 1e-3);
    }

    #[test]
    fn residencies_scale_with_attempts() {
        use wsn_units::Probability;
        // Force heavy retries with a high collision probability.
        let mut bad = ContentionStats::ideal();
        bad.pr_collision = Probability::new(0.5).unwrap();
        let clean = model().evaluate(
            &inputs(TxPowerLevel::Zero, 60.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let retried = model().evaluate(
            &inputs(TxPowerLevel::Zero, 60.0, bad),
            &EmpiricalCc2420Ber::paper(),
        );
        assert!(retried.t_tx > clean.t_tx * 1.5);
        assert!(retried.t_rx > clean.t_rx);
        assert!(retried.average_power > clean.average_power);
        assert!(retried.expected_attempts > 1.5);
    }

    #[test]
    fn failure_composition_matches_eq13() {
        use wsn_units::Probability;
        let mut stats = ContentionStats::ideal();
        stats.pr_access_failure = Probability::new(0.1).unwrap();
        // Path loss 95 dB at −25 dBm: received −120 dBm — hopeless link.
        let out = model().evaluate(
            &inputs(TxPowerLevel::Neg25, 95.0, stats),
            &EmpiricalCc2420Ber::paper(),
        );
        assert_eq!(out.pr_packet_error.value(), 1.0);
        assert_eq!(out.pr_exhausted.value(), 1.0);
        // Pr_fail = 1 − (1−0.1)(1−1) = 1.
        assert_eq!(out.pr_fail.value(), 1.0);
    }

    #[test]
    fn energy_per_bit_blows_up_on_dead_links() {
        let good = model().evaluate(
            &inputs(TxPowerLevel::Zero, 70.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let dead = model().evaluate(
            &inputs(TxPowerLevel::Neg25, 95.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        assert!(dead.energy_per_data_bit > good.energy_per_data_bit * 100.0);
    }

    #[test]
    fn energy_per_bit_band_matches_figure7() {
        // The paper: 135 nJ/bit at low loss up to ~220 nJ/bit at 88 dB.
        let low = model().evaluate(
            &inputs(TxPowerLevel::Neg25, 55.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let nj = low.energy_per_data_bit.nanojoules();
        assert!((80.0..400.0).contains(&nj), "energy/bit = {nj} nJ");
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let out = model().evaluate(
            &inputs(TxPowerLevel::Neg5, 75.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let total: f64 = PhaseTag::ALL.iter().map(|&p| out.phase_fraction(p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Transmission dominates but stays below ~70 % on a good link.
        let tx_frac = out.phase_fraction(PhaseTag::Transmit);
        assert!((0.2..0.8).contains(&tx_frac), "tx fraction {tx_frac}");
    }

    #[test]
    fn state_fractions_are_mostly_shutdown() {
        let out = model().evaluate(
            &inputs(TxPowerLevel::Neg5, 75.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let fr = out.state_time_fractions();
        let shutdown = fr
            .iter()
            .find(|(k, _)| *k == StateKind::Shutdown)
            .unwrap()
            .1;
        assert!(shutdown > 0.97, "shutdown fraction {shutdown}");
        let sum: f64 = fr.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refinements_increase_power() {
        let stock = model().evaluate(
            &inputs(TxPowerLevel::Neg5, 75.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let refined = model()
            .with_refinements(ModelRefinements::physical())
            .evaluate(
                &inputs(TxPowerLevel::Neg5, 75.0, ContentionStats::ideal()),
                &EmpiricalCc2420Ber::paper(),
            );
        assert!(refined.average_power > stock.average_power);
        // Refinements add single-digit percents, not multiples.
        assert!(refined.average_power.watts() < stock.average_power.watts() * 1.4);
    }

    #[test]
    fn scalable_receiver_cuts_listen_energy() {
        let radio_low_listen = RadioModel::builder()
            .rx_listen_power(Power::from_milliwatts(17.64))
            .build();
        let stock = model().evaluate(
            &inputs(TxPowerLevel::Neg5, 75.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let scalable = ActivationModel::paper_defaults(radio_low_listen).evaluate(
            &inputs(TxPowerLevel::Neg5, 75.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        assert!(scalable.average_power < stock.average_power);
    }

    #[test]
    fn received_power_uses_link_budget() {
        // Stronger TX on the same path must not do worse.
        let weak = model().evaluate(
            &inputs(TxPowerLevel::Neg15, 85.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        let strong = model().evaluate(
            &inputs(TxPowerLevel::Zero, 85.0, ContentionStats::ideal()),
            &EmpiricalCc2420Ber::paper(),
        );
        assert!(strong.pr_fail.value() <= weak.pr_fail.value());
    }
}
