//! Link adaptation: channel-inversion transmit power control with
//! energy-optimal switching thresholds (the paper's Figure 7).
//!
//! For every path loss the policy picks the transmit power level that
//! minimizes the *total* energy per delivered bit — not merely the weakest
//! level that closes the link, because retransmissions make a too-weak
//! level expensive. The crossings of the per-level energy curves define the
//! switching thresholds; the paper observes (and our tests verify) that
//! these thresholds are essentially independent of the network load.

use wsn_mac::BeaconOrder;
use wsn_phy::ber::BerModel;
use wsn_phy::frame::PacketLayout;
use wsn_radio::TxPowerLevel;
use wsn_units::{Db, Energy};

use crate::activation::{ActivationModel, ModelInputs};
use crate::contention::ContentionModel;

/// One sampled point of the Figure 7 sweep.
#[derive(Debug, Clone, Copy)]
pub struct EnergyPoint {
    /// Path loss of the sample.
    pub path_loss: Db,
    /// Best (minimum) energy per bit over all levels.
    pub energy_per_bit: Energy,
    /// The level achieving it.
    pub level: TxPowerLevel,
}

/// The Figure 7 computation.
#[derive(Debug, Clone)]
pub struct LinkAdaptation {
    model: ActivationModel,
    packet: PacketLayout,
    beacon_order: BeaconOrder,
}

impl LinkAdaptation {
    /// Creates the study for a given model, packet and beacon order.
    pub fn new(model: ActivationModel, packet: PacketLayout, beacon_order: BeaconOrder) -> Self {
        LinkAdaptation {
            model,
            packet,
            beacon_order,
        }
    }

    /// Energy per bit at one `(path loss, level)` operating point.
    pub fn energy_at<B: BerModel, C: ContentionModel>(
        &self,
        path_loss: Db,
        level: TxPowerLevel,
        load: f64,
        ber: &B,
        contention: &C,
    ) -> Energy {
        let stats = contention.stats(load, self.packet);
        let out = self.model.evaluate(
            &ModelInputs {
                packet: self.packet,
                beacon_order: self.beacon_order,
                tx_level: level,
                path_loss,
                contention: stats,
            },
            ber,
        );
        out.energy_per_data_bit
    }

    /// The energy-optimal level and its energy per bit at one path loss.
    pub fn best_level<B: BerModel, C: ContentionModel>(
        &self,
        path_loss: Db,
        load: f64,
        ber: &B,
        contention: &C,
    ) -> EnergyPoint {
        let mut best: Option<EnergyPoint> = None;
        for level in TxPowerLevel::ALL {
            let e = self.energy_at(path_loss, level, load, ber, contention);
            let better = match &best {
                None => true,
                Some(b) => e < b.energy_per_bit,
            };
            if better {
                best = Some(EnergyPoint {
                    path_loss,
                    energy_per_bit: e,
                    level,
                });
            }
        }
        best.expect("at least one level evaluated")
    }

    /// Sweeps a path-loss grid at a given load — one curve of Figure 7.
    pub fn sweep<B: BerModel, C: ContentionModel>(
        &self,
        losses: &[Db],
        load: f64,
        ber: &B,
        contention: &C,
    ) -> Vec<EnergyPoint> {
        losses
            .iter()
            .map(|&a| self.best_level(a, load, ber, contention))
            .collect()
    }

    /// Extracts the switching thresholds from a sweep: the first path loss
    /// at which each level becomes optimal.
    pub fn thresholds(points: &[EnergyPoint]) -> LinkAdaptationPolicy {
        let mut thresholds = Vec::new();
        let mut current: Option<TxPowerLevel> = None;
        for p in points {
            if current != Some(p.level) {
                thresholds.push((p.path_loss, p.level));
                current = Some(p.level);
            }
        }
        LinkAdaptationPolicy { thresholds }
    }
}

/// A channel-inversion policy: ordered `(path loss threshold, level)`
/// pairs, the paper's Figure 7 circles.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkAdaptationPolicy {
    thresholds: Vec<(Db, TxPowerLevel)>,
}

impl LinkAdaptationPolicy {
    /// Creates a policy from explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `thresholds` is empty or path losses are not increasing.
    pub fn from_thresholds(thresholds: Vec<(Db, TxPowerLevel)>) -> Self {
        assert!(!thresholds.is_empty(), "policy needs at least one level");
        assert!(
            thresholds.windows(2).all(|w| w[0].0 <= w[1].0),
            "thresholds must be ordered by path loss"
        );
        LinkAdaptationPolicy { thresholds }
    }

    /// The level to use at a given path loss: the entry with the largest
    /// threshold not exceeding `path_loss` (the first entry below all
    /// thresholds).
    pub fn level_for(&self, path_loss: Db) -> TxPowerLevel {
        let mut level = self.thresholds[0].1;
        for &(a, lvl) in &self.thresholds {
            if path_loss >= a {
                level = lvl;
            }
        }
        level
    }

    /// The raw `(threshold, level)` pairs.
    pub fn thresholds(&self) -> &[(Db, TxPowerLevel)] {
        &self.thresholds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::IdealContention;
    use wsn_phy::ber::EmpiricalCc2420Ber;
    use wsn_radio::RadioModel;

    fn study() -> LinkAdaptation {
        LinkAdaptation::new(
            ActivationModel::paper_defaults(RadioModel::cc2420()),
            PacketLayout::with_payload(120).unwrap(),
            BeaconOrder::new(6).unwrap(),
        )
    }

    fn grid() -> Vec<Db> {
        (50..=95).map(|a| Db::new(a as f64)).collect()
    }

    #[test]
    fn weak_levels_win_at_low_loss() {
        let s = study();
        let p = s.best_level(
            Db::new(55.0),
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        assert_eq!(
            p.level,
            TxPowerLevel::Neg25,
            "at 55 dB the weakest level should be optimal"
        );
    }

    #[test]
    fn strong_levels_win_at_high_loss() {
        let s = study();
        let p = s.best_level(
            Db::new(87.0),
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        assert!(
            p.level >= TxPowerLevel::Neg3,
            "at 87 dB a strong level is required, got {}",
            p.level
        );
    }

    #[test]
    fn optimal_level_is_monotone_in_path_loss() {
        let s = study();
        let points = s.sweep(
            &grid(),
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        for pair in points.windows(2) {
            assert!(
                pair[1].level >= pair[0].level,
                "optimal level regressed between {} and {}",
                pair[0].path_loss,
                pair[1].path_loss
            );
        }
    }

    #[test]
    fn energy_per_bit_rises_with_loss_up_to_88db() {
        let s = study();
        let points = s.sweep(
            &grid(),
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        let at55 = points
            .iter()
            .find(|p| p.path_loss == Db::new(55.0))
            .unwrap();
        let at88 = points
            .iter()
            .find(|p| p.path_loss == Db::new(88.0))
            .unwrap();
        assert!(at88.energy_per_bit > at55.energy_per_bit);
        // The paper's ~40 % saving claim: adapting beats always-max by a
        // substantial margin at low loss.
        let fixed_max = s.energy_at(
            Db::new(55.0),
            TxPowerLevel::Zero,
            0.42,
            &EmpiricalCc2420Ber::paper(),
            &IdealContention,
        );
        let saving = 1.0 - at55.energy_per_bit.joules() / fixed_max.joules();
        assert!(
            saving > 0.15,
            "adaptation saving at 55 dB only {:.1} %",
            saving * 100.0
        );
    }

    #[test]
    fn thresholds_are_load_independent() {
        let s = study();
        let ber = EmpiricalCc2420Ber::paper();
        let a = LinkAdaptation::thresholds(&s.sweep(&grid(), 0.1, &ber, &IdealContention));
        let b = LinkAdaptation::thresholds(&s.sweep(&grid(), 0.7, &ber, &IdealContention));
        // Same level sequence; thresholds within 1 dB (grid resolution).
        assert_eq!(a.thresholds().len(), b.thresholds().len());
        for (ta, tb) in a.thresholds().iter().zip(b.thresholds()) {
            assert_eq!(ta.1, tb.1);
            assert!((ta.0.db() - tb.0.db()).abs() <= 1.0);
        }
    }

    #[test]
    fn policy_lookup() {
        let policy = LinkAdaptationPolicy::from_thresholds(vec![
            (Db::new(50.0), TxPowerLevel::Neg25),
            (Db::new(63.0), TxPowerLevel::Neg15),
            (Db::new(80.0), TxPowerLevel::Zero),
        ]);
        assert_eq!(policy.level_for(Db::new(40.0)), TxPowerLevel::Neg25);
        assert_eq!(policy.level_for(Db::new(62.9)), TxPowerLevel::Neg25);
        assert_eq!(policy.level_for(Db::new(63.0)), TxPowerLevel::Neg15);
        assert_eq!(policy.level_for(Db::new(95.0)), TxPowerLevel::Zero);
    }

    #[test]
    #[should_panic(expected = "ordered by path loss")]
    fn unsorted_policy_rejected() {
        let _ = LinkAdaptationPolicy::from_thresholds(vec![
            (Db::new(80.0), TxPowerLevel::Zero),
            (Db::new(50.0), TxPowerLevel::Neg25),
        ]);
    }
}
