//! Property-based tests for the analytical model: bounds, monotonicity and
//! internal consistency over the whole input space.

use proptest::prelude::*;

use wsn_core::activation::{attempt_distribution, ActivationModel, ModelInputs};
use wsn_core::contention::{ContentionModel, IdealContention};
use wsn_mac::BeaconOrder;
use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_phy::frame::PacketLayout;
use wsn_radio::{RadioModel, RadioState, TxPowerLevel};
use wsn_sim::ContentionStats;
use wsn_units::{Db, Probability, Seconds};

fn arb_stats() -> impl Strategy<Value = ContentionStats> {
    (0.0..20.0f64, 2.0..8.0f64, 0.0..0.6f64, 0.0..0.4f64).prop_map(|(cont_ms, ccas, col, cf)| {
        ContentionStats {
            mean_contention: Seconds::from_millis(cont_ms),
            mean_ccas: ccas,
            pr_collision: Probability::clamped(col),
            pr_access_failure: Probability::clamped(cf),
            procedures: 1000,
            transmissions: 900,
        }
    })
}

fn arb_level() -> impl Strategy<Value = TxPowerLevel> {
    (0usize..8).prop_map(|i| TxPowerLevel::ALL[i])
}

proptest! {
    /// Eq. (7)/(8) expectations are bounded and monotone in the failure
    /// probability.
    #[test]
    fn attempt_distribution_bounds(p in 0.0..=1.0f64, n in 1u32..8) {
        let pr = Probability::new(p).unwrap();
        let (e, ef, pex) = attempt_distribution(pr, n);
        prop_assert!(e >= 1.0 - 1e-12);
        prop_assert!(e <= n as f64 + 1e-12);
        prop_assert!(ef >= -1e-12);
        prop_assert!(ef <= e + 1e-12);
        prop_assert!((0.0..=1.0).contains(&pex.value()));
        // Monotonicity in p.
        if p < 0.99 {
            let (e2, _, pex2) = attempt_distribution(Probability::new(p + 0.01).unwrap(), n);
            prop_assert!(e2 >= e - 1e-12);
            prop_assert!(pex2.value() >= pex.value() - 1e-15);
        }
    }

    /// Model outputs are physical for any admissible input: non-negative
    /// residencies that fit in the superframe band, probabilities in
    /// range, power bounded by the strongest state power.
    #[test]
    fn model_outputs_are_physical(
        stats in arb_stats(),
        level in arb_level(),
        loss in 40.0..110.0f64,
        bo in 4u8..10,
        payload in 5usize..=123,
    ) {
        let radio = RadioModel::cc2420();
        let model = ActivationModel::paper_defaults(radio.clone());
        let packet = PacketLayout::with_payload(payload).unwrap();
        let out = model.evaluate(
            &ModelInputs {
                packet,
                beacon_order: BeaconOrder::new(bo).unwrap(),
                tx_level: level,
                path_loss: Db::new(loss),
                contention: stats,
            },
            &EmpiricalCc2420Ber::paper(),
        );
        prop_assert!(out.t_idle.secs() >= 0.0);
        prop_assert!(out.t_tx.secs() >= 0.0);
        prop_assert!(out.t_rx.secs() >= 0.0);
        prop_assert!((0.0..=1.0).contains(&out.pr_fail.value()));
        prop_assert!((0.0..=1.0).contains(&out.pr_packet_error.value()));
        prop_assert!(out.expected_attempts >= 0.0);
        prop_assert!(out.expected_attempts <= 5.0 + 1e-9);
        prop_assert!(out.average_power.watts() >= 0.0);
        let max_power = radio.state_power(RadioState::Rx).watts()
            .max(radio.state_power(RadioState::Tx(level)).watts());
        // Average power cannot exceed the strongest state power times the
        // active duty cycle — a fortiori the strongest state power.
        prop_assert!(out.average_power.watts() <= max_power);
        prop_assert!(out.delay.secs() >= out.t_ib.secs() * 0.999);
        // Phase fractions form a distribution.
        let total: f64 = wsn_radio::PhaseTag::ALL
            .iter()
            .map(|&p| out.phase_fraction(p))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// At a fixed level, more path loss never improves reliability.
    #[test]
    fn failure_monotone_in_path_loss(
        level in arb_level(),
        base in 50.0..90.0f64,
        delta in 0.0..15.0f64,
    ) {
        let model = ActivationModel::paper_defaults(RadioModel::cc2420());
        let packet = PacketLayout::with_payload(120).unwrap();
        let stats = IdealContention.stats(0.42, packet);
        let eval = |loss: f64| {
            model.evaluate(
                &ModelInputs {
                    packet,
                    beacon_order: BeaconOrder::new(6).unwrap(),
                    tx_level: level,
                    path_loss: Db::new(loss),
                    contention: stats,
                },
                &EmpiricalCc2420Ber::paper(),
            )
        };
        let near = eval(base);
        let far = eval(base + delta);
        prop_assert!(far.pr_fail.value() >= near.pr_fail.value() - 1e-12);
        prop_assert!(
            far.energy_per_data_bit.joules() >= near.energy_per_data_bit.joules() * (1.0 - 1e-9)
        );
    }

    /// Higher collision probability never reduces power or reliability
    /// requirements.
    #[test]
    fn power_monotone_in_collisions(col_a in 0.0..0.5f64, extra in 0.0..0.4f64) {
        let model = ActivationModel::paper_defaults(RadioModel::cc2420());
        let packet = PacketLayout::with_payload(120).unwrap();
        let mk = |col: f64| {
            let mut s = ContentionStats::ideal();
            s.pr_collision = Probability::clamped(col);
            model.evaluate(
                &ModelInputs {
                    packet,
                    beacon_order: BeaconOrder::new(6).unwrap(),
                    tx_level: TxPowerLevel::Neg5,
                    path_loss: Db::new(70.0),
                    contention: s,
                },
                &EmpiricalCc2420Ber::paper(),
            )
        };
        let lo = mk(col_a);
        let hi = mk(col_a + extra);
        prop_assert!(hi.average_power.watts() >= lo.average_power.watts() - 1e-15);
        prop_assert!(hi.pr_fail.value() >= lo.pr_fail.value() - 1e-12);
    }
}
