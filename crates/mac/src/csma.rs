//! The slotted CSMA/CA channel access algorithm.
//!
//! Implemented as a *pure, step-driven* state machine: the scheduler (a
//! discrete-event simulator, a test, or a hardware shim) owns time and the
//! channel, and feeds CCA outcomes in; the machine answers with the next
//! [`CsmaAction`]. This keeps the algorithm unit-testable in isolation and
//! reusable by both the Monte-Carlo contention simulator and the full
//! network simulator.
//!
//! Parameter presets:
//!
//! * [`CsmaParams::standard_2003`] — macMinBE 3, aMaxBE 5,
//!   macMaxCSMABackoffs 4 (rounds at BE = 3, 4, 5, 5, 5);
//! * [`CsmaParams::paper`] — the paper's §2 description: the procedure is
//!   aborted once the backoff exponent has been incremented twice and the
//!   channel is still busy (rounds at BE = 3, 4, 5);
//! * [`CsmaParams::battery_life_extension`] — BE capped at 2, which the
//!   paper rejects for dense networks because of excessive collisions.

use core::fmt;

use wsn_phy::noise::UniformSource;

/// Parameters of the slotted CSMA/CA algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsmaParams {
    /// Initial backoff exponent (`macMinBE`).
    pub min_be: u8,
    /// Maximum backoff exponent (`aMaxBE`).
    pub max_be: u8,
    /// Number of *additional* backoff rounds allowed after the first —
    /// `macMaxCSMABackoffs`; the procedure fails when the busy-round count
    /// exceeds this.
    pub max_backoffs: u8,
    /// Contention window: consecutive clear CCAs required (2 in slotted
    /// mode).
    pub cw: u8,
}

impl CsmaParams {
    /// IEEE 802.15.4-2003 defaults.
    pub fn standard_2003() -> Self {
        CsmaParams {
            min_be: 3,
            max_be: 5,
            max_backoffs: 4,
            cw: 2,
        }
    }

    /// The paper's reading: abort after the backoff exponent has been
    /// incremented twice without finding the channel clear (three rounds:
    /// BE = 3, 4, 5).
    pub fn paper() -> Self {
        CsmaParams {
            min_be: 3,
            max_be: 5,
            max_backoffs: 2,
            cw: 2,
        }
    }

    /// Battery-life-extension mode: backoff exponent confined to 0–2.
    pub fn battery_life_extension() -> Self {
        CsmaParams {
            min_be: 2,
            max_be: 2,
            max_backoffs: 4,
            cw: 2,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when `min_be > max_be`, `max_be > 8` (backoff
    /// windows beyond 2⁸ slots are outside the standard), or `cw == 0`.
    pub fn validate(&self) -> Result<(), InvalidCsmaParams> {
        if self.min_be > self.max_be {
            return Err(InvalidCsmaParams::ExponentOrder {
                min_be: self.min_be,
                max_be: self.max_be,
            });
        }
        if self.max_be > 8 {
            return Err(InvalidCsmaParams::ExponentTooLarge(self.max_be));
        }
        if self.cw == 0 {
            return Err(InvalidCsmaParams::ZeroContentionWindow);
        }
        Ok(())
    }
}

impl Default for CsmaParams {
    fn default() -> Self {
        CsmaParams::standard_2003()
    }
}

/// Invalid [`CsmaParams`] combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidCsmaParams {
    /// `min_be` exceeds `max_be`.
    ExponentOrder {
        /// Configured minimum exponent.
        min_be: u8,
        /// Configured maximum exponent.
        max_be: u8,
    },
    /// `max_be` beyond the standard's range.
    ExponentTooLarge(u8),
    /// The contention window must be at least 1.
    ZeroContentionWindow,
}

impl fmt::Display for InvalidCsmaParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidCsmaParams::ExponentOrder { min_be, max_be } => {
                write!(f, "min BE {min_be} exceeds max BE {max_be}")
            }
            InvalidCsmaParams::ExponentTooLarge(be) => {
                write!(f, "max BE {be} exceeds 8")
            }
            InvalidCsmaParams::ZeroContentionWindow => {
                write!(f, "contention window must be at least 1")
            }
        }
    }
}

impl std::error::Error for InvalidCsmaParams {}

/// What the CSMA/CA machine wants the scheduler to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsmaAction {
    /// Wait `periods` unit backoff periods (aligned to the backoff grid),
    /// then perform a CCA and report the result via
    /// [`SlottedCsmaCa::on_cca`].
    BackoffThenCca {
        /// Number of 320 µs unit backoff periods to wait.
        periods: u32,
    },
    /// Perform another CCA at the *next* backoff period boundary (the
    /// contention window is still counting down).
    CcaAgain,
    /// Channel assessed clear [`CsmaParams::cw`] times: transmit at the
    /// next backoff period boundary.
    Transmit,
    /// Channel access failure (`macMaxCSMABackoffs` exceeded).
    Failure,
}

/// Execution state of one slotted CSMA/CA procedure.
///
/// # Examples
///
/// Drive a procedure against an always-clear channel:
///
/// ```
/// use wsn_mac::{CsmaAction, CsmaParams, SlottedCsmaCa};
/// use wsn_phy::noise::SplitMix64;
///
/// let mut rng = SplitMix64::new(7);
/// let mut csma = SlottedCsmaCa::start(CsmaParams::paper(), &mut rng);
/// // First action is always an initial random backoff.
/// let CsmaAction::BackoffThenCca { periods } = csma.current_action() else {
///     panic!("unexpected action");
/// };
/// assert!(periods < 8); // BE = 3 ⇒ delay ∈ 0..=7
/// // Two clear CCAs later the machine transmits.
/// assert_eq!(csma.on_cca(false, &mut rng), CsmaAction::CcaAgain);
/// assert_eq!(csma.on_cca(false, &mut rng), CsmaAction::Transmit);
/// assert_eq!(csma.ccas_performed(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SlottedCsmaCa {
    params: CsmaParams,
    nb: u8,
    cw_remaining: u8,
    be: u8,
    ccas: u32,
    backoff_periods_total: u32,
    action: CsmaAction,
}

impl SlottedCsmaCa {
    /// Begins a procedure: draws the initial random backoff.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    pub fn start<U: UniformSource>(params: CsmaParams, rng: &mut U) -> Self {
        params.validate().expect("invalid CSMA parameters");
        let mut machine = SlottedCsmaCa {
            params,
            nb: 0,
            cw_remaining: params.cw,
            be: params.min_be,
            ccas: 0,
            backoff_periods_total: 0,
            action: CsmaAction::Failure, // replaced below
        };
        let periods = machine.draw_backoff(rng);
        machine.action = CsmaAction::BackoffThenCca { periods };
        machine
    }

    /// The action the scheduler should currently execute.
    pub fn current_action(&self) -> CsmaAction {
        self.action
    }

    /// Reports a CCA result (`busy = true` if the channel was occupied) and
    /// returns the next action.
    ///
    /// # Panics
    ///
    /// Panics if called after the machine already decided
    /// [`CsmaAction::Transmit`] or [`CsmaAction::Failure`].
    pub fn on_cca<U: UniformSource>(&mut self, busy: bool, rng: &mut U) -> CsmaAction {
        assert!(
            !matches!(self.action, CsmaAction::Transmit | CsmaAction::Failure),
            "CSMA procedure already finished"
        );
        self.ccas += 1;
        self.action = if busy {
            self.cw_remaining = self.params.cw;
            self.nb += 1;
            self.be = (self.be + 1).min(self.params.max_be);
            if self.nb > self.params.max_backoffs {
                CsmaAction::Failure
            } else {
                let periods = self.draw_backoff(rng);
                CsmaAction::BackoffThenCca { periods }
            }
        } else {
            self.cw_remaining -= 1;
            if self.cw_remaining == 0 {
                CsmaAction::Transmit
            } else {
                CsmaAction::CcaAgain
            }
        };
        self.action
    }

    /// Number of CCAs performed so far (the paper's `N_CCA` accumulator).
    pub fn ccas_performed(&self) -> u32 {
        self.ccas
    }

    /// Sum of random backoff periods drawn (unit backoff periods).
    pub fn backoff_periods_total(&self) -> u32 {
        self.backoff_periods_total
    }

    /// Current backoff exponent.
    pub fn backoff_exponent(&self) -> u8 {
        self.be
    }

    /// Number of busy rounds suffered so far (`NB`).
    pub fn busy_rounds(&self) -> u8 {
        self.nb
    }

    fn draw_backoff<U: UniformSource>(&mut self, rng: &mut U) -> u32 {
        let window = 1u32 << self.be; // delays in 0..2^BE
        let draw = (rng.next_f64() * window as f64) as u32;
        let periods = draw.min(window - 1);
        self.backoff_periods_total += periods;
        periods
    }
}

/// The *unslotted* CSMA/CA variant used in non-beacon networks — an
/// extension beyond the paper's beacon-mode study, provided as a baseline.
///
/// Differences from the slotted algorithm: no backoff-grid alignment, no
/// contention window (a single clear CCA suffices), transmission starts
/// immediately after the CCA.
///
/// # Examples
///
/// ```
/// use wsn_mac::csma::{CsmaAction, CsmaParams, UnslottedCsmaCa};
/// use wsn_phy::noise::SplitMix64;
///
/// let mut rng = SplitMix64::new(3);
/// let mut csma = UnslottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
/// assert!(matches!(csma.current_action(), CsmaAction::BackoffThenCca { .. }));
/// // One clear CCA is enough in unslotted mode.
/// assert_eq!(csma.on_cca(false, &mut rng), CsmaAction::Transmit);
/// ```
#[derive(Debug, Clone)]
pub struct UnslottedCsmaCa {
    params: CsmaParams,
    nb: u8,
    be: u8,
    ccas: u32,
    action: CsmaAction,
}

impl UnslottedCsmaCa {
    /// Begins a procedure: draws the initial random backoff.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    pub fn start<U: UniformSource>(params: CsmaParams, rng: &mut U) -> Self {
        params.validate().expect("invalid CSMA parameters");
        let mut machine = UnslottedCsmaCa {
            params,
            nb: 0,
            be: params.min_be,
            ccas: 0,
            action: CsmaAction::Failure,
        };
        let periods = machine.draw_backoff(rng);
        machine.action = CsmaAction::BackoffThenCca { periods };
        machine
    }

    /// The action the scheduler should currently execute.
    pub fn current_action(&self) -> CsmaAction {
        self.action
    }

    /// Reports a CCA result and returns the next action.
    ///
    /// # Panics
    ///
    /// Panics if the procedure already finished.
    pub fn on_cca<U: UniformSource>(&mut self, busy: bool, rng: &mut U) -> CsmaAction {
        assert!(
            !matches!(self.action, CsmaAction::Transmit | CsmaAction::Failure),
            "CSMA procedure already finished"
        );
        self.ccas += 1;
        self.action = if busy {
            self.nb += 1;
            self.be = (self.be + 1).min(self.params.max_be);
            if self.nb > self.params.max_backoffs {
                CsmaAction::Failure
            } else {
                let periods = self.draw_backoff(rng);
                CsmaAction::BackoffThenCca { periods }
            }
        } else {
            CsmaAction::Transmit
        };
        self.action
    }

    /// Number of CCAs performed so far.
    pub fn ccas_performed(&self) -> u32 {
        self.ccas
    }

    /// Current backoff exponent.
    pub fn backoff_exponent(&self) -> u8 {
        self.be
    }

    fn draw_backoff<U: UniformSource>(&mut self, rng: &mut U) -> u32 {
        let window = 1u32 << self.be;
        let draw = (rng.next_f64() * window as f64) as u32;
        draw.min(window - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_phy::noise::SplitMix64;

    fn drive_all_busy(params: CsmaParams, seed: u64) -> (u32, u8) {
        let mut rng = SplitMix64::new(seed);
        let mut m = SlottedCsmaCa::start(params, &mut rng);
        loop {
            match m.current_action() {
                CsmaAction::BackoffThenCca { .. } | CsmaAction::CcaAgain => {
                    if m.on_cca(true, &mut rng) == CsmaAction::Failure {
                        return (m.ccas_performed(), m.busy_rounds());
                    }
                }
                CsmaAction::Failure => unreachable!("loop exits on failure"),
                CsmaAction::Transmit => panic!("busy channel cannot transmit"),
            }
        }
    }

    #[test]
    fn clear_channel_transmits_after_cw_ccas() {
        let mut rng = SplitMix64::new(1);
        let mut m = SlottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        assert!(matches!(
            m.current_action(),
            CsmaAction::BackoffThenCca { .. }
        ));
        assert_eq!(m.on_cca(false, &mut rng), CsmaAction::CcaAgain);
        assert_eq!(m.on_cca(false, &mut rng), CsmaAction::Transmit);
        assert_eq!(m.ccas_performed(), 2);
        assert_eq!(m.busy_rounds(), 0);
    }

    #[test]
    fn paper_preset_fails_after_three_busy_rounds() {
        let (ccas, nb) = drive_all_busy(CsmaParams::paper(), 42);
        // Rounds at BE = 3, 4, 5; every first CCA busy ⇒ 3 CCAs total.
        assert_eq!(ccas, 3);
        assert_eq!(nb, 3);
    }

    #[test]
    fn standard_preset_fails_after_five_busy_rounds() {
        let (ccas, nb) = drive_all_busy(CsmaParams::standard_2003(), 42);
        assert_eq!(ccas, 5);
        assert_eq!(nb, 5);
    }

    #[test]
    fn exponent_saturates_at_max_be() {
        let mut rng = SplitMix64::new(3);
        let mut m = SlottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        assert_eq!(m.backoff_exponent(), 3);
        m.on_cca(true, &mut rng);
        assert_eq!(m.backoff_exponent(), 4);
        m.on_cca(true, &mut rng);
        assert_eq!(m.backoff_exponent(), 5);
        m.on_cca(true, &mut rng);
        assert_eq!(m.backoff_exponent(), 5, "BE must saturate at aMaxBE");
    }

    #[test]
    fn busy_resets_contention_window() {
        let mut rng = SplitMix64::new(4);
        let mut m = SlottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        // First CCA clear, second busy: CW must reset to 2.
        assert_eq!(m.on_cca(false, &mut rng), CsmaAction::CcaAgain);
        assert!(matches!(
            m.on_cca(true, &mut rng),
            CsmaAction::BackoffThenCca { .. }
        ));
        // Now two clears are again required.
        assert_eq!(m.on_cca(false, &mut rng), CsmaAction::CcaAgain);
        assert_eq!(m.on_cca(false, &mut rng), CsmaAction::Transmit);
    }

    #[test]
    fn backoff_draws_respect_window() {
        // With BE = 3 the delay must be in 0..=7; statistically all values
        // should appear over many trials.
        let mut seen = [false; 8];
        for seed in 0..400 {
            let mut rng = SplitMix64::new(seed);
            let m = SlottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
            let CsmaAction::BackoffThenCca { periods } = m.current_action() else {
                panic!("expected initial backoff");
            };
            assert!(periods < 8, "delay {periods} outside 0..=7");
            seen[periods as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all delays drawn: {seen:?}");
    }

    #[test]
    fn ble_mode_uses_tiny_windows() {
        for seed in 0..100 {
            let mut rng = SplitMix64::new(seed);
            let m = SlottedCsmaCa::start(CsmaParams::battery_life_extension(), &mut rng);
            let CsmaAction::BackoffThenCca { periods } = m.current_action() else {
                panic!("expected initial backoff");
            };
            assert!(periods < 4, "BLE delay {periods} outside 0..=3");
        }
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn cca_after_transmit_panics() {
        let mut rng = SplitMix64::new(5);
        let mut m = SlottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        m.on_cca(false, &mut rng);
        m.on_cca(false, &mut rng);
        m.on_cca(false, &mut rng); // already Transmit
    }

    #[test]
    fn params_validation() {
        assert!(CsmaParams::standard_2003().validate().is_ok());
        assert!(CsmaParams::paper().validate().is_ok());
        assert!(CsmaParams::battery_life_extension().validate().is_ok());

        let bad = CsmaParams {
            min_be: 6,
            max_be: 5,
            max_backoffs: 4,
            cw: 2,
        };
        assert_eq!(
            bad.validate(),
            Err(InvalidCsmaParams::ExponentOrder {
                min_be: 6,
                max_be: 5
            })
        );
        let bad = CsmaParams {
            min_be: 3,
            max_be: 9,
            max_backoffs: 4,
            cw: 2,
        };
        assert_eq!(bad.validate(), Err(InvalidCsmaParams::ExponentTooLarge(9)));
        let bad = CsmaParams {
            min_be: 3,
            max_be: 5,
            max_backoffs: 4,
            cw: 0,
        };
        assert_eq!(bad.validate(), Err(InvalidCsmaParams::ZeroContentionWindow));
    }

    #[test]
    fn unslotted_needs_one_clear_cca() {
        let mut rng = SplitMix64::new(8);
        let mut m = UnslottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        assert_eq!(m.on_cca(false, &mut rng), CsmaAction::Transmit);
        assert_eq!(m.ccas_performed(), 1);
    }

    #[test]
    fn unslotted_escalates_and_fails_like_slotted() {
        let mut rng = SplitMix64::new(9);
        let mut m = UnslottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        assert_eq!(m.backoff_exponent(), 3);
        let mut rounds = 0;
        loop {
            match m.on_cca(true, &mut rng) {
                CsmaAction::Failure => break,
                CsmaAction::BackoffThenCca { periods } => {
                    rounds += 1;
                    assert!(periods < 1 << m.backoff_exponent());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(rounds, 4, "macMaxCSMABackoffs extra rounds");
        assert_eq!(m.ccas_performed(), 5);
        assert_eq!(m.backoff_exponent(), 5, "BE saturates");
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn unslotted_cca_after_transmit_panics() {
        let mut rng = SplitMix64::new(10);
        let mut m = UnslottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
        m.on_cca(false, &mut rng);
        m.on_cca(false, &mut rng);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut rng = SplitMix64::new(seed);
            let mut m = SlottedCsmaCa::start(CsmaParams::standard_2003(), &mut rng);
            let mut trace = vec![format!("{:?}", m.current_action())];
            for busy in [true, false, false] {
                trace.push(format!("{:?}", m.on_cca(busy, &mut rng)));
            }
            trace
        };
        assert_eq!(run(123), run(123));
    }
}
