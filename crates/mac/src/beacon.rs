//! Beacon payload wire format: superframe specification, GTS fields and
//! pending-address fields.
//!
//! The beacon is the heartbeat of the paper's activation policy — every
//! node wakes for it once per `T_ib`. This module provides the payload the
//! coordinator serializes into a [`wsn_phy::frame::MacFrame::beacon`] and
//! nodes parse to learn the superframe timing and pending downlink traffic.

use core::fmt;

use crate::superframe::{SuperframeConfig, SuperframeError};

/// Error raised when parsing a beacon payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeaconParseError {
    /// Payload ended early.
    Truncated,
    /// Superframe specification carried invalid orders.
    BadSuperframe(SuperframeError),
    /// Pending-address count exceeds the 7-short/7-extended limit.
    BadPendingCount(u8),
}

impl fmt::Display for BeaconParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeaconParseError::Truncated => write!(f, "beacon payload truncated"),
            BeaconParseError::BadSuperframe(e) => write!(f, "bad superframe spec: {e}"),
            BeaconParseError::BadPendingCount(n) => {
                write!(f, "pending address count {n} exceeds 7")
            }
        }
    }
}

impl std::error::Error for BeaconParseError {}

impl From<SuperframeError> for BeaconParseError {
    fn from(e: SuperframeError) -> Self {
        BeaconParseError::BadSuperframe(e)
    }
}

/// The 16-bit superframe specification carried by every beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SuperframeSpec {
    /// Beacon order (bits 0–3).
    pub beacon_order: u8,
    /// Superframe order (bits 4–7).
    pub superframe_order: u8,
    /// Final CAP slot (bits 8–11).
    pub final_cap_slot: u8,
    /// Battery life extension flag (bit 12).
    pub battery_life_extension: bool,
    /// PAN coordinator flag (bit 14).
    pub pan_coordinator: bool,
    /// Association permitted flag (bit 15).
    pub association_permit: bool,
}

impl SuperframeSpec {
    /// Builds a specification from a validated superframe configuration.
    pub fn from_config(config: SuperframeConfig) -> Self {
        SuperframeSpec {
            beacon_order: config.beacon_order().value(),
            superframe_order: config.superframe_order().value(),
            final_cap_slot: 15 - config.gts_slots(),
            battery_life_extension: false,
            pan_coordinator: true,
            association_permit: true,
        }
    }

    /// Encodes to the 16-bit wire value.
    pub fn bits(self) -> u16 {
        (self.beacon_order as u16 & 0xF)
            | (self.superframe_order as u16 & 0xF) << 4
            | (self.final_cap_slot as u16 & 0xF) << 8
            | (self.battery_life_extension as u16) << 12
            | (self.pan_coordinator as u16) << 14
            | (self.association_permit as u16) << 15
    }

    /// Decodes from the 16-bit wire value.
    pub fn from_bits(v: u16) -> Self {
        SuperframeSpec {
            beacon_order: (v & 0xF) as u8,
            superframe_order: ((v >> 4) & 0xF) as u8,
            final_cap_slot: ((v >> 8) & 0xF) as u8,
            battery_life_extension: v & (1 << 12) != 0,
            pan_coordinator: v & (1 << 14) != 0,
            association_permit: v & (1 << 15) != 0,
        }
    }

    /// Reconstructs the superframe configuration (GTS slot count from the
    /// final CAP slot).
    ///
    /// # Errors
    ///
    /// Returns [`SuperframeError`] if the orders are inconsistent.
    pub fn to_config(self) -> Result<SuperframeConfig, SuperframeError> {
        SuperframeConfig::new(
            self.beacon_order,
            self.superframe_order,
            15 - self.final_cap_slot.min(15),
        )
    }
}

/// A GTS descriptor: a device's reserved slot range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GtsDescriptor {
    /// Short address of the device owning the slots.
    pub short_address: u16,
    /// First superframe slot of the allocation (0–15).
    pub starting_slot: u8,
    /// Number of contiguous slots (1–15).
    pub length: u8,
}

/// A full beacon payload.
///
/// # Examples
///
/// ```
/// use wsn_mac::beacon::BeaconPayload;
/// use wsn_mac::SuperframeConfig;
///
/// let payload = BeaconPayload::for_config(SuperframeConfig::fully_active(6)?);
/// let wire = payload.serialize();
/// let back = BeaconPayload::parse(&wire)?;
/// assert_eq!(back, payload);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeaconPayload {
    /// Superframe specification.
    pub superframe: SuperframeSpec,
    /// GTS descriptors (at most 7).
    pub gts: Vec<GtsDescriptor>,
    /// Short addresses with pending downlink data (at most 7).
    pub pending_short: Vec<u16>,
}

impl BeaconPayload {
    /// Minimal beacon for a configuration: no GTS descriptors, no pending
    /// addresses.
    pub fn for_config(config: SuperframeConfig) -> Self {
        BeaconPayload {
            superframe: SuperframeSpec::from_config(config),
            gts: Vec::new(),
            pending_short: Vec::new(),
        }
    }

    /// Serializes to the beacon MAC payload bytes.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 3 * self.gts.len() + 2 * self.pending_short.len());
        out.extend_from_slice(&self.superframe.bits().to_le_bytes());
        // GTS specification: count in bits 0-2, permit in bit 7.
        out.push((self.gts.len() as u8 & 0x7) | 0x80);
        if !self.gts.is_empty() {
            // GTS directions bitmap: all uplink here.
            out.push(0x00);
            for d in &self.gts {
                out.extend_from_slice(&d.short_address.to_le_bytes());
                out.push((d.starting_slot & 0xF) | (d.length & 0xF) << 4);
            }
        }
        // Pending address specification: shorts in bits 0-2.
        out.push(self.pending_short.len() as u8 & 0x7);
        for a in &self.pending_short {
            out.extend_from_slice(&a.to_le_bytes());
        }
        out
    }

    /// Parses a beacon MAC payload.
    ///
    /// # Errors
    ///
    /// Returns [`BeaconParseError`] on truncation or invalid field values.
    pub fn parse(bytes: &[u8]) -> Result<Self, BeaconParseError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], BeaconParseError> {
            if *pos + n > bytes.len() {
                return Err(BeaconParseError::Truncated);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };

        let sf_bytes = take(&mut pos, 2)?;
        let superframe = SuperframeSpec::from_bits(u16::from_le_bytes([sf_bytes[0], sf_bytes[1]]));
        // Validate orders eagerly so garbage does not propagate.
        superframe.to_config()?;

        let gts_spec = take(&mut pos, 1)?[0];
        let gts_count = (gts_spec & 0x7) as usize;
        let mut gts = Vec::with_capacity(gts_count);
        if gts_count > 0 {
            let _directions = take(&mut pos, 1)?[0];
            for _ in 0..gts_count {
                let d = take(&mut pos, 3)?;
                gts.push(GtsDescriptor {
                    short_address: u16::from_le_bytes([d[0], d[1]]),
                    starting_slot: d[2] & 0xF,
                    length: d[2] >> 4,
                });
            }
        }

        let pending_spec = take(&mut pos, 1)?[0];
        let pending_count = (pending_spec & 0x7) as usize;
        if pending_count > 7 {
            return Err(BeaconParseError::BadPendingCount(pending_count as u8));
        }
        let mut pending_short = Vec::with_capacity(pending_count);
        for _ in 0..pending_count {
            let a = take(&mut pos, 2)?;
            pending_short.push(u16::from_le_bytes([a[0], a[1]]));
        }

        Ok(BeaconPayload {
            superframe,
            gts,
            pending_short,
        })
    }

    /// `true` if downlink data is pending for `address` (the indirect
    /// transmission signal of Figure 1b).
    pub fn has_pending(&self, address: u16) -> bool {
        self.pending_short.contains(&address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_bits_roundtrip() {
        let config = SuperframeConfig::new(6, 4, 3).unwrap();
        let spec = SuperframeSpec::from_config(config);
        let back = SuperframeSpec::from_bits(spec.bits());
        assert_eq!(back, spec);
        assert_eq!(back.beacon_order, 6);
        assert_eq!(back.superframe_order, 4);
        assert_eq!(back.final_cap_slot, 12);
    }

    #[test]
    fn spec_reconstructs_config() {
        let config = SuperframeConfig::new(6, 6, 2).unwrap();
        let spec = SuperframeSpec::from_config(config);
        assert_eq!(spec.to_config().unwrap(), config);
    }

    #[test]
    fn minimal_beacon_roundtrip() {
        let p = BeaconPayload::for_config(SuperframeConfig::fully_active(6).unwrap());
        let wire = p.serialize();
        // 2 (spec) + 1 (GTS spec) + 1 (pending spec) = 4 bytes.
        assert_eq!(wire.len(), 4);
        assert_eq!(BeaconPayload::parse(&wire).unwrap(), p);
    }

    #[test]
    fn beacon_with_gts_and_pending_roundtrips() {
        let mut p = BeaconPayload::for_config(SuperframeConfig::new(6, 6, 3).unwrap());
        p.gts = vec![
            GtsDescriptor {
                short_address: 0x0042,
                starting_slot: 13,
                length: 2,
            },
            GtsDescriptor {
                short_address: 0x0043,
                starting_slot: 15,
                length: 1,
            },
        ];
        p.pending_short = vec![0x0010, 0x0020, 0x0030];
        let wire = p.serialize();
        let back = BeaconPayload::parse(&wire).unwrap();
        assert_eq!(back, p);
        assert!(back.has_pending(0x0020));
        assert!(!back.has_pending(0x0099));
    }

    #[test]
    fn truncated_beacon_rejected() {
        let p = BeaconPayload::for_config(SuperframeConfig::fully_active(6).unwrap());
        let mut wire = p.serialize();
        wire.truncate(2);
        assert_eq!(
            BeaconPayload::parse(&wire),
            Err(BeaconParseError::Truncated)
        );
    }

    #[test]
    fn invalid_orders_rejected() {
        // SO 7 > BO 3.
        let spec = SuperframeSpec {
            beacon_order: 3,
            superframe_order: 7,
            final_cap_slot: 15,
            battery_life_extension: false,
            pan_coordinator: true,
            association_permit: true,
        };
        let mut wire = Vec::new();
        wire.extend_from_slice(&spec.bits().to_le_bytes());
        wire.push(0x80);
        wire.push(0);
        assert!(matches!(
            BeaconPayload::parse(&wire),
            Err(BeaconParseError::BadSuperframe(_))
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            BeaconParseError::Truncated.to_string(),
            "beacon payload truncated"
        );
    }
}
