//! Indirect transmission: the coordinator-side downlink queue.
//!
//! In the beacon-enabled star network the coordinator never pushes data to
//! a sleeping node. It parks downlink frames in a queue, advertises the
//! owners' addresses in the beacon's pending-address list, and waits for
//! each node to poll (Figure 1b of the paper). Frames that are not
//! collected within `macTransactionPersistenceTime` expire.

use std::collections::VecDeque;

use wsn_units::Seconds;

/// Default transaction persistence: `0x01F4` unit superframe periods
/// (500 × 15.36 ms ≈ 7.68 s).
pub fn default_persistence() -> Seconds {
    Seconds::from_millis(0x01F4 as f64 * 15.36)
}

/// A queued downlink frame.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending {
    destination: u16,
    payload: Vec<u8>,
    enqueued_at_us: u64,
}

/// The coordinator's indirect-transmission queue.
///
/// Time is supplied by the caller in microseconds since an arbitrary epoch,
/// matching the discrete-event simulator's clock.
///
/// # Examples
///
/// ```
/// use wsn_mac::indirect::IndirectQueue;
///
/// let mut q = IndirectQueue::new();
/// q.enqueue(0x0042, vec![1, 2, 3], 0);
/// assert_eq!(q.pending_addresses(0), vec![0x0042]);
/// let frame = q.extract(0x0042, 10).unwrap();
/// assert_eq!(frame, vec![1, 2, 3]);
/// assert!(q.pending_addresses(20).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct IndirectQueue {
    frames: VecDeque<Pending>,
    persistence_us: Option<u64>,
}

impl IndirectQueue {
    /// Creates a queue with the standard persistence time.
    pub fn new() -> Self {
        IndirectQueue {
            frames: VecDeque::new(),
            persistence_us: Some(default_persistence().micros() as u64),
        }
    }

    /// Creates a queue whose entries never expire (for tests and
    /// closed-form models).
    pub fn without_expiry() -> Self {
        IndirectQueue {
            frames: VecDeque::new(),
            persistence_us: None,
        }
    }

    /// Parks a frame for `destination`.
    pub fn enqueue(&mut self, destination: u16, payload: Vec<u8>, now_us: u64) {
        self.frames.push_back(Pending {
            destination,
            payload,
            enqueued_at_us: now_us,
        });
    }

    /// Addresses (deduplicated, FIFO order) that should appear in the next
    /// beacon's pending list — at most 7 fit in the pending-address field.
    pub fn pending_addresses(&mut self, now_us: u64) -> Vec<u16> {
        self.expire(now_us);
        let mut seen = Vec::new();
        for f in &self.frames {
            if !seen.contains(&f.destination) {
                seen.push(f.destination);
                if seen.len() == 7 {
                    break;
                }
            }
        }
        seen
    }

    /// Hands the oldest frame for `address` to a polling node.
    pub fn extract(&mut self, address: u16, now_us: u64) -> Option<Vec<u8>> {
        self.expire(now_us);
        let idx = self.frames.iter().position(|f| f.destination == address)?;
        self.frames.remove(idx).map(|f| f.payload)
    }

    /// Number of parked frames (after expiry at `now_us`).
    pub fn len(&mut self, now_us: u64) -> usize {
        self.expire(now_us);
        self.frames.len()
    }

    /// `true` if nothing is parked.
    pub fn is_empty(&mut self, now_us: u64) -> bool {
        self.len(now_us) == 0
    }

    fn expire(&mut self, now_us: u64) {
        if let Some(persist) = self.persistence_us {
            self.frames
                .retain(|f| now_us.saturating_sub(f.enqueued_at_us) <= persist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_address() {
        let mut q = IndirectQueue::without_expiry();
        q.enqueue(1, vec![1], 0);
        q.enqueue(1, vec![2], 1);
        q.enqueue(2, vec![3], 2);
        assert_eq!(q.extract(1, 3), Some(vec![1]));
        assert_eq!(q.extract(1, 3), Some(vec![2]));
        assert_eq!(q.extract(1, 3), None);
        assert_eq!(q.extract(2, 3), Some(vec![3]));
    }

    #[test]
    fn pending_list_dedupes_and_caps_at_seven() {
        let mut q = IndirectQueue::without_expiry();
        for addr in 0..10u16 {
            q.enqueue(addr, vec![addr as u8], 0);
            q.enqueue(addr, vec![addr as u8], 0); // duplicate
        }
        let pending = q.pending_addresses(0);
        assert_eq!(pending.len(), 7);
        assert_eq!(pending, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn expiry_drops_stale_frames() {
        let mut q = IndirectQueue::new();
        let persist = default_persistence().micros() as u64;
        q.enqueue(1, vec![9], 0);
        assert_eq!(q.len(persist), 1, "still alive at the deadline");
        assert_eq!(q.len(persist + 1), 0, "expired just after");
        assert!(q.is_empty(persist + 1));
        assert_eq!(q.extract(1, persist + 1), None);
    }

    #[test]
    fn default_persistence_matches_standard() {
        assert!((default_persistence().secs() - 7.68).abs() < 1e-9);
    }
}
