//! Superframe structure of the beacon-enabled mode.
//!
//! The inter-beacon period is `T_ib = aBaseSuperframeDuration × 2^BO` (the
//! paper's eq. 12) and the active superframe spans
//! `SD = aBaseSuperframeDuration × 2^SO ≤ T_ib`, divided into 16 slots. The
//! head of the active period is the contention access period (CAP); up to
//! seven tail slots may be reserved as guaranteed time slots (the CFP).

use core::fmt;

use wsn_units::Seconds;

use crate::timing::{base_superframe_duration, NUM_SUPERFRAME_SLOTS};

/// Error for out-of-range superframe parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuperframeError {
    /// Beacon order outside `0..=14`.
    BeaconOrderRange(u8),
    /// Superframe order outside `0..=14`.
    SuperframeOrderRange(u8),
    /// `SO > BO` is not allowed by the standard.
    OrderMismatch {
        /// Offending superframe order.
        so: u8,
        /// Beacon order it exceeds.
        bo: u8,
    },
    /// More than 7 GTS slots, or GTS exceeding the active period.
    GtsOverflow(u8),
}

impl fmt::Display for SuperframeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperframeError::BeaconOrderRange(v) => {
                write!(f, "beacon order {v} outside 0..=14")
            }
            SuperframeError::SuperframeOrderRange(v) => {
                write!(f, "superframe order {v} outside 0..=14")
            }
            SuperframeError::OrderMismatch { so, bo } => {
                write!(f, "superframe order {so} exceeds beacon order {bo}")
            }
            SuperframeError::GtsOverflow(n) => {
                write!(f, "{n} GTS slots exceed the 7-slot CFP limit")
            }
        }
    }
}

impl std::error::Error for SuperframeError {}

/// Beacon order `BO ∈ 0..=14`: the inter-beacon period is
/// `15.36 ms × 2^BO`.
///
/// # Examples
///
/// ```
/// use wsn_mac::BeaconOrder;
///
/// // The paper's case study: BO = 6 ⇒ 983.04 ms between beacons.
/// let bo = BeaconOrder::new(6)?;
/// assert!((bo.beacon_interval().millis() - 983.04).abs() < 1e-9);
/// # Ok::<(), wsn_mac::superframe::SuperframeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeaconOrder(u8);

impl BeaconOrder {
    /// Creates a beacon order.
    ///
    /// # Errors
    ///
    /// Returns [`SuperframeError::BeaconOrderRange`] for values above 14
    /// (15 disables beaconing and is not valid in beacon mode).
    pub fn new(bo: u8) -> Result<Self, SuperframeError> {
        if bo <= 14 {
            Ok(BeaconOrder(bo))
        } else {
            Err(SuperframeError::BeaconOrderRange(bo))
        }
    }

    /// The raw order.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Inter-beacon period `T_ib = 15.36 ms × 2^BO` (paper eq. 12).
    pub fn beacon_interval(self) -> Seconds {
        base_superframe_duration() * (1u64 << self.0) as f64
    }

    /// The smallest beacon order whose interval is at least `t`, if any —
    /// how a network planner picks `BO` from a traffic requirement.
    pub fn smallest_covering(t: Seconds) -> Option<BeaconOrder> {
        (0..=14u8)
            .map(BeaconOrder)
            .find(|bo| bo.beacon_interval() >= t)
    }
}

impl fmt::Display for BeaconOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BO{}", self.0)
    }
}

/// Superframe order `SO ∈ 0..=14`: the active portion spans
/// `15.36 ms × 2^SO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SuperframeOrder(u8);

impl SuperframeOrder {
    /// Creates a superframe order.
    ///
    /// # Errors
    ///
    /// Returns [`SuperframeError::SuperframeOrderRange`] for values above
    /// 14.
    pub fn new(so: u8) -> Result<Self, SuperframeError> {
        if so <= 14 {
            Ok(SuperframeOrder(so))
        } else {
            Err(SuperframeError::SuperframeOrderRange(so))
        }
    }

    /// The raw order.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Active superframe duration `SD = 15.36 ms × 2^SO`.
    pub fn superframe_duration(self) -> Seconds {
        base_superframe_duration() * (1u64 << self.0) as f64
    }
}

impl fmt::Display for SuperframeOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SO{}", self.0)
    }
}

/// A validated beacon-mode superframe configuration.
///
/// # Examples
///
/// ```
/// use wsn_mac::SuperframeConfig;
///
/// // Fully active superframe at the paper's BO = 6.
/// let sf = SuperframeConfig::fully_active(6)?;
/// assert!((sf.slot_duration().millis() - 61.44).abs() < 1e-9);
/// assert_eq!(sf.duty_cycle(), 1.0);
///
/// // BO 6 / SO 2: radio may sleep 15/16 of the time.
/// let sparse = SuperframeConfig::new(6, 2, 0)?;
/// assert!((sparse.duty_cycle() - 1.0 / 16.0).abs() < 1e-12);
/// # Ok::<(), wsn_mac::superframe::SuperframeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SuperframeConfig {
    bo: BeaconOrder,
    so: SuperframeOrder,
    gts_slots: u8,
}

impl SuperframeConfig {
    /// Creates a configuration with `gts_slots` tail slots reserved for the
    /// contention-free period.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range orders, `SO > BO`, and more than 7 GTS slots.
    pub fn new(bo: u8, so: u8, gts_slots: u8) -> Result<Self, SuperframeError> {
        let bo = BeaconOrder::new(bo)?;
        let so = SuperframeOrder::new(so)?;
        if so.value() > bo.value() {
            return Err(SuperframeError::OrderMismatch {
                so: so.value(),
                bo: bo.value(),
            });
        }
        if gts_slots > 7 {
            return Err(SuperframeError::GtsOverflow(gts_slots));
        }
        Ok(SuperframeConfig { bo, so, gts_slots })
    }

    /// An always-active configuration (`SO = BO`) with no GTS — the paper's
    /// contention-only setup.
    pub fn fully_active(bo: u8) -> Result<Self, SuperframeError> {
        SuperframeConfig::new(bo, bo, 0)
    }

    /// Beacon order.
    pub fn beacon_order(self) -> BeaconOrder {
        self.bo
    }

    /// Superframe order.
    pub fn superframe_order(self) -> SuperframeOrder {
        self.so
    }

    /// Number of GTS (contention-free) slots at the superframe tail.
    pub fn gts_slots(self) -> u8 {
        self.gts_slots
    }

    /// Inter-beacon period `T_ib`.
    pub fn beacon_interval(self) -> Seconds {
        self.bo.beacon_interval()
    }

    /// Active superframe duration `SD`.
    pub fn superframe_duration(self) -> Seconds {
        self.so.superframe_duration()
    }

    /// Duration of one of the 16 superframe slots.
    pub fn slot_duration(self) -> Seconds {
        self.superframe_duration() / NUM_SUPERFRAME_SLOTS as f64
    }

    /// Duration of the contention access period (active period minus GTS).
    pub fn cap_duration(self) -> Seconds {
        self.superframe_duration() - self.slot_duration() * self.gts_slots as f64
    }

    /// Fraction of the beacon interval that is active.
    pub fn duty_cycle(self) -> f64 {
        self.superframe_duration() / self.beacon_interval()
    }
}

impl fmt::Display for SuperframeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} gts={}", self.bo, self.so, self.gts_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beacon_interval_doubles_per_order() {
        let mut prev = BeaconOrder::new(0).unwrap().beacon_interval();
        assert!((prev.millis() - 15.36).abs() < 1e-9);
        for bo in 1..=14u8 {
            let t = BeaconOrder::new(bo).unwrap().beacon_interval();
            assert!((t / prev - 2.0).abs() < 1e-12);
            prev = t;
        }
    }

    #[test]
    fn paper_case_study_bo6() {
        let bo = BeaconOrder::new(6).unwrap();
        assert!((bo.beacon_interval().millis() - 983.04).abs() < 1e-9);
    }

    #[test]
    fn orders_out_of_range_rejected() {
        assert!(BeaconOrder::new(15).is_err());
        assert!(SuperframeOrder::new(15).is_err());
        assert!(BeaconOrder::new(14).is_ok());
    }

    #[test]
    fn smallest_covering_finds_bo() {
        // 960 ms data cadence needs BO 6 (983.04 ms).
        let bo = BeaconOrder::smallest_covering(Seconds::from_millis(960.0)).unwrap();
        assert_eq!(bo.value(), 6);
        // An absurdly long interval is uncoverable.
        assert!(BeaconOrder::smallest_covering(Seconds::from_secs(1000.0)).is_none());
    }

    #[test]
    fn so_cannot_exceed_bo() {
        assert_eq!(
            SuperframeConfig::new(3, 5, 0),
            Err(SuperframeError::OrderMismatch { so: 5, bo: 3 })
        );
        assert!(SuperframeConfig::new(5, 5, 0).is_ok());
        assert!(SuperframeConfig::new(5, 3, 0).is_ok());
    }

    #[test]
    fn gts_limit_enforced() {
        assert!(SuperframeConfig::new(6, 6, 7).is_ok());
        assert_eq!(
            SuperframeConfig::new(6, 6, 8),
            Err(SuperframeError::GtsOverflow(8))
        );
    }

    #[test]
    fn cap_shrinks_with_gts() {
        let no_gts = SuperframeConfig::fully_active(6).unwrap();
        let with_gts = SuperframeConfig::new(6, 6, 4).unwrap();
        assert!(with_gts.cap_duration() < no_gts.cap_duration());
        let expected = no_gts.superframe_duration() * (12.0 / 16.0);
        assert!((with_gts.cap_duration().secs() - expected.secs()).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_sixteenth() {
        // The paper: beacon mode lets the transceiver sleep 15/16 of the
        // time while staying associated (BO − SO = 4 ⇒ 1/16 duty).
        let sf = SuperframeConfig::new(6, 2, 0).unwrap();
        assert!((sf.duty_cycle() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            SuperframeError::OrderMismatch { so: 5, bo: 3 }.to_string(),
            "superframe order 5 exceeds beacon order 3"
        );
    }
}
