//! MAC timing constants, denominated in PHY symbols (16 µs each in the
//! 2 450 MHz band).

use wsn_units::Seconds;

use wsn_phy::consts::symbols;

/// Unit backoff period: 20 symbols = 320 µs. All CSMA/CA activity aligns to
/// multiples of this period (the paper's `T_slot = 20 × T_S`).
pub const UNIT_BACKOFF_PERIOD_SYMBOLS: u32 = 20;

/// CCA detection time: 8 symbols = 128 µs of receiver-on channel sensing.
pub const CCA_DETECTION_SYMBOLS: u32 = 8;

/// RX↔TX turnaround: 12 symbols = 192 µs (`aTurnaroundTime`).
pub const TURNAROUND_SYMBOLS: u32 = 12;

/// Minimum delay before the acknowledgement starts: 12 symbols = 192 µs —
/// the paper's `t_ack⁻`.
pub const ACK_WAIT_MIN_SYMBOLS: u32 = 12;

/// Maximum time the transmitter waits for an acknowledgement: 54 symbols =
/// 864 µs — the paper's `t_ack⁺` (`macAckWaitDuration`).
pub const ACK_WAIT_MAX_SYMBOLS: u32 = 54;

/// Short interframe spacing: 12 symbols, used after frames of at most
/// [`MAX_SIFS_FRAME_BYTES`] bytes.
pub const SIFS_SYMBOLS: u32 = 12;

/// Long interframe spacing: 40 symbols, used after larger frames.
pub const LIFS_SYMBOLS: u32 = 40;

/// MPDU size boundary between SIFS and LIFS (`aMaxSIFSFrameSize`).
pub const MAX_SIFS_FRAME_BYTES: usize = 18;

/// Base slot duration: 60 symbols (`aBaseSlotDuration`).
pub const BASE_SLOT_SYMBOLS: u32 = 60;

/// Number of slots in every superframe (`aNumSuperframeSlots`).
pub const NUM_SUPERFRAME_SLOTS: u32 = 16;

/// Base superframe duration: 960 symbols = 15.36 ms
/// (`aBaseSuperframeDuration`, the paper's `T_ib,min`).
pub const BASE_SUPERFRAME_SYMBOLS: u32 = BASE_SLOT_SYMBOLS * NUM_SUPERFRAME_SLOTS;

/// Unit backoff period as a time span (320 µs).
pub fn unit_backoff_period() -> Seconds {
    symbols(UNIT_BACKOFF_PERIOD_SYMBOLS)
}

/// CCA detection time as a time span (128 µs).
pub fn cca_detection_time() -> Seconds {
    symbols(CCA_DETECTION_SYMBOLS)
}

/// `t_ack⁻` as a time span (192 µs).
pub fn ack_wait_min() -> Seconds {
    symbols(ACK_WAIT_MIN_SYMBOLS)
}

/// `t_ack⁺` as a time span (864 µs).
pub fn ack_wait_max() -> Seconds {
    symbols(ACK_WAIT_MAX_SYMBOLS)
}

/// RX↔TX turnaround as a time span (192 µs).
pub fn turnaround_time() -> Seconds {
    symbols(TURNAROUND_SYMBOLS)
}

/// Interframe spacing after an MPDU of `mpdu_bytes`: SIFS (192 µs) for
/// short frames, LIFS (640 µs) otherwise.
pub fn ifs_after(mpdu_bytes: usize) -> Seconds {
    if mpdu_bytes <= MAX_SIFS_FRAME_BYTES {
        symbols(SIFS_SYMBOLS)
    } else {
        symbols(LIFS_SYMBOLS)
    }
}

/// Base superframe duration as a time span (15.36 ms).
pub fn base_superframe_duration() -> Seconds {
    symbols(BASE_SUPERFRAME_SYMBOLS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_values() {
        assert!((unit_backoff_period().micros() - 320.0).abs() < 1e-9);
        assert!((ack_wait_min().micros() - 192.0).abs() < 1e-9);
        assert!((ack_wait_max().micros() - 864.0).abs() < 1e-9);
        assert!((base_superframe_duration().millis() - 15.36).abs() < 1e-9);
    }

    #[test]
    fn cca_and_turnaround() {
        assert!((cca_detection_time().micros() - 128.0).abs() < 1e-9);
        assert!((turnaround_time().micros() - 192.0).abs() < 1e-9);
    }

    #[test]
    fn ifs_boundary() {
        assert!((ifs_after(18).micros() - 192.0).abs() < 1e-9);
        assert!((ifs_after(19).micros() - 640.0).abs() < 1e-9);
        assert!((ifs_after(133).micros() - 640.0).abs() < 1e-9);
    }

    #[test]
    fn superframe_arithmetic() {
        assert_eq!(BASE_SUPERFRAME_SYMBOLS, 960);
        assert_eq!(NUM_SUPERFRAME_SLOTS * BASE_SLOT_SYMBOLS, 960);
    }
}
