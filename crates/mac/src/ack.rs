//! Acknowledgement timing and the retry policy.
//!
//! After an uplink packet the transmitter idles through `t_ack⁻ = 192 µs`,
//! then listens until either the acknowledgement arrives or `t_ack⁺ =
//! 864 µs` elapses. A missing or corrupted acknowledgement triggers a
//! retransmission through a fresh CSMA/CA procedure, up to `N_max` total
//! attempts (5 in the paper).

use core::fmt;

use wsn_units::Seconds;

use crate::timing::{ack_wait_max, ack_wait_min};
use wsn_phy::frame::ack_duration;

/// The acknowledgement window timing of the transmission procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AckTiming {
    /// Idle gap before the ACK can start (`t_ack⁻`).
    pub wait_min: Seconds,
    /// Total wait before declaring the transmission unacknowledged
    /// (`t_ack⁺`).
    pub wait_max: Seconds,
    /// On-air duration of the acknowledgement frame itself.
    pub ack_duration: Seconds,
}

impl AckTiming {
    /// Standard 2 450 MHz values: 192 µs / 864 µs / 352 µs.
    pub fn standard() -> Self {
        AckTiming {
            wait_min: ack_wait_min(),
            wait_max: ack_wait_max(),
            ack_duration: ack_duration(),
        }
    }

    /// Receiver-on listening window for an attempt that gets *no*
    /// acknowledgement: from the end of `t_ack⁻` to `t_ack⁺`.
    pub fn listen_window_unacked(&self) -> Seconds {
        self.wait_max - self.wait_min
    }

    /// Receiver-on time for an attempt whose acknowledgement arrives at the
    /// earliest opportunity: the ACK frame duration.
    pub fn listen_window_acked(&self) -> Seconds {
        self.ack_duration
    }
}

impl Default for AckTiming {
    fn default() -> Self {
        AckTiming::standard()
    }
}

/// Retransmission policy: at most `n_max` transmissions of the same packet
/// (the paper fixes `N_max = 5`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RetryPolicy {
    n_max: u32,
}

impl RetryPolicy {
    /// Creates a policy allowing up to `n_max` transmissions.
    ///
    /// # Panics
    ///
    /// Panics if `n_max == 0` (at least one attempt is required).
    pub fn new(n_max: u32) -> Self {
        assert!(n_max > 0, "at least one transmission attempt is required");
        RetryPolicy { n_max }
    }

    /// The paper's investigation limit, `N_max = 5`.
    pub fn paper() -> Self {
        RetryPolicy::new(5)
    }

    /// Maximum number of transmissions.
    pub fn n_max(&self) -> u32 {
        self.n_max
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper()
    }
}

/// Outcome of a full transmission transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransactionOutcome {
    /// Acknowledged on attempt `attempts` (1-based).
    Delivered {
        /// Number of transmissions used.
        attempts: u32,
    },
    /// All `N_max` transmissions went unacknowledged.
    RetriesExhausted,
    /// A CSMA/CA procedure reported channel access failure.
    ChannelAccessFailure,
}

impl TransactionOutcome {
    /// `true` if the packet reached the coordinator.
    pub fn is_delivered(&self) -> bool {
        matches!(self, TransactionOutcome::Delivered { .. })
    }
}

impl fmt::Display for TransactionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionOutcome::Delivered { attempts } => {
                write!(f, "delivered after {attempts} attempt(s)")
            }
            TransactionOutcome::RetriesExhausted => write!(f, "retries exhausted"),
            TransactionOutcome::ChannelAccessFailure => write!(f, "channel access failure"),
        }
    }
}

/// Per-packet retry bookkeeping.
///
/// # Examples
///
/// ```
/// use wsn_mac::{RetryPolicy, RetryState, TransactionOutcome};
///
/// let mut retry = RetryState::new(RetryPolicy::paper());
/// assert_eq!(retry.begin_attempt(), 1);
/// // No ACK: may we try again?
/// assert!(retry.on_unacked());
/// assert_eq!(retry.begin_attempt(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryState {
    policy: RetryPolicy,
    attempts: u32,
}

impl RetryState {
    /// Starts bookkeeping for one packet.
    pub fn new(policy: RetryPolicy) -> Self {
        RetryState {
            policy,
            attempts: 0,
        }
    }

    /// Registers the start of a transmission attempt, returning its 1-based
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if the policy's budget is already exhausted — callers must
    /// consult [`on_unacked`](Self::on_unacked) first.
    pub fn begin_attempt(&mut self) -> u32 {
        assert!(
            self.attempts < self.policy.n_max(),
            "retry budget exhausted"
        );
        self.attempts += 1;
        self.attempts
    }

    /// Called when an attempt goes unacknowledged; returns `true` if
    /// another attempt is permitted.
    pub fn on_unacked(&self) -> bool {
        self.attempts < self.policy.n_max()
    }

    /// Number of attempts begun so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Terminal outcome when the attempt was acknowledged.
    pub fn delivered(&self) -> TransactionOutcome {
        TransactionOutcome::Delivered {
            attempts: self.attempts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_windows_match_paper() {
        let t = AckTiming::standard();
        assert!((t.wait_min.micros() - 192.0).abs() < 1e-9);
        assert!((t.wait_max.micros() - 864.0).abs() < 1e-9);
        assert!((t.ack_duration.micros() - 352.0).abs() < 1e-9);
        assert!((t.listen_window_unacked().micros() - 672.0).abs() < 1e-9);
        assert!((t.listen_window_acked().micros() - 352.0).abs() < 1e-9);
    }

    #[test]
    fn retry_budget_is_five() {
        let mut r = RetryState::new(RetryPolicy::paper());
        for i in 1..=5 {
            assert_eq!(r.begin_attempt(), i);
        }
        assert!(!r.on_unacked(), "sixth attempt must be denied");
    }

    #[test]
    #[should_panic(expected = "retry budget exhausted")]
    fn sixth_attempt_panics() {
        let mut r = RetryState::new(RetryPolicy::paper());
        for _ in 0..5 {
            r.begin_attempt();
        }
        r.begin_attempt();
    }

    #[test]
    fn outcome_predicates() {
        assert!(TransactionOutcome::Delivered { attempts: 2 }.is_delivered());
        assert!(!TransactionOutcome::RetriesExhausted.is_delivered());
        assert!(!TransactionOutcome::ChannelAccessFailure.is_delivered());
    }

    #[test]
    fn delivered_reports_attempts() {
        let mut r = RetryState::new(RetryPolicy::paper());
        r.begin_attempt();
        r.begin_attempt();
        assert_eq!(r.delivered(), TransactionOutcome::Delivered { attempts: 2 });
    }

    #[test]
    #[should_panic(expected = "at least one transmission")]
    fn zero_nmax_rejected() {
        let _ = RetryPolicy::new(0);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(
            TransactionOutcome::Delivered { attempts: 3 }.to_string(),
            "delivered after 3 attempt(s)"
        );
        assert_eq!(
            TransactionOutcome::ChannelAccessFailure.to_string(),
            "channel access failure"
        );
    }
}
