//! IEEE 802.15.4-2003 medium access control layer.
//!
//! Implements the MAC substrate of the paper's uplink exercise:
//!
//! * [`timing`] — symbol-denominated MAC constants (unit backoff period,
//!   acknowledgement windows `t_ack⁻ = 192 µs` / `t_ack⁺ = 864 µs`, CCA
//!   detection time, interframe spacings);
//! * [`superframe`] — beacon order / superframe order arithmetic
//!   (`T_ib = 15.36 ms × 2^BO`, paper eq. 12), CAP/CFP split, slot grid;
//! * [`csma`] — the slotted CSMA/CA algorithm as a pure, step-driven state
//!   machine with the standard's parameters, the paper's stricter
//!   abort-after-two-BE-increments variant, and the battery-life-extension
//!   mode the paper declines to use;
//! * [`beacon`] — beacon payload wire format (superframe specification,
//!   GTS and pending-address fields);
//! * [`ack`] — acknowledgement timing and the `N_max = 5` retry policy;
//! * [`gts`] — guaranteed time slot bookkeeping (and why it cannot serve
//!   hundreds of nodes);
//! * [`indirect`] — the coordinator's indirect-transmission queue used for
//!   downlink traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ack;
pub mod association;
pub mod beacon;
pub mod csma;
pub mod gts;
pub mod indirect;
pub mod superframe;
pub mod timing;

pub use ack::{AckTiming, RetryPolicy, RetryState, TransactionOutcome};
pub use csma::{CsmaAction, CsmaParams, SlottedCsmaCa};
pub use superframe::{BeaconOrder, SuperframeConfig, SuperframeOrder};
