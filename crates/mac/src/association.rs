//! Association: how a node joins the star network and obtains the short
//! address the paper's 4-byte addressing assumes.
//!
//! The paper starts from an associated network; this module supplies the
//! joining machinery so simulations can model cold start. It implements
//! the MAC command payloads (association request/response) and a
//! coordinator-side short-address allocator.

use core::fmt;

/// MAC command identifiers (802.15.4-2003 Table 67, subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandId {
    /// Association request (0x01).
    AssociationRequest,
    /// Association response (0x02).
    AssociationResponse,
    /// Data request (0x04) — used by indirect transmission polls.
    DataRequest,
}

impl CommandId {
    /// Wire value.
    pub fn byte(self) -> u8 {
        match self {
            CommandId::AssociationRequest => 0x01,
            CommandId::AssociationResponse => 0x02,
            CommandId::DataRequest => 0x04,
        }
    }

    /// Decodes a wire value.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x01 => Some(CommandId::AssociationRequest),
            0x02 => Some(CommandId::AssociationResponse),
            0x04 => Some(CommandId::DataRequest),
            _ => None,
        }
    }
}

/// Capability information carried by an association request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CapabilityInfo {
    /// Device is a full-function device.
    pub ffd: bool,
    /// Mains powered (a microsensor node is not).
    pub mains_powered: bool,
    /// Receiver on when idle (a microsensor node's is not).
    pub rx_on_when_idle: bool,
    /// Requests a short address allocation.
    pub allocate_address: bool,
}

impl CapabilityInfo {
    /// The paper's node profile: reduced-function, battery powered,
    /// receiver off when idle, short address wanted.
    pub fn microsensor() -> Self {
        CapabilityInfo {
            ffd: false,
            mains_powered: false,
            rx_on_when_idle: false,
            allocate_address: true,
        }
    }

    /// Wire encoding.
    pub fn byte(self) -> u8 {
        (self.ffd as u8) << 1
            | (self.mains_powered as u8) << 2
            | (self.rx_on_when_idle as u8) << 3
            | (self.allocate_address as u8) << 7
    }

    /// Decodes the wire encoding.
    pub fn from_byte(b: u8) -> Self {
        CapabilityInfo {
            ffd: b & (1 << 1) != 0,
            mains_powered: b & (1 << 2) != 0,
            rx_on_when_idle: b & (1 << 3) != 0,
            allocate_address: b & (1 << 7) != 0,
        }
    }
}

/// Association response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssociationStatus {
    /// Joined; the paired short address is valid.
    Successful,
    /// Coordinator has no address space left.
    AtCapacity,
    /// Access denied by policy.
    Denied,
}

impl AssociationStatus {
    /// Wire value.
    pub fn byte(self) -> u8 {
        match self {
            AssociationStatus::Successful => 0x00,
            AssociationStatus::AtCapacity => 0x01,
            AssociationStatus::Denied => 0x02,
        }
    }

    /// Decodes a wire value.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x00 => Some(AssociationStatus::Successful),
            0x01 => Some(AssociationStatus::AtCapacity),
            0x02 => Some(AssociationStatus::Denied),
            _ => None,
        }
    }
}

/// Error from the coordinator's address allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssociationError {
    /// Address pool exhausted.
    Exhausted,
    /// The device (by extended address) is already associated.
    AlreadyAssociated(u64),
}

impl fmt::Display for AssociationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssociationError::Exhausted => write!(f, "short address pool exhausted"),
            AssociationError::AlreadyAssociated(ext) => {
                write!(f, "device 0x{ext:016X} already associated")
            }
        }
    }
}

impl std::error::Error for AssociationError {}

/// Coordinator-side short address allocator.
///
/// Addresses are handed out sequentially from 0x0001 (0x0000 is the
/// coordinator itself; 0xFFFE/0xFFFF are reserved by the standard).
///
/// # Examples
///
/// ```
/// use wsn_mac::association::AddressAllocator;
///
/// let mut alloc = AddressAllocator::new(1600);
/// let addr = alloc.associate(0xAABB_CCDD_0000_0001)?;
/// assert_eq!(addr, 0x0001);
/// assert_eq!(alloc.associated(), 1);
/// # Ok::<(), wsn_mac::association::AssociationError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressAllocator {
    capacity: usize,
    by_extended: Vec<(u64, u16)>,
    next: u16,
}

impl AddressAllocator {
    /// Creates an allocator for at most `capacity` devices.
    pub fn new(capacity: usize) -> Self {
        AddressAllocator {
            capacity: capacity.min(0xFFFD),
            by_extended: Vec::new(),
            next: 0x0001,
        }
    }

    /// Number of associated devices.
    pub fn associated(&self) -> usize {
        self.by_extended.len()
    }

    /// Associates a device, returning its short address.
    ///
    /// # Errors
    ///
    /// Fails when the pool is exhausted or the device already joined.
    pub fn associate(&mut self, extended: u64) -> Result<u16, AssociationError> {
        if self.by_extended.iter().any(|(e, _)| *e == extended) {
            return Err(AssociationError::AlreadyAssociated(extended));
        }
        if self.by_extended.len() >= self.capacity {
            return Err(AssociationError::Exhausted);
        }
        let addr = self.next;
        self.next += 1;
        self.by_extended.push((extended, addr));
        Ok(addr)
    }

    /// Looks up a device's short address.
    pub fn short_address(&self, extended: u64) -> Option<u16> {
        self.by_extended
            .iter()
            .find(|(e, _)| *e == extended)
            .map(|(_, s)| *s)
    }

    /// Disassociates a device; returns `true` if it was associated.
    pub fn disassociate(&mut self, extended: u64) -> bool {
        let before = self.by_extended.len();
        self.by_extended.retain(|(e, _)| *e != extended);
        self.by_extended.len() != before
    }
}

/// Device-side association lifecycle states.
///
/// The paper starts from an associated network, but under churn a node
/// walks the full cycle: it joins, tracks its coordinator's beacons,
/// declares itself orphaned after `aMaxLostBeacons`-style consecutive
/// misses, scans and retries association a bounded number of times, and —
/// rather than spinning forever on a dead coordinator — goes dormant once
/// the retry budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Not yet part of the network (cold start).
    Unassociated,
    /// Association request sent; awaiting the coordinator's response.
    AwaitingResponse,
    /// Joined and tracking beacons.
    Associated,
    /// Coordinator lost; running the orphan scan procedure.
    Orphaned,
    /// Retry budget exhausted; radio off until an external reset.
    Dormant,
}

/// Device-side association state machine with bounded retry.
///
/// Drives the join → orphan → re-associate cycle. Beacon tracking uses an
/// `aMaxLostBeacons`-style threshold (the standard's default is 4): that
/// many *consecutive* missed beacons orphan the node. Each orphan scan or
/// failed association exchange consumes one unit of the retry budget;
/// exhausting it parks the machine in [`LinkState::Dormant`].
///
/// # Examples
///
/// ```
/// use wsn_mac::association::{AssociationMachine, AssociationStatus, LinkState};
///
/// let mut m = AssociationMachine::new(4, 3);
/// m.request_sent();
/// m.response(AssociationStatus::Successful);
/// assert_eq!(m.state(), LinkState::Associated);
/// for _ in 0..4 {
///     m.beacon_missed();
/// }
/// assert_eq!(m.state(), LinkState::Orphaned);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociationMachine {
    state: LinkState,
    lost_beacons: u32,
    max_lost_beacons: u32,
    retries: u32,
    max_retries: u32,
}

impl AssociationMachine {
    /// Creates a machine in [`LinkState::Unassociated`].
    ///
    /// `max_lost_beacons` consecutive missed beacons orphan an associated
    /// node (use 4 for the standard's `aMaxLostBeacons`); after
    /// `max_retries` failed scan/association rounds the node goes dormant.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero — a zero threshold would orphan or
    /// park the node before anything happened.
    pub fn new(max_lost_beacons: u32, max_retries: u32) -> Self {
        assert!(max_lost_beacons > 0, "max_lost_beacons must be positive");
        assert!(max_retries > 0, "max_retries must be positive");
        AssociationMachine {
            state: LinkState::Unassociated,
            lost_beacons: 0,
            max_lost_beacons,
            retries: 0,
            max_retries,
        }
    }

    /// Creates a machine already associated (the paper's warm start).
    pub fn associated(max_lost_beacons: u32, max_retries: u32) -> Self {
        let mut m = AssociationMachine::new(max_lost_beacons, max_retries);
        m.state = LinkState::Associated;
        m
    }

    /// Current state.
    pub fn state(&self) -> LinkState {
        self.state
    }

    /// Consecutive beacons missed while associated.
    pub fn lost_beacons(&self) -> u32 {
        self.lost_beacons
    }

    /// Scan/association retries consumed since the node last associated.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// True when the machine can carry traffic.
    pub fn is_associated(&self) -> bool {
        self.state == LinkState::Associated
    }

    /// True once the retry budget is exhausted.
    pub fn is_dormant(&self) -> bool {
        self.state == LinkState::Dormant
    }

    /// An association request went out (from cold start or an orphan
    /// scan that located a coordinator). No-op unless the node is
    /// unassociated or orphaned.
    pub fn request_sent(&mut self) {
        if matches!(self.state, LinkState::Unassociated | LinkState::Orphaned) {
            self.state = LinkState::AwaitingResponse;
        }
    }

    /// The coordinator's association response arrived. On success the node
    /// associates and both counters reset; any other status consumes one
    /// retry and sends the node back to scanning (or dormancy).
    pub fn response(&mut self, status: AssociationStatus) {
        if self.state != LinkState::AwaitingResponse {
            return;
        }
        if status == AssociationStatus::Successful {
            self.state = LinkState::Associated;
            self.lost_beacons = 0;
            self.retries = 0;
        } else {
            self.consume_retry();
        }
    }

    /// A tracked beacon arrived; resets the consecutive-miss counter.
    pub fn beacon_received(&mut self) {
        if self.state == LinkState::Associated {
            self.lost_beacons = 0;
        }
    }

    /// A tracked beacon was missed. After `max_lost_beacons` consecutive
    /// misses the node declares itself orphaned.
    pub fn beacon_missed(&mut self) {
        if self.state != LinkState::Associated {
            return;
        }
        self.lost_beacons += 1;
        if self.lost_beacons >= self.max_lost_beacons {
            self.state = LinkState::Orphaned;
        }
    }

    /// One orphan-scan round concluded without locating the coordinator
    /// (or the subsequent exchange failed); consumes one retry.
    pub fn scan_failed(&mut self) {
        if self.state == LinkState::Orphaned {
            self.consume_retry();
        }
    }

    fn consume_retry(&mut self) {
        self.retries += 1;
        self.state = if self.retries >= self.max_retries {
            LinkState::Dormant
        } else {
            LinkState::Orphaned
        };
    }
}

/// Serializes an association request command payload.
pub fn association_request(capability: CapabilityInfo) -> Vec<u8> {
    vec![CommandId::AssociationRequest.byte(), capability.byte()]
}

/// Serializes an association response command payload.
pub fn association_response(short: u16, status: AssociationStatus) -> Vec<u8> {
    let mut out = vec![CommandId::AssociationResponse.byte()];
    out.extend_from_slice(&short.to_le_bytes());
    out.push(status.byte());
    out
}

/// Parses an association response payload.
pub fn parse_association_response(payload: &[u8]) -> Option<(u16, AssociationStatus)> {
    if payload.len() != 4 || payload[0] != CommandId::AssociationResponse.byte() {
        return None;
    }
    let short = u16::from_le_bytes([payload[1], payload[2]]);
    let status = AssociationStatus::from_byte(payload[3])?;
    Some((short, status))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_ids_roundtrip() {
        for id in [
            CommandId::AssociationRequest,
            CommandId::AssociationResponse,
            CommandId::DataRequest,
        ] {
            assert_eq!(CommandId::from_byte(id.byte()), Some(id));
        }
        assert_eq!(CommandId::from_byte(0x99), None);
    }

    #[test]
    fn capability_roundtrip() {
        let c = CapabilityInfo::microsensor();
        let back = CapabilityInfo::from_byte(c.byte());
        assert_eq!(back, c);
        assert!(!back.mains_powered);
        assert!(back.allocate_address);
    }

    #[test]
    fn allocator_hands_out_sequential_addresses() {
        let mut a = AddressAllocator::new(1600);
        for i in 0..100u64 {
            let addr = a.associate(0x1000 + i).unwrap();
            assert_eq!(addr, 0x0001 + i as u16);
        }
        assert_eq!(a.associated(), 100);
        assert_eq!(a.short_address(0x1005), Some(0x0006));
        assert_eq!(a.short_address(0x9999), None);
    }

    #[test]
    fn allocator_rejects_duplicates_and_overflow() {
        let mut a = AddressAllocator::new(2);
        a.associate(1).unwrap();
        assert_eq!(a.associate(1), Err(AssociationError::AlreadyAssociated(1)));
        a.associate(2).unwrap();
        assert_eq!(a.associate(3), Err(AssociationError::Exhausted));
        assert!(a.disassociate(1));
        assert!(!a.disassociate(1));
        // Freed capacity can be reused (with a fresh address).
        assert!(a.associate(3).is_ok());
    }

    #[test]
    fn paper_scale_association() {
        // The paper's 1600 nodes all fit in the short address space.
        let mut a = AddressAllocator::new(1600);
        for i in 0..1600u64 {
            a.associate(i).unwrap();
        }
        assert_eq!(a.associated(), 1600);
        assert_eq!(a.associate(9999), Err(AssociationError::Exhausted));
    }

    #[test]
    fn response_payload_roundtrip() {
        let wire = association_response(0x0042, AssociationStatus::Successful);
        assert_eq!(
            parse_association_response(&wire),
            Some((0x0042, AssociationStatus::Successful))
        );
        assert_eq!(parse_association_response(&wire[..3]), None);
        let denied = association_response(0xFFFF, AssociationStatus::Denied);
        assert_eq!(
            parse_association_response(&denied).unwrap().1,
            AssociationStatus::Denied
        );
    }

    #[test]
    fn request_payload_shape() {
        let wire = association_request(CapabilityInfo::microsensor());
        assert_eq!(wire.len(), 2);
        assert_eq!(wire[0], 0x01);
    }

    #[test]
    fn full_join_orphan_reassociate_cycle() {
        let mut m = AssociationMachine::new(4, 3);
        assert_eq!(m.state(), LinkState::Unassociated);

        // Cold start: request → successful response → associated.
        m.request_sent();
        assert_eq!(m.state(), LinkState::AwaitingResponse);
        m.response(AssociationStatus::Successful);
        assert!(m.is_associated());

        // Three misses with a beacon in between never orphan the node —
        // the threshold counts *consecutive* misses.
        for _ in 0..3 {
            m.beacon_missed();
        }
        m.beacon_received();
        assert_eq!(m.lost_beacons(), 0);
        assert!(m.is_associated());

        // aMaxLostBeacons consecutive misses orphan it.
        for _ in 0..4 {
            m.beacon_missed();
        }
        assert_eq!(m.state(), LinkState::Orphaned);

        // One failed scan, then a successful re-association.
        m.scan_failed();
        assert_eq!(m.state(), LinkState::Orphaned);
        assert_eq!(m.retries(), 1);
        m.request_sent();
        m.response(AssociationStatus::Successful);
        assert!(m.is_associated());
        assert_eq!(m.retries(), 0, "re-association resets the retry budget");
    }

    #[test]
    fn bounded_retry_exhaustion_goes_dormant() {
        let mut m = AssociationMachine::associated(4, 3);
        for _ in 0..4 {
            m.beacon_missed();
        }
        assert_eq!(m.state(), LinkState::Orphaned);

        // Two failed scans plus one denied exchange exhaust the budget.
        m.scan_failed();
        m.scan_failed();
        assert_eq!(m.state(), LinkState::Orphaned);
        m.request_sent();
        m.response(AssociationStatus::Denied);
        assert!(m.is_dormant());
        assert_eq!(m.retries(), 3);

        // Dormant is absorbing: no event revives the node.
        m.request_sent();
        m.beacon_received();
        m.beacon_missed();
        m.scan_failed();
        m.response(AssociationStatus::Successful);
        assert!(m.is_dormant(), "dormant node must not spin back up");
    }

    #[test]
    #[should_panic(expected = "max_retries must be positive")]
    fn zero_retry_budget_rejected() {
        let _ = AssociationMachine::new(4, 0);
    }
}
