//! Guaranteed time slot (GTS) bookkeeping.
//!
//! The standard lets a coordinator dedicate up to seven tail slots of the
//! superframe to individual devices. The paper argues this "does not fit
//! well in a dense sensor network since the number of dedicated slots would
//! not be sufficient to accommodate several hundreds of nodes" — this
//! module makes that argument quantitative: [`GtsRegistry`] enforces the
//! hard 7-slot limit and [`max_gts_devices`] exposes it to the ablation
//! benchmarks.

use core::fmt;

use crate::beacon::GtsDescriptor;

/// Hard limit on simultaneously allocated GTS descriptors.
pub const MAX_GTS_DESCRIPTORS: usize = 7;

/// Maximum number of devices servable per superframe through GTS alone —
/// the quantity the paper contrasts with "several hundred" nodes.
pub const fn max_gts_devices() -> usize {
    MAX_GTS_DESCRIPTORS
}

/// Errors from GTS allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GtsError {
    /// All seven descriptors are in use.
    Exhausted,
    /// Requested slots collide with an existing allocation or the CAP.
    SlotUnavailable {
        /// First slot requested.
        starting_slot: u8,
        /// Number of slots requested.
        length: u8,
    },
    /// The device already holds an allocation.
    AlreadyAllocated(u16),
    /// Zero-length or out-of-range request.
    BadRequest,
}

impl fmt::Display for GtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GtsError::Exhausted => write!(f, "all {MAX_GTS_DESCRIPTORS} GTS descriptors in use"),
            GtsError::SlotUnavailable {
                starting_slot,
                length,
            } => write!(
                f,
                "slots {starting_slot}..{} unavailable",
                starting_slot + length
            ),
            GtsError::AlreadyAllocated(addr) => {
                write!(f, "device 0x{addr:04X} already holds a GTS")
            }
            GtsError::BadRequest => write!(f, "invalid GTS request"),
        }
    }
}

impl std::error::Error for GtsError {}

/// Coordinator-side GTS allocation state.
///
/// Slots are allocated from the superframe tail (slot 15) downward, exactly
/// as the contention-free period grows in the standard.
///
/// # Examples
///
/// ```
/// use wsn_mac::gts::{GtsRegistry, MAX_GTS_DESCRIPTORS};
///
/// let mut registry = GtsRegistry::new(8); // keep at least 8 CAP slots
/// for device in 0..MAX_GTS_DESCRIPTORS as u16 {
///     registry.allocate(device, 1)?;
/// }
/// assert!(registry.allocate(99, 1).is_err()); // descriptor table full
/// # Ok::<(), wsn_mac::gts::GtsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtsRegistry {
    allocations: Vec<GtsDescriptor>,
    min_cap_slots: u8,
}

impl GtsRegistry {
    /// Creates a registry that always preserves `min_cap_slots` slots of
    /// contention access period (the standard mandates a minimum CAP).
    ///
    /// # Panics
    ///
    /// Panics if `min_cap_slots > 15` (slot 0 always belongs to the beacon
    /// and CAP).
    pub fn new(min_cap_slots: u8) -> Self {
        assert!(min_cap_slots <= 15, "at most 15 CAP slots exist");
        GtsRegistry {
            allocations: Vec::new(),
            min_cap_slots,
        }
    }

    /// Current allocations, latest last.
    pub fn allocations(&self) -> &[GtsDescriptor] {
        &self.allocations
    }

    /// First slot of the contention-free period (16 if no GTS).
    pub fn cfp_start_slot(&self) -> u8 {
        self.allocations
            .iter()
            .map(|d| d.starting_slot)
            .min()
            .unwrap_or(16)
    }

    /// Number of devices that can still obtain a GTS.
    pub fn remaining_descriptors(&self) -> usize {
        MAX_GTS_DESCRIPTORS - self.allocations.len()
    }

    /// Allocates `length` slots to `device`, growing the CFP downward.
    ///
    /// # Errors
    ///
    /// Fails when the descriptor table is full, the device already holds a
    /// GTS, the request is empty, or the CAP would shrink below the
    /// configured minimum.
    pub fn allocate(&mut self, device: u16, length: u8) -> Result<GtsDescriptor, GtsError> {
        if length == 0 || length > 15 {
            return Err(GtsError::BadRequest);
        }
        if self.allocations.len() >= MAX_GTS_DESCRIPTORS {
            return Err(GtsError::Exhausted);
        }
        if self.allocations.iter().any(|d| d.short_address == device) {
            return Err(GtsError::AlreadyAllocated(device));
        }
        let cfp_start = self.cfp_start_slot();
        if cfp_start < length || cfp_start - length < self.min_cap_slots {
            return Err(GtsError::SlotUnavailable {
                starting_slot: cfp_start.saturating_sub(length),
                length,
            });
        }
        let descriptor = GtsDescriptor {
            short_address: device,
            starting_slot: cfp_start - length,
            length,
        };
        self.allocations.push(descriptor);
        Ok(descriptor)
    }

    /// Releases the allocation of `device`; returns `true` if one existed.
    ///
    /// Allocations above the freed range slide down so the CFP stays
    /// contiguous (as the standard's coordinator re-packs on deallocation).
    pub fn deallocate(&mut self, device: u16) -> bool {
        let Some(idx) = self
            .allocations
            .iter()
            .position(|d| d.short_address == device)
        else {
            return false;
        };
        let freed = self.allocations.remove(idx);
        for d in &mut self.allocations {
            if d.starting_slot < freed.starting_slot {
                d.starting_slot += freed.length;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_grow_downward_from_slot_16() {
        let mut r = GtsRegistry::new(8);
        let a = r.allocate(0x0001, 2).unwrap();
        assert_eq!(a.starting_slot, 14);
        let b = r.allocate(0x0002, 3).unwrap();
        assert_eq!(b.starting_slot, 11);
        assert_eq!(r.cfp_start_slot(), 11);
    }

    #[test]
    fn seven_device_limit() {
        let mut r = GtsRegistry::new(1);
        for dev in 0..7u16 {
            r.allocate(dev, 1).unwrap();
        }
        assert_eq!(r.remaining_descriptors(), 0);
        assert_eq!(r.allocate(7, 1), Err(GtsError::Exhausted));
        // The paper's point: 7 « several hundred nodes.
        assert!(max_gts_devices() < 100);
    }

    #[test]
    fn cap_minimum_respected() {
        let mut r = GtsRegistry::new(12);
        r.allocate(1, 4).unwrap(); // slots 12..16
        assert!(matches!(
            r.allocate(2, 1),
            Err(GtsError::SlotUnavailable { .. })
        ));
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut r = GtsRegistry::new(8);
        r.allocate(0x0042, 1).unwrap();
        assert_eq!(
            r.allocate(0x0042, 1),
            Err(GtsError::AlreadyAllocated(0x0042))
        );
    }

    #[test]
    fn bad_requests_rejected() {
        let mut r = GtsRegistry::new(8);
        assert_eq!(r.allocate(1, 0), Err(GtsError::BadRequest));
        assert_eq!(r.allocate(1, 16), Err(GtsError::BadRequest));
    }

    #[test]
    fn deallocate_repacks_cfp() {
        let mut r = GtsRegistry::new(4);
        r.allocate(1, 2).unwrap(); // 14..16
        r.allocate(2, 3).unwrap(); // 11..14
        r.allocate(3, 1).unwrap(); // 10..11
        assert!(r.deallocate(2));
        // Device 3's slots slide up by the freed 3 slots.
        let d3 = r
            .allocations()
            .iter()
            .find(|d| d.short_address == 3)
            .unwrap();
        assert_eq!(d3.starting_slot, 13);
        assert_eq!(r.cfp_start_slot(), 13);
        assert!(!r.deallocate(2), "double free reports false");
    }

    #[test]
    fn freed_slots_are_immediately_reusable() {
        // allocate → deallocate → reallocate: the freed space returns to
        // the CAP and a later allocation reuses it — churned GTS holders
        // must not leak descriptor slots for the rest of the run.
        let mut r = GtsRegistry::new(12);
        r.allocate(1, 2).unwrap(); // 14..16 — CAP floor reached
        r.allocate(2, 2).unwrap(); // 12..14
        assert!(matches!(
            r.allocate(3, 1),
            Err(GtsError::SlotUnavailable { .. })
        ));
        assert!(r.deallocate(1));
        assert_eq!(r.cfp_start_slot(), 14, "freed tail slots return to CAP");
        // The freed 2 slots service a new holder at the repacked tail.
        let c = r.allocate(3, 2).unwrap();
        assert_eq!(c.starting_slot, 12);
        assert_eq!(r.cfp_start_slot(), 12);
        assert_eq!(r.allocations().len(), 2);
        // And a departed holder can itself rejoin after churn.
        assert!(r.deallocate(2));
        let back = r.allocate(2, 2).unwrap();
        assert_eq!(back.starting_slot, 12);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            GtsError::Exhausted.to_string(),
            "all 7 GTS descriptors in use"
        );
    }
}
