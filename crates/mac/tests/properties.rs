//! Property-based tests for the MAC: CSMA/CA invariants under arbitrary
//! channel behaviour, superframe arithmetic, beacon wire format and GTS
//! registry consistency.

use proptest::prelude::*;

use wsn_mac::beacon::{BeaconPayload, GtsDescriptor};
use wsn_mac::csma::{CsmaAction, CsmaParams, SlottedCsmaCa};
use wsn_mac::gts::GtsRegistry;
use wsn_mac::{BeaconOrder, SuperframeConfig};
use wsn_phy::noise::SplitMix64;

fn arb_params() -> impl Strategy<Value = CsmaParams> {
    prop_oneof![
        Just(CsmaParams::standard_2003()),
        Just(CsmaParams::paper()),
        Just(CsmaParams::battery_life_extension()),
    ]
}

proptest! {
    /// Under any CCA outcome sequence, the machine terminates within the
    /// configured bounds and never violates its invariants.
    #[test]
    fn csma_invariants_hold(
        params in arb_params(),
        seed in any::<u64>(),
        outcomes in proptest::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut machine = SlottedCsmaCa::start(params, &mut rng);
        let max_rounds = params.max_backoffs as u32 + 1;
        let mut finished = false;

        // The initial backoff must respect the minimum exponent window.
        if let CsmaAction::BackoffThenCca { periods } = machine.current_action() {
            prop_assert!(periods < 1 << params.min_be);
        } else {
            prop_assert!(false, "initial action must be a backoff");
        }

        for busy in outcomes {
            if finished {
                break;
            }
            let action = machine.on_cca(busy, &mut rng);
            prop_assert!(machine.backoff_exponent() >= params.min_be);
            prop_assert!(machine.backoff_exponent() <= params.max_be);
            prop_assert!(machine.busy_rounds() as u32 <= max_rounds);
            prop_assert!(machine.ccas_performed() <= max_rounds * params.cw as u32);
            match action {
                CsmaAction::BackoffThenCca { periods } => {
                    prop_assert!(periods < 1 << machine.backoff_exponent());
                }
                CsmaAction::Transmit | CsmaAction::Failure => finished = true,
                CsmaAction::CcaAgain => {}
            }
        }
    }

    /// An always-clear channel always transmits after exactly CW CCAs.
    #[test]
    fn clear_channel_always_transmits(params in arb_params(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let mut machine = SlottedCsmaCa::start(params, &mut rng);
        let mut last = machine.current_action();
        for _ in 0..params.cw {
            last = machine.on_cca(false, &mut rng);
        }
        prop_assert_eq!(last, CsmaAction::Transmit);
        prop_assert_eq!(machine.ccas_performed(), params.cw as u32);
    }

    /// An always-busy channel always fails after max_backoffs+1 rounds.
    #[test]
    fn busy_channel_always_fails(params in arb_params(), seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        let mut machine = SlottedCsmaCa::start(params, &mut rng);
        let mut rounds = 0u32;
        loop {
            match machine.on_cca(true, &mut rng) {
                CsmaAction::Failure => break,
                CsmaAction::BackoffThenCca { .. } => rounds += 1,
                other => prop_assert!(false, "unexpected action {other:?}"),
            }
        }
        prop_assert_eq!(rounds, params.max_backoffs as u32);
    }

    /// Beacon interval doubles exactly per order and is always a multiple
    /// of 15.36 ms.
    #[test]
    fn beacon_interval_arithmetic(bo in 0u8..=14) {
        let t = BeaconOrder::new(bo).unwrap().beacon_interval();
        let base = 15.36e-3;
        let expected = base * (1u64 << bo) as f64;
        prop_assert!((t.secs() - expected).abs() < 1e-12);
    }

    /// Valid superframe configurations roundtrip through the beacon wire
    /// format with arbitrary GTS and pending lists.
    #[test]
    fn beacon_payload_roundtrip(
        bo in 0u8..=14,
        so_delta in 0u8..=14,
        gts_count in 0usize..=7,
        pending in proptest::collection::vec(any::<u16>(), 0..=7),
    ) {
        let so = bo.saturating_sub(so_delta);
        let config = SuperframeConfig::new(bo, so, 0).unwrap();
        let mut payload = BeaconPayload::for_config(config);
        payload.gts = (0..gts_count)
            .map(|i| GtsDescriptor {
                short_address: i as u16 + 1,
                starting_slot: (15 - i) as u8,
                length: 1,
            })
            .collect();
        payload.pending_short = pending;
        let wire = payload.serialize();
        prop_assert_eq!(BeaconPayload::parse(&wire).unwrap(), payload);
    }

    /// The GTS registry never double-books slots and never exceeds seven
    /// descriptors, for any allocation/deallocation interleaving.
    #[test]
    fn gts_registry_consistent(
        ops in proptest::collection::vec((any::<u8>(), 1u8..4, any::<bool>()), 1..40)
    ) {
        let mut registry = GtsRegistry::new(8);
        for (device, len, dealloc) in ops {
            let device = device as u16 % 12;
            if dealloc {
                registry.deallocate(device);
            } else {
                let _ = registry.allocate(device, len);
            }
            // Invariants after every operation:
            let allocs = registry.allocations();
            prop_assert!(allocs.len() <= 7);
            // No overlapping slot ranges.
            for (i, a) in allocs.iter().enumerate() {
                prop_assert!(a.starting_slot >= 8, "CAP minimum violated");
                prop_assert!(a.starting_slot as u32 + a.length as u32 <= 16);
                for b in allocs.iter().skip(i + 1) {
                    let a_range = a.starting_slot..a.starting_slot + a.length;
                    let b_range = b.starting_slot..b.starting_slot + b.length;
                    prop_assert!(
                        a_range.end <= b_range.start || b_range.end <= a_range.start,
                        "overlap between {a:?} and {b:?}"
                    );
                }
            }
        }
    }

    /// CAP duration plus GTS slots always reconstructs the superframe.
    #[test]
    fn cap_plus_cfp_is_superframe(bo in 0u8..=14, gts in 0u8..=7) {
        let config = SuperframeConfig::new(bo, bo, gts).unwrap();
        let cap = config.cap_duration().secs();
        let cfp = config.slot_duration().secs() * gts as f64;
        let sd = config.superframe_duration().secs();
        prop_assert!((cap + cfp - sd).abs() < 1e-12);
    }
}
