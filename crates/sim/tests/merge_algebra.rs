//! Property tests for the statistics merge algebra (hand-rolled case
//! generation — `proptest` is not vendored in the offline build image):
//! for arbitrary sample sets and arbitrary shard boundaries,
//! `merge(split(xs)) == reduce(xs)`.

use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_phy::noise::UniformSource;
use wsn_radio::ledger::{EnergyLedger, PhaseTag};
use wsn_radio::{RadioModel, RadioState};
use wsn_sim::network::{NetworkConfig, TxPowerPolicy};
use wsn_sim::policy::{PolicyEngine, PolicyTrace, PolicyTraceAccumulator, StaticAllocation};
use wsn_sim::telemetry::{Hist, MetricSet};
use wsn_sim::scenario::{DeploymentSpec, Scenario};
use wsn_sim::{
    Accumulator, ChannelSimConfig, ContentionAccumulator, Counter, Extrema, NetworkAccumulator,
    NetworkSimulator, Runner, Xoshiro256StarStar,
};
use wsn_units::{DBm, Db, Seconds};

/// Splits `xs` at the given sorted cut points and reduces each shard
/// separately, then merges the shards left-to-right.
fn merge_accumulator_shards(xs: &[f64], cuts: &[usize]) -> Accumulator {
    let mut merged = Accumulator::new();
    let mut start = 0;
    for &cut in cuts.iter().chain(std::iter::once(&xs.len())) {
        let mut shard = Accumulator::new();
        for &x in &xs[start..cut] {
            shard.push(x);
        }
        merged.merge(&shard);
        start = cut;
    }
    merged
}

#[test]
fn accumulator_merge_of_random_splits_matches_single_pass() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA11E);
    for case in 0..200 {
        let n = 1 + rng.index(400);
        // Mix of scales, including a large common offset (the regime where
        // naive sum-of-squares merging loses precision).
        let offset = if case % 3 == 0 { 1e9 } else { 0.0 };
        let xs: Vec<f64> = (0..n)
            .map(|_| offset + rng.next_f64() * 1e4 - 5e3)
            .collect();

        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }

        // Random shard boundaries (possibly empty shards).
        let n_cuts = rng.index(5);
        let mut cuts: Vec<usize> = (0..n_cuts).map(|_| rng.index(n + 1)).collect();
        cuts.sort_unstable();
        let merged = merge_accumulator_shards(&xs, &cuts);

        assert_eq!(merged.count(), whole.count(), "case {case}");
        let scale = whole.mean().abs().max(1.0);
        assert!(
            (merged.mean() - whole.mean()).abs() / scale < 1e-12,
            "case {case}: mean {} vs {}",
            merged.mean(),
            whole.mean()
        );
        let vscale = whole.population_variance().abs().max(1.0);
        assert!(
            (merged.population_variance() - whole.population_variance()).abs() / vscale < 1e-9,
            "case {case}: var {} vs {}",
            merged.population_variance(),
            whole.population_variance()
        );
    }
}

#[test]
fn accumulator_merge_is_associative_up_to_rounding() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA550C);
    for case in 0..100 {
        let shards: Vec<Accumulator> = (0..4)
            .map(|_| {
                let mut acc = Accumulator::new();
                for _ in 0..rng.index(50) {
                    acc.push(rng.next_f64() * 100.0);
                }
                acc
            })
            .collect();
        // ((a·b)·c)·d versus (a·b)·(c·d)
        let mut left = shards[0];
        for s in &shards[1..] {
            left.merge(s);
        }
        let mut ab = shards[0];
        ab.merge(&shards[1]);
        let mut cd = shards[2];
        cd.merge(&shards[3]);
        ab.merge(&cd);
        assert_eq!(left.count(), ab.count(), "case {case}");
        assert!((left.mean() - ab.mean()).abs() < 1e-9, "case {case}");
        assert!(
            (left.population_variance() - ab.population_variance()).abs() < 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn counter_merge_of_random_splits_is_exact() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0DE);
    for case in 0..200 {
        let n = rng.index(500);
        let hits: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.3)).collect();

        let mut whole = Counter::new();
        for &h in &hits {
            whole.observe(h);
        }

        let cut = if n == 0 { 0 } else { rng.index(n + 1) };
        let (mut a, mut b) = (Counter::new(), Counter::new());
        for &h in &hits[..cut] {
            a.observe(h);
        }
        for &h in &hits[cut..] {
            b.observe(h);
        }
        a.merge(&b);

        // Counters are integer state: the merge is exact, not approximate.
        assert_eq!(a.hits(), whole.hits(), "case {case}");
        assert_eq!(a.trials(), whole.trials(), "case {case}");
        assert_eq!(a.ratio(), whole.ratio(), "case {case}");
    }
}

#[test]
fn energy_ledger_sharded_merge_matches_single_ledger() {
    // Accruing a random event stream into one ledger equals accruing its
    // shards into separate ledgers and merging — the property that lets
    // per-node and per-channel ledgers combine into population ledgers.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x1ED6E5);
    let radio = RadioModel::cc2420();
    for case in 0..50 {
        let n = 1 + rng.index(200);
        let shards = 1 + rng.index(4);
        let mut whole = EnergyLedger::new();
        let mut parts = vec![EnergyLedger::new(); shards];
        for _ in 0..n {
            let which = rng.index(shards);
            let state = match rng.index(4) {
                0 => RadioState::Shutdown,
                1 => RadioState::Idle,
                2 => RadioState::Rx,
                _ => RadioState::Idle,
            };
            let phase = PhaseTag::ALL[rng.index(PhaseTag::ALL.len())];
            let duration = Seconds::from_micros(rng.next_f64() * 1e3);
            whole.accrue(&radio, state, phase, duration);
            parts[which].accrue(&radio, state, phase, duration);
        }
        let mut merged = EnergyLedger::new();
        for p in &parts {
            merged.merge(p);
        }
        assert!(
            (merged.total_energy().joules() - whole.total_energy().joules()).abs() < 1e-15,
            "case {case}: energy"
        );
        assert!(
            (merged.total_time().secs() - whole.total_time().secs()).abs() < 1e-12,
            "case {case}: time"
        );
        for phase in PhaseTag::ALL {
            assert!(
                (merged.energy_in_phase(phase).joules() - whole.energy_in_phase(phase).joules())
                    .abs()
                    < 1e-15,
                "case {case}: phase {phase}"
            );
        }
    }
}

fn small_network(nodes: usize, seed: u64) -> NetworkConfig {
    let mut channel = ChannelSimConfig::figure6(120, 0.4, seed);
    channel.nodes = nodes;
    channel.superframes = 5;
    NetworkConfig {
        path_losses: (0..nodes)
            .map(|i| Db::new(60.0 + 30.0 * i as f64 / nodes.max(1) as f64))
            .collect(),
        channel,
        radio: RadioModel::cc2420(),
        tx_policy: TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(-88.0),
        },
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    }
}

#[test]
fn network_accumulator_channel_merge_pools_exactly() {
    // Three "channels" merged into one accumulator: counts, ledgers and
    // delivered bits add exactly; pooled means are the sample-weighted
    // combination.
    let ber = EmpiricalCc2420Ber::paper();
    let accs: Vec<NetworkAccumulator> = (0..3u64)
        .map(|c| NetworkSimulator::new(small_network(12, 0xC0FFEE + c)).run_accumulate(&ber))
        .collect();
    let mut merged = NetworkAccumulator::new();
    for a in &accs {
        merged.merge(a);
    }
    assert_eq!(
        merged.failures.trials(),
        accs.iter().map(|a| a.failures.trials()).sum::<u64>()
    );
    assert_eq!(
        merged.node_power_uw.count(),
        accs.iter().map(|a| a.node_power_uw.count()).sum::<u64>()
    );
    assert_eq!(merged.node_powers.len(), 36);
    let energy_sum: f64 = accs.iter().map(|a| a.ledger.total_energy().joules()).sum();
    assert!((merged.ledger.total_energy().joules() - energy_sum).abs() < 1e-15);
    let bits_sum: f64 = accs.iter().map(|a| a.delivered_payload_bits).sum();
    assert_eq!(merged.delivered_payload_bits, bits_sum);
    // Merge order of replication-less accumulators leaves reps at zero
    // until sealed.
    assert_eq!(merged.replications(), 0);
}

#[test]
fn network_accumulator_merge_is_split_invariant() {
    // Merging (a·b)·c equals a·(b·c) exactly for the integer state and to
    // rounding for the floating accumulators.
    let ber = EmpiricalCc2420Ber::paper();
    let accs: Vec<NetworkAccumulator> = (0..3u64)
        .map(|c| NetworkSimulator::new(small_network(10, 0xAB + c)).run_accumulate(&ber))
        .collect();
    let mut left = accs[0].clone();
    left.merge(&accs[1]);
    left.merge(&accs[2]);
    let mut right_tail = accs[1].clone();
    right_tail.merge(&accs[2]);
    let mut right = accs[0].clone();
    right.merge(&right_tail);
    assert_eq!(left.failures, right.failures);
    assert_eq!(left.overruns, right.overruns);
    assert!((left.node_power_uw.mean() - right.node_power_uw.mean()).abs() < 1e-9);
    assert!((left.attempts.mean() - right.attempts.mean()).abs() < 1e-9);
    let ls = left.summary();
    let rs = right.summary();
    assert!((ls.mean_node_power.microwatts() - rs.mean_node_power.microwatts()).abs() < 1e-9);
    assert_eq!(ls.failure_ratio, rs.failure_ratio);
}

#[test]
fn cfp_counters_merge_exactly() {
    // CFP-carrying accumulators: GTS/downlink counters, denied counts and
    // the CAP/CFP power splits all pool exactly across shards.
    let ber = EmpiricalCc2420Ber::paper();
    let accs: Vec<NetworkAccumulator> = (0..3u64)
        .map(|c| {
            let mut cfg = small_network(12, 0xCF9 + c);
            cfg.channel.cfp = wsn_sim::plan_channel_cfp(cfg.channel.nodes as u32, 12, 1, 8, 0.5);
            NetworkSimulator::new(cfg).run_accumulate(&ber)
        })
        .collect();
    let mut merged = NetworkAccumulator::new();
    for a in &accs {
        merged.merge(a);
    }
    assert_eq!(
        merged.gts_failures.trials(),
        accs.iter().map(|a| a.gts_failures.trials()).sum::<u64>()
    );
    assert!(
        merged.gts_failures.trials() > 0,
        "the probe carried GTS traffic"
    );
    assert_eq!(merged.gts_denied, 15, "5 denied per shard, summed");
    assert_eq!(
        merged.downlink_failures.trials(),
        accs.iter()
            .map(|a| a.downlink_failures.trials())
            .sum::<u64>()
    );
    assert_eq!(
        merged.downlink_deferred,
        accs.iter().map(|a| a.downlink_deferred).sum::<u64>()
    );
    assert_eq!(
        merged.cap_uw.count(),
        accs.iter().map(|a| a.cap_uw.count()).sum::<u64>()
    );
    assert_eq!(
        merged.cfp_uw.count(),
        accs.iter().map(|a| a.cfp_uw.count()).sum::<u64>()
    );
    // Sealing after the merge records one replication over the pooled
    // splits.
    merged.seal_replication();
    let summary = merged.summary();
    assert_eq!(summary.gts_denied, 15);
    assert!(summary.cfp_power.microwatts() > 0.0);
    assert!(summary.cap_power.microwatts() > 0.0);
}

#[test]
fn fault_counters_merge_exactly() {
    // Fault-carrying accumulators: deaths, orphan scans, join outcomes and
    // the re-association latency accumulator all pool exactly across
    // shards, in any merge order.
    let ber = EmpiricalCc2420Ber::paper();
    let accs: Vec<NetworkAccumulator> = (0..3u64)
        .map(|c| {
            let mut cfg = small_network(12, 0xFA17 + c);
            cfg.channel.superframes = 8;
            cfg.channel.faults = wsn_sim::FaultPlan::inert()
                .with_churn(0.06, 1, 1)
                .with_outages(0.12, 1);
            NetworkSimulator::new(cfg).run_accumulate(&ber)
        })
        .collect();
    let mut merged = NetworkAccumulator::new();
    for a in &accs {
        merged.merge(a);
    }
    assert_eq!(merged.deaths, accs.iter().map(|a| a.deaths).sum::<u64>());
    assert!(merged.deaths > 0, "the probe actually churned");
    assert_eq!(
        merged.orphan_scans,
        accs.iter().map(|a| a.orphan_scans).sum::<u64>()
    );
    assert_eq!(
        merged.join_failures.trials(),
        accs.iter().map(|a| a.join_failures.trials()).sum::<u64>()
    );
    assert_eq!(
        merged.join_failures.hits(),
        accs.iter().map(|a| a.join_failures.hits()).sum::<u64>()
    );
    assert_eq!(
        merged.reassoc_delay_secs.count(),
        accs.iter()
            .map(|a| a.reassoc_delay_secs.count())
            .sum::<u64>()
    );
    assert_eq!(
        merged.dormant_nodes,
        accs.iter().map(|a| a.dormant_nodes).sum::<u64>()
    );
    // Integer state makes the merge order-invariant; the latency mean is
    // the same pooled mean either way.
    let mut rev = NetworkAccumulator::new();
    for a in accs.iter().rev() {
        rev.merge(a);
    }
    assert_eq!(rev.deaths, merged.deaths);
    assert_eq!(rev.join_failures, merged.join_failures);
    assert!((rev.reassoc_delay_secs.mean() - merged.reassoc_delay_secs.mean()).abs() < 1e-12);
    // Orphan scans and re-association exchanges bill a distinct ledger
    // phase, pooled like every other phase.
    assert!(
        merged
            .ledger
            .energy_in_phase(PhaseTag::Association)
            .joules()
            > 0.0,
        "churn must charge the Association phase"
    );
    // The summary surfaces the pooled fault statistics.
    merged.seal_replication();
    let summary = merged.summary();
    assert_eq!(summary.deaths, accs.iter().map(|a| a.deaths).sum::<u64>());
    assert_eq!(summary.join_attempts, merged.join_failures.trials());
    assert!(summary.energy_per_delivered_packet_uj.is_finite());
}

#[test]
fn sharded_energy_accounting_is_bit_identical_at_1_3_7_shards() {
    // The spatial-shard path must reproduce the serial accounting bit for
    // bit at every shard count — the single-channel analogue of the
    // runner's thread-count contract. The probe carries CAP, CFP (GTS +
    // downlink) and fault traffic so every record kind crosses the
    // engine→shard relay.
    let ber = EmpiricalCc2420Ber::paper();
    let mut cfg = small_network(30, 0x5AAD);
    cfg.channel.superframes = 8;
    cfg.channel.cfp = wsn_sim::plan_channel_cfp(cfg.channel.nodes as u32, 12, 1, 8, 0.5);
    cfg.channel.faults = wsn_sim::FaultPlan::inert()
        .with_churn(0.06, 1, 1)
        .with_outages(0.12, 1);
    let sim = NetworkSimulator::new(cfg);
    let mut reference = sim.run_accumulate(&ber);
    reference.seal_replication();
    let want = reference.summary();
    assert!(want.deaths > 0, "the probe actually churned");
    assert!(want.gts_transactions > 0, "the probe carried GTS traffic");

    for shards in [1usize, 3, 7] {
        let mut acc = sim.run_accumulate_sharded(&ber, shards);
        acc.seal_replication();
        let got = acc.summary();
        assert_eq!(
            got.mean_node_power.microwatts().to_bits(),
            want.mean_node_power.microwatts().to_bits(),
            "shards {shards}: mean power"
        );
        assert_eq!(got.node_powers.len(), want.node_powers.len());
        for (i, (a, b)) in got.node_powers.iter().zip(&want.node_powers).enumerate() {
            assert_eq!(
                a.microwatts().to_bits(),
                b.microwatts().to_bits(),
                "shards {shards}: node {i} power"
            );
        }
        assert_eq!(
            got.ledger.total_energy().joules().to_bits(),
            want.ledger.total_energy().joules().to_bits(),
            "shards {shards}: total energy"
        );
        for phase in PhaseTag::ALL {
            assert_eq!(
                got.ledger.energy_in_phase(phase).joules().to_bits(),
                want.ledger.energy_in_phase(phase).joules().to_bits(),
                "shards {shards}: phase {phase}"
            );
        }
        assert_eq!(got.failure_ratio, want.failure_ratio, "shards {shards}");
        assert_eq!(got.transactions, want.transactions, "shards {shards}");
        assert_eq!(
            got.mean_delay.secs().to_bits(),
            want.mean_delay.secs().to_bits(),
            "shards {shards}: delay"
        );
        assert_eq!(
            got.cap_power.microwatts().to_bits(),
            want.cap_power.microwatts().to_bits(),
            "shards {shards}: CAP power"
        );
        assert_eq!(
            got.cfp_power.microwatts().to_bits(),
            want.cfp_power.microwatts().to_bits(),
            "shards {shards}: CFP power"
        );
        assert_eq!(
            got.gts_failure_ratio, want.gts_failure_ratio,
            "shards {shards}"
        );
        assert_eq!(got.deaths, want.deaths, "shards {shards}");
        assert_eq!(got.orphan_scans, want.orphan_scans, "shards {shards}");
        assert_eq!(got.join_attempts, want.join_attempts, "shards {shards}");
        assert_eq!(
            got.energy_per_bit_nj.to_bits(),
            want.energy_per_bit_nj.to_bits(),
            "shards {shards}: energy/bit"
        );
    }
}

#[test]
fn sealed_replications_drive_the_standard_errors() {
    let ber = EmpiricalCc2420Ber::paper();
    let mut total = NetworkAccumulator::new();
    for r in 0..4u64 {
        let mut shard = NetworkSimulator::new(small_network(10, 0x5EA1 + r)).run_accumulate(&ber);
        shard.seal_replication();
        total.merge(&shard);
    }
    assert_eq!(total.replications(), 4);
    let summary = total.summary();
    assert_eq!(summary.replications, 4);
    // Four distinct seeds → nonzero spread across replication means.
    assert!(summary.power_standard_error.microwatts() > 0.0);
    // The replication-level mean of means equals the pooled mean (equal
    // shard sizes).
    assert!((total.rep_power_uw.mean() - total.node_power_uw.mean()).abs() < 1e-9);
}

#[test]
fn extrema_merge_of_random_splits_is_exact() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xE87);
    for case in 0..200 {
        let n = 1 + rng.index(300);
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2e3 - 1e3).collect();

        let mut whole = Extrema::new();
        for &x in &xs {
            whole.push(x);
        }

        let cut = rng.index(n + 1);
        let (mut a, mut b) = (Extrema::new(), Extrema::new());
        for &x in &xs[..cut] {
            a.push(x);
        }
        for &x in &xs[cut..] {
            b.push(x);
        }
        a.merge(&b);

        // Min/max are associative: the merge is exact, not approximate.
        assert_eq!(a.count(), whole.count(), "case {case}");
        assert_eq!(a.min(), whole.min(), "case {case}");
        assert_eq!(a.max(), whole.max(), "case {case}");
    }
}

#[test]
fn empty_extrema_merge_is_identity() {
    let mut acc = Extrema::new();
    acc.push(4.0);
    let before = acc;
    acc.merge(&Extrema::new());
    assert_eq!(acc, before);
    let mut empty = Extrema::new();
    empty.merge(&before);
    assert_eq!(empty, before);
}

fn policy_traces() -> Vec<PolicyTrace> {
    let base = Scenario::new(
        "merge probe",
        3,
        8,
        DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 88.0,
        },
    )
    .with_superframes(4);
    (0..4u64)
        .map(|seed| {
            let engine = PolicyEngine::new(base.clone().with_seed(0x7A11 + seed))
                .with_rounds(3)
                .run_all_rounds();
            engine.run(&Runner::serial(), &mut StaticAllocation)
        })
        .collect()
}

#[test]
fn policy_trace_accumulator_split_merge_matches_reduce() {
    let traces = policy_traces();

    let mut whole = PolicyTraceAccumulator::new();
    for trace in &traces {
        whole.record(trace);
    }

    for cut in 0..=traces.len() {
        let (mut a, mut b) = (PolicyTraceAccumulator::new(), PolicyTraceAccumulator::new());
        for trace in &traces[..cut] {
            a.record(trace);
        }
        for trace in &traces[cut..] {
            b.record(trace);
        }
        a.merge(&b);

        assert_eq!(a.traces, whole.traces, "cut {cut}");
        assert_eq!(a.converged, whole.converged, "cut {cut}");
        assert_eq!(a.rounds.len(), whole.rounds.len(), "cut {cut}");
        assert_eq!(
            a.rounds_to_stabilize.count(),
            whole.rounds_to_stabilize.count(),
            "cut {cut}"
        );
        for (r, (ma, mw)) in a.rounds.iter().zip(&whole.rounds).enumerate() {
            assert_eq!(ma.moved, mw.moved, "cut {cut} round {r}");
            assert_eq!(
                ma.worst_failure.count(),
                mw.worst_failure.count(),
                "cut {cut} round {r}"
            );
            // Extrema are exact under any split.
            assert_eq!(
                ma.worst_failure_extrema, mw.worst_failure_extrema,
                "cut {cut} round {r}"
            );
            assert!(
                (ma.worst_failure.mean() - mw.worst_failure.mean()).abs() < 1e-12,
                "cut {cut} round {r}: worst-failure mean"
            );
            assert!(
                (ma.power_uw.mean() - mw.power_uw.mean()).abs() < 1e-9,
                "cut {cut} round {r}: power mean"
            );
            assert!(
                (ma.energy_j.mean() - mw.energy_j.mean()).abs() < 1e-12,
                "cut {cut} round {r}: energy mean"
            );
        }
    }
}

#[test]
fn policy_trace_accumulator_aligns_unequal_trace_lengths() {
    let traces = policy_traces();
    // Truncate one trace to exercise the round-index alignment.
    let mut short = traces[0].clone();
    short.rounds.truncate(1);

    let mut acc = PolicyTraceAccumulator::new();
    acc.record(&short);
    acc.record(&traces[1]);
    assert_eq!(acc.rounds.len(), traces[1].rounds.len());
    assert_eq!(acc.rounds[0].worst_failure.count(), 2);
    assert_eq!(acc.rounds[1].worst_failure.count(), 1);

    // Merging in the other order gives the same shape.
    let (mut x, mut y) = (PolicyTraceAccumulator::new(), PolicyTraceAccumulator::new());
    x.record(&traces[1]);
    y.record(&short);
    x.merge(&y);
    assert_eq!(x.rounds.len(), acc.rounds.len());
    assert_eq!(
        x.rounds[0].worst_failure_extrema,
        acc.rounds[0].worst_failure_extrema
    );
}

#[test]
fn contention_accumulator_split_merge_matches_reduce() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x57A7);
    for case in 0..50 {
        let n = 1 + rng.index(300);
        let cut = rng.index(n + 1);
        let mut whole = ContentionAccumulator::new();
        let (mut a, mut b) = (ContentionAccumulator::new(), ContentionAccumulator::new());
        for i in 0..n {
            let part = if i < cut { &mut a } else { &mut b };
            let cont = rng.next_f64() * 1e4;
            let ccas = 1.0 + rng.index(10) as f64;
            let fail = rng.bernoulli(0.1);
            let collided = rng.bernoulli(0.2);
            for acc in [&mut whole, part] {
                acc.contention_us.push(cont);
                acc.ccas.push(ccas);
                acc.access_failures.observe(fail);
                if !fail {
                    acc.collisions.observe(collided);
                }
            }
        }
        a.merge(&b);
        let merged = a.finish();
        let direct = whole.finish();
        assert_eq!(merged.procedures, direct.procedures, "case {case}");
        assert_eq!(merged.transmissions, direct.transmissions, "case {case}");
        assert_eq!(merged.pr_collision, direct.pr_collision, "case {case}");
        assert_eq!(
            merged.pr_access_failure, direct.pr_access_failure,
            "case {case}"
        );
        assert!(
            (merged.mean_ccas - direct.mean_ccas).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (merged.mean_contention.micros() - direct.mean_contention.micros()).abs() < 1e-6,
            "case {case}"
        );
    }
}

// --- telemetry merge algebra -------------------------------------------

/// A pseudo-random telemetry shard: every counter, gauge and histogram
/// field gets data, so a merge bug in any single field fails the
/// properties below.
fn random_metric_shard(rng: &mut Xoshiro256StarStar) -> MetricSet {
    let mut m = MetricSet::NEW;
    for _ in 0..(1 + rng.index(30)) {
        m.engine.runs += 1;
        m.engine.events += rng.next_u64() % 1_000;
        m.engine.ev_beacon += rng.next_u64() % 16;
        m.engine.ev_arrival += rng.next_u64() % 256;
        m.engine.ev_cca += rng.next_u64() % 256;
        m.engine.ev_tx_end += rng.next_u64() % 256;
        m.engine.ev_gts += rng.next_u64() % 16;
        m.engine.ev_dl_poll += rng.next_u64() % 16;
        m.engine.attempts_delivered += rng.next_u64() % 64;
        m.engine.attempts_collided += rng.next_u64() % 64;
        m.engine.attempts_corrupted += rng.next_u64() % 8;
        m.engine.attempts_access_failure += rng.next_u64() % 8;
        m.engine.transactions += rng.next_u64() % 64;
        m.engine.transactions_delivered += rng.next_u64() % 64;
        m.engine.queue_pushes += rng.next_u64() % 2_048;
        m.engine.queue_pops += rng.next_u64() % 2_048;
        // Histogram samples across the whole bucket range, including 0.
        m.engine.queue_skip_slots.record(rng.next_u64() >> rng.index(64));
        m.engine.cohort_size.record(rng.next_u64() % 128);
        m.engine.ccas_per_attempt.record(rng.next_u64() % 8);
        m.engine.contention_slots.record(rng.next_u64() % 4_096);
        m.engine.attempts_per_transaction.record(rng.next_u64() % 6);
        m.runner.jobs += rng.next_u64() % 64;
        m.policy.rounds += 1;
        m.policy.moves += rng.next_u64() % 32;
        m.policy.moves_per_round.record(rng.next_u64() % 32);
        m.policy.convergence_delta_permille.record(rng.next_u64() % 1_000);
        m.farm.total_scenarios = m.farm.total_scenarios.max(rng.next_u64() % 512);
        m.farm.ok += rng.next_u64() % 16;
        m.farm.failed += rng.next_u64() % 4;
        m.farm.timeout += rng.next_u64() % 2;
        m.farm.skipped += rng.next_u64() % 4;
        m.farm.retries += rng.next_u64() % 4;
    }
    m
}

/// Worker scheduling must never show up in the deterministic metric
/// section: merging the same shards in any order (and any grouping)
/// yields the identical `MetricSet`.
#[test]
fn telemetry_shard_merge_is_order_invariant_and_associative() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x7E1E);
    for case in 0..100 {
        let shards: Vec<MetricSet> = (0..2 + rng.index(5))
            .map(|_| random_metric_shard(&mut rng))
            .collect();

        let mut forward = MetricSet::NEW;
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = MetricSet::NEW;
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        assert_eq!(forward, reverse, "case {case}: merge order leaked");

        // Arbitrary grouping: fold a random prefix into one sub-total,
        // the rest into another, then combine — associativity.
        let cut = rng.index(shards.len() + 1);
        let (mut left, mut right) = (MetricSet::NEW, MetricSet::NEW);
        for s in &shards[..cut] {
            left.merge(s);
        }
        for s in &shards[cut..] {
            right.merge(s);
        }
        left.merge(&right);
        assert_eq!(forward, left, "case {case}: grouping leaked");
    }
}

/// `Hist` split-merge equals the single-pass histogram for arbitrary
/// samples and arbitrary shard boundaries (the same property the stats
/// accumulators guarantee).
#[test]
fn telemetry_hist_merge_of_random_splits_matches_single_pass() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xB0C4);
    for case in 0..200 {
        let n = 1 + rng.index(500);
        // Spread samples over the full bucket range, zeros included
        // (a 64-bit shift yields the zero sample; checked_shr keeps the
        // debug build from tripping the shift-overflow panic).
        let xs: Vec<u64> = (0..n)
            .map(|_| {
                let sample = rng.next_u64();
                sample.checked_shr(rng.index(65) as u32).unwrap_or(0)
            })
            .collect();

        let mut whole = Hist::NEW;
        for &x in &xs {
            whole.record(x);
        }

        let n_cuts = rng.index(6);
        let mut cuts: Vec<usize> = (0..n_cuts).map(|_| rng.index(n + 1)).collect();
        cuts.sort_unstable();

        let mut merged = Hist::NEW;
        let mut start = 0;
        for &cut in cuts.iter().chain(std::iter::once(&n)) {
            let mut shard = Hist::NEW;
            for &x in &xs[start..cut] {
                shard.record(x);
            }
            merged.merge(&shard);
            start = cut;
        }
        assert_eq!(merged, whole, "case {case}");
    }
}

/// The merge identity: folding in an empty shard changes nothing, so
/// workers that never ran a job cannot perturb the totals.
#[test]
fn telemetry_empty_shard_is_the_merge_identity() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x1DE4);
    let shard = random_metric_shard(&mut rng);
    let mut merged = shard.clone();
    merged.merge(&MetricSet::NEW);
    assert_eq!(merged, shard);
    let mut from_empty = MetricSet::NEW;
    from_empty.merge(&shard);
    assert_eq!(from_empty, shard);
}
