//! Property tests for the statistics merge algebra (hand-rolled case
//! generation — `proptest` is not vendored in the offline build image):
//! for arbitrary sample sets and arbitrary shard boundaries,
//! `merge(split(xs)) == reduce(xs)`.

use wsn_phy::noise::UniformSource;
use wsn_sim::{Accumulator, ContentionAccumulator, Counter, Xoshiro256StarStar};

/// Splits `xs` at the given sorted cut points and reduces each shard
/// separately, then merges the shards left-to-right.
fn merge_accumulator_shards(xs: &[f64], cuts: &[usize]) -> Accumulator {
    let mut merged = Accumulator::new();
    let mut start = 0;
    for &cut in cuts.iter().chain(std::iter::once(&xs.len())) {
        let mut shard = Accumulator::new();
        for &x in &xs[start..cut] {
            shard.push(x);
        }
        merged.merge(&shard);
        start = cut;
    }
    merged
}

#[test]
fn accumulator_merge_of_random_splits_matches_single_pass() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA11E);
    for case in 0..200 {
        let n = 1 + rng.index(400);
        // Mix of scales, including a large common offset (the regime where
        // naive sum-of-squares merging loses precision).
        let offset = if case % 3 == 0 { 1e9 } else { 0.0 };
        let xs: Vec<f64> = (0..n)
            .map(|_| offset + rng.next_f64() * 1e4 - 5e3)
            .collect();

        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }

        // Random shard boundaries (possibly empty shards).
        let n_cuts = rng.index(5);
        let mut cuts: Vec<usize> = (0..n_cuts).map(|_| rng.index(n + 1)).collect();
        cuts.sort_unstable();
        let merged = merge_accumulator_shards(&xs, &cuts);

        assert_eq!(merged.count(), whole.count(), "case {case}");
        let scale = whole.mean().abs().max(1.0);
        assert!(
            (merged.mean() - whole.mean()).abs() / scale < 1e-12,
            "case {case}: mean {} vs {}",
            merged.mean(),
            whole.mean()
        );
        let vscale = whole.population_variance().abs().max(1.0);
        assert!(
            (merged.population_variance() - whole.population_variance()).abs() / vscale < 1e-9,
            "case {case}: var {} vs {}",
            merged.population_variance(),
            whole.population_variance()
        );
    }
}

#[test]
fn accumulator_merge_is_associative_up_to_rounding() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xA550C);
    for case in 0..100 {
        let shards: Vec<Accumulator> = (0..4)
            .map(|_| {
                let mut acc = Accumulator::new();
                for _ in 0..rng.index(50) {
                    acc.push(rng.next_f64() * 100.0);
                }
                acc
            })
            .collect();
        // ((a·b)·c)·d versus (a·b)·(c·d)
        let mut left = shards[0];
        for s in &shards[1..] {
            left.merge(s);
        }
        let mut ab = shards[0];
        ab.merge(&shards[1]);
        let mut cd = shards[2];
        cd.merge(&shards[3]);
        ab.merge(&cd);
        assert_eq!(left.count(), ab.count(), "case {case}");
        assert!((left.mean() - ab.mean()).abs() < 1e-9, "case {case}");
        assert!(
            (left.population_variance() - ab.population_variance()).abs() < 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn counter_merge_of_random_splits_is_exact() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0DE);
    for case in 0..200 {
        let n = rng.index(500);
        let hits: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.3)).collect();

        let mut whole = Counter::new();
        for &h in &hits {
            whole.observe(h);
        }

        let cut = if n == 0 { 0 } else { rng.index(n + 1) };
        let (mut a, mut b) = (Counter::new(), Counter::new());
        for &h in &hits[..cut] {
            a.observe(h);
        }
        for &h in &hits[cut..] {
            b.observe(h);
        }
        a.merge(&b);

        // Counters are integer state: the merge is exact, not approximate.
        assert_eq!(a.hits(), whole.hits(), "case {case}");
        assert_eq!(a.trials(), whole.trials(), "case {case}");
        assert_eq!(a.ratio(), whole.ratio(), "case {case}");
    }
}

#[test]
fn contention_accumulator_split_merge_matches_reduce() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x57A7);
    for case in 0..50 {
        let n = 1 + rng.index(300);
        let cut = rng.index(n + 1);
        let mut whole = ContentionAccumulator::new();
        let (mut a, mut b) = (ContentionAccumulator::new(), ContentionAccumulator::new());
        for i in 0..n {
            let part = if i < cut { &mut a } else { &mut b };
            let cont = rng.next_f64() * 1e4;
            let ccas = 1.0 + rng.index(10) as f64;
            let fail = rng.bernoulli(0.1);
            let collided = rng.bernoulli(0.2);
            for acc in [&mut whole, part] {
                acc.contention_us.push(cont);
                acc.ccas.push(ccas);
                acc.access_failures.observe(fail);
                if !fail {
                    acc.collisions.observe(collided);
                }
            }
        }
        a.merge(&b);
        let merged = a.finish();
        let direct = whole.finish();
        assert_eq!(merged.procedures, direct.procedures, "case {case}");
        assert_eq!(merged.transmissions, direct.transmissions, "case {case}");
        assert_eq!(merged.pr_collision, direct.pr_collision, "case {case}");
        assert_eq!(
            merged.pr_access_failure, direct.pr_access_failure,
            "case {case}"
        );
        assert!(
            (merged.mean_ccas - direct.mean_ccas).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (merged.mean_contention.micros() - direct.mean_contention.micros()).abs() < 1e-6,
            "case {case}"
        );
    }
}
