//! The batch farm's fault-tolerance contract, end to end:
//!
//! * **kill and resume** — a run killed mid-farm (torn journal tail, torn
//!   output tail) resumes from its journal, and the concatenated record
//!   stream is bit-identical (modulo per-record wall-clock) to an
//!   uninterrupted run over the committed fixture set;
//! * **flaky TCP sink** — an in-process listener that drops the
//!   connection every N lines still receives every record at least once
//!   (ack mode), through seeded-backoff reconnects;
//! * **overflow queue** — with the peer down the farm never blocks:
//!   records spill to the on-disk queue and drain, in order, once the
//!   peer returns.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use wsn_sim::scenario::{DeploymentSpec, Scenario};
use wsn_sim::{
    load_journal, repair_jsonl_tail, BatchEntry, BatchSet, ResultSink, RunConfig, Runner,
    SavedScenario, TcpSink, WriteSink,
};

/// The committed fixture directory at the repository root.
fn fixture_batch() -> BatchSet {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    BatchSet::load_dir(&dir).expect("the committed fixture directory loads")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wsn_resilience_{tag}_{}", std::process::id()))
}

/// A cheap open-loop entry for the sink tests (the fixture set is
/// reserved for the resume test, which needs the committed files).
fn tiny_entry(name: &str, seed: u64) -> BatchEntry {
    let scenario = Scenario::new(
        name,
        2,
        8,
        DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        },
    )
    .with_superframes(3)
    .with_replications(2)
    .with_seed(seed);
    BatchEntry {
        name: name.to_string(),
        path: PathBuf::from(format!("{name}.json")),
        saved: SavedScenario::open_loop(scenario),
    }
}

/// Drops the per-record wall-clock field — the only nondeterministic
/// bytes in a scenario record.
fn strip_job_ms(line: &str) -> String {
    let start = line.find("\"job_ms\":").expect("record carries job_ms");
    let end = start + line[start..].find(',').expect("job_ms is not last") + 1;
    format!("{}{}", &line[..start], &line[end..])
}

/// Scenario record lines of a captured sink (everything but the final
/// aggregate line), wall-clock stripped.
fn record_lines(text: &str) -> Vec<String> {
    text.lines()
        .filter(|l| !l.contains("\"aggregate\":true"))
        .map(strip_job_ms)
        .collect()
}

/// The committed-fixture kill-and-resume contract: tear both the journal
/// and the output file mid-record (what a `kill -9` under a buffered
/// writer leaves behind), repair, resume — and the deduplicated
/// concatenation of surviving + resumed records is bit-identical to an
/// uninterrupted run.
#[test]
fn killed_and_resumed_fixture_batch_matches_an_uninterrupted_run() {
    let set = fixture_batch();
    assert_eq!(set.entries().len(), 6, "the committed fixture set");
    let runner = Runner::with_threads(2);
    let journal_path = temp_path("resume_journal");
    let output_path = temp_path("resume_output");
    let _ = std::fs::remove_file(&journal_path);

    // Reference: the uninterrupted run.
    let mut reference_sink = WriteSink::new(Vec::new());
    let clean = set
        .run_with(&runner, &mut reference_sink, &RunConfig::default())
        .unwrap();
    assert!(clean.all_ok());
    let reference: BTreeSet<String> = record_lines(
        std::str::from_utf8(&reference_sink.into_inner()).unwrap(),
    )
    .into_iter()
    .collect();
    assert_eq!(reference.len(), 6);

    // First leg: run with a journal, then simulate the kill. The journal
    // is fsync'd per record, so it tears mid-append of record 4; the
    // output rides a buffered writer, so an arbitrary byte prefix is on
    // disk — here 4 full lines plus half of line 5.
    let mut first_sink = WriteSink::new(Vec::new());
    let config = RunConfig {
        journal: Some(journal_path.clone()),
        ..RunConfig::default()
    };
    set.run_with(&runner, &mut first_sink, &config).unwrap();
    let first_text = String::from_utf8(first_sink.into_inner()).unwrap();
    let first_lines: Vec<&str> = first_text.lines().collect();
    let torn_output = format!(
        "{}\n{}",
        first_lines[..4].join("\n"),
        &first_lines[4][..first_lines[4].len() / 2]
    );
    std::fs::write(&output_path, torn_output).unwrap();

    let journal_text = std::fs::read_to_string(&journal_path).unwrap();
    let journal_lines: Vec<&str> = journal_text.lines().collect();
    assert_eq!(journal_lines.len(), 6);
    let torn_journal = format!(
        "{}\n{}",
        journal_lines[..3].join("\n"),
        &journal_lines[3][..journal_lines[3].len() / 2]
    );
    std::fs::write(&journal_path, torn_journal).unwrap();

    // Second leg: repair the torn output tail (what `batch_run --resume
    // --out` does) and resume from the journal. Three scenarios are
    // journaled `ok` and skip; the torn fourth and the never-run tail
    // re-run.
    let dropped = repair_jsonl_tail(&output_path).unwrap();
    assert!(dropped > 0, "the torn output line is dropped");
    let mut resume_sink = WriteSink::new(Vec::new());
    let resume_config = RunConfig {
        resume: true,
        ..config
    };
    let resumed = set
        .run_with(&runner, &mut resume_sink, &resume_config)
        .unwrap();
    assert_eq!(resumed.skipped, 3);
    assert_eq!(resumed.records.len(), 3);
    assert!(resumed.all_ok());

    // The concatenated stream: 4 surviving lines + 3 resumed records = 7,
    // with scenario 4 duplicated (it was emitted before its journal
    // append tore — emit-then-journal duplicates, never loses). The
    // deduplicated set is bit-identical to the uninterrupted run.
    let mut combined: Vec<String> =
        record_lines(&std::fs::read_to_string(&output_path).unwrap());
    combined.extend(record_lines(
        std::str::from_utf8(resume_sink.into_inner().as_slice()).unwrap(),
    ));
    assert_eq!(combined.len(), 7, "one duplicate from the torn append");
    let combined: BTreeSet<String> = combined.into_iter().collect();
    assert_eq!(combined, reference);

    // The repaired-and-appended journal now carries an `ok` latest record
    // for every fixture.
    let journal = load_journal(&journal_path).unwrap();
    for entry in set.entries() {
        let latest = journal.latest(&entry.name).expect("every fixture journaled");
        assert_eq!(latest.status, "ok");
    }

    std::fs::remove_file(&journal_path).unwrap();
    std::fs::remove_file(&output_path).unwrap();
}

/// An in-process TCP consumer that acks each line and drops the
/// connection after `lines_per_conn` lines. Received lines accumulate in
/// order across connections.
fn flaky_listener(lines_per_conn: usize) -> (String, Arc<Mutex<Vec<String>>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap().to_string();
    let received = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&received);
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { break };
            let mut reader = BufReader::new(stream);
            for _ in 0..lines_per_conn {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(n) if n > 0 => {
                        sink.lock()
                            .unwrap()
                            .push(line.trim_end_matches('\n').to_string());
                        if reader.get_mut().write_all(b"+").is_err() {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            // Dropping the stream mid-conversation is the fault injection.
        }
    });
    (addr, received)
}

/// A peer that dies every 2 lines still ends up with every record: the
/// ack turns delivery into at-least-once, and unacked lines are retried
/// on the next (seeded-backoff) reconnect.
#[test]
fn flaky_tcp_sink_delivers_every_record_at_least_once() {
    let set = BatchSet::from_entries(
        vec![tiny_entry("a", 11), tiny_entry("b", 22), tiny_entry("c", 33)],
        None,
    )
    .unwrap();
    let runner = Runner::serial();

    let mut reference_sink = WriteSink::new(Vec::new());
    set.run_with(&runner, &mut reference_sink, &RunConfig::default())
        .unwrap();
    let reference: BTreeSet<String> = record_lines(
        std::str::from_utf8(&reference_sink.into_inner()).unwrap(),
    )
    .into_iter()
    .collect();

    let (addr, received) = flaky_listener(2);
    let mut sink = TcpSink::new(addr)
        .with_seed(7)
        .with_ack(true)
        .with_write_timeout(Duration::from_secs(2))
        .with_backoff(Duration::from_millis(1), Duration::from_millis(8), 20);
    let report = set.run_with(&runner, &mut sink, &RunConfig::default()).unwrap();
    assert!(report.all_ok());
    let counters = sink.counters();
    assert!(
        counters.reconnects >= 1,
        "4 lines over a drop-every-2 peer must reconnect: {counters:?}"
    );

    let received = received.lock().unwrap().clone();
    assert!(received.len() >= 4, "3 records + aggregate, maybe re-sent");
    let unique: BTreeSet<String> = received.into_iter().collect();
    assert_eq!(
        unique.iter().filter(|l| l.contains("\"aggregate\":true")).count(),
        1
    );
    let records: BTreeSet<String> = unique
        .iter()
        .filter(|l| !l.contains("\"aggregate\":true"))
        .map(|l| strip_job_ms(l))
        .collect();
    assert_eq!(records, reference);
}

/// With an overflow queue and the peer down, `emit` never blocks: every
/// line spills to disk, and the final drain delivers the whole backlog in
/// order once the peer is back.
#[test]
fn overflow_queue_spills_while_the_peer_is_down_and_drains_on_return() {
    // Reserve a port, then free it: connects fail fast until the peer
    // "comes back" on the same address.
    let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = placeholder.local_addr().unwrap().to_string();
    drop(placeholder);

    let overflow = temp_path("overflow_queue");
    let _ = std::fs::remove_file(&overflow);
    let mut sink = TcpSink::new(addr.clone())
        .with_seed(3)
        .with_overflow(overflow.clone())
        .with_backoff(Duration::from_millis(1), Duration::from_millis(8), 30);

    let lines: Vec<String> = (0..5).map(|i| format!("{{\"record\":{i}}}")).collect();
    for line in &lines {
        sink.emit(line).expect("a down peer must not fail emit");
    }
    assert!(sink.has_backlog());
    assert_eq!(sink.counters().spilled_lines, 5);

    // The peer returns on the same address; `done` drains the backlog.
    let listener = TcpListener::bind(&addr).expect("rebind the reserved port");
    let received = Arc::new(Mutex::new(Vec::new()));
    let drain = Arc::clone(&received);
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            drain.lock().unwrap().push(line);
        }
    });
    sink.done().unwrap();
    assert!(!sink.has_backlog());
    let counters = sink.counters();
    assert_eq!(counters.drained_lines, 5);
    assert!(counters.connect_retries >= 1, "{counters:?}");
    drop(sink); // close the stream so the reader sees EOF
    server.join().unwrap();

    assert_eq!(*received.lock().unwrap(), lines, "in order, nothing lost");
    assert!(
        !overflow.exists(),
        "a fully drained queue file is removed"
    );
}
