//! Workspace reuse must be invisible in the results: a [`SimWorkspace`]
//! carried across runs — of any mix of configurations — leaves every
//! trace, summary and policy trace bit-identical to fresh-allocation
//! runs. This is the `merge_algebra`-style counterpart for the
//! zero-allocation fast path: reuse changes wall-clock, never bits.

use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::RadioModel;
use wsn_sim::contention::{run_channel_sim_into_ws, SimTrace};
use wsn_sim::network::{NetworkConfig, TxPowerPolicy};
use wsn_sim::policy::{GreedyRebalance, PolicyEngine};
use wsn_sim::scenario::{DeploymentSpec, Scenario};
use wsn_sim::sink::TraceCollector;
use wsn_sim::{ChannelSimConfig, NetworkSimulator, Runner, SimWorkspace};
use wsn_units::{DBm, Db, Seconds};

fn cfg(payload: usize, nodes: usize, load: f64, seed: u64) -> ChannelSimConfig {
    let mut c = ChannelSimConfig::figure6(payload, load, seed);
    c.nodes = nodes;
    c.superframes = 6;
    c
}

fn collect(config: &ChannelSimConfig, ws: &mut SimWorkspace) -> (SimTrace, u64) {
    let timings = config.timings();
    let mut collector = TraceCollector::new(timings.superframe_slots);
    let events = run_channel_sim_into_ws(config, &timings, |_| false, &mut collector, ws);
    (collector.into_trace(), events)
}

fn assert_traces_identical(a: &SimTrace, b: &SimTrace, context: &str) {
    assert_eq!(a.attempts, b.attempts, "{context}: attempts");
    assert_eq!(a.transactions, b.transactions, "{context}: transactions");
    assert_eq!(a.gts, b.gts, "{context}: gts");
    assert_eq!(a.downlinks, b.downlinks, "{context}: downlinks");
    assert_eq!(a.overruns, b.overruns, "{context}: overruns");
    assert_eq!(a.superframe_slots, b.superframe_slots, "{context}: slots");
}

#[test]
fn reused_workspace_matches_fresh_allocation_across_mixed_configs() {
    // Big → small → big again: shrinking configurations must not leak
    // stale nodes, offsets or queue entries into later runs.
    let mut cfp = cfg(80, 20, 0.4, 0xDDD);
    cfp.cfp = wsn_sim::plan_channel_cfp(20, 7, 1, 8, 0.5);
    let configs = [
        cfg(100, 60, 0.7, 0xAAA),
        cfg(20, 5, 0.1, 0xBBB),
        // A CFP run in the middle: its downlink-offset buffer must not
        // leak into the CAP-only runs around it (and vice versa).
        cfp,
        cfg(100, 60, 0.7, 0xAAA),
        cfg(50, 30, 0.45, 0xCCC),
    ];
    let mut shared = SimWorkspace::new();
    for (i, config) in configs.iter().enumerate() {
        let (reused, reused_events) = collect(config, &mut shared);
        let (fresh, fresh_events) = collect(config, &mut SimWorkspace::new());
        assert_traces_identical(&reused, &fresh, &format!("config {i}"));
        assert_eq!(reused_events, fresh_events, "config {i}: event count");
    }
}

#[test]
fn identical_configs_give_identical_traces_through_one_workspace() {
    let config = cfg(50, 40, 0.5, 0xD06);
    let mut ws = SimWorkspace::new();
    let (first, ev1) = collect(&config, &mut ws);
    let (second, ev2) = collect(&config, &mut ws);
    assert_traces_identical(&first, &second, "same-config rerun");
    assert_eq!(ev1, ev2);
}

#[test]
fn network_runs_are_identical_across_thread_local_reuse() {
    // `run_streaming` uses the calling thread's implicit workspace, so a
    // second invocation on this thread reuses dirty scratch; a run on a
    // brand-new thread starts from a pristine one. All three must agree.
    let mut channel = cfg(120, 20, 0.4, 0x11EE);
    channel.superframes = 5;
    let nodes = channel.nodes;
    let config = NetworkConfig {
        path_losses: (0..nodes)
            .map(|i| Db::new(58.0 + 35.0 * i as f64 / nodes as f64))
            .collect(),
        channel,
        radio: RadioModel::cc2420(),
        tx_policy: TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(-88.0),
        },
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    };
    let ber = EmpiricalCc2420Ber::paper();
    let run = {
        let config = config.clone();
        move || NetworkSimulator::new(config.clone()).run_streaming(&EmpiricalCc2420Ber::paper())
    };

    let warm = NetworkSimulator::new(config.clone()).run_streaming(&ber);
    let reused = NetworkSimulator::new(config.clone()).run_streaming(&ber);
    let pristine = std::thread::spawn(run).join().expect("fresh-thread run");

    for (name, other) in [("reused", &reused), ("pristine thread", &pristine)] {
        assert_eq!(warm.mean_node_power, other.mean_node_power, "{name}");
        assert_eq!(warm.failure_ratio, other.failure_ratio, "{name}");
        assert_eq!(warm.mean_delay, other.mean_delay, "{name}");
        assert_eq!(warm.node_powers, other.node_powers, "{name}");
        assert_eq!(warm.ledger, other.ledger, "{name}");
    }
}

#[test]
fn policy_loop_is_identical_on_warm_and_cold_workspaces() {
    // Two back-to-back closed-loop runs on the same (serial) thread: the
    // second reuses whatever the first left in the workspace, across every
    // round's recompiled grid.
    let scenario = Scenario::new(
        "workspace reuse probe",
        3,
        10,
        DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 90.0,
        },
    )
    .with_superframes(4)
    .with_replications(2);
    let engine = PolicyEngine::new(scenario).with_rounds(3).run_all_rounds();
    let runner = Runner::serial();

    let cold = engine.run(&runner, &mut GreedyRebalance::new(2));
    let warm = engine.run(&runner, &mut GreedyRebalance::new(2));
    assert_eq!(cold.converged_at, warm.converged_at);
    assert_eq!(cold.rounds.len(), warm.rounds.len());
    for (a, b) in cold.rounds.iter().zip(&warm.rounds) {
        assert_eq!(a.assignment, b.assignment, "round {}", a.round);
        assert_eq!(a.moved, b.moved, "round {}", a.round);
        assert_eq!(
            a.outcome.overall.mean_node_power, b.outcome.overall.mean_node_power,
            "round {}",
            a.round
        );
        assert_eq!(
            a.outcome.overall.failure_ratio, b.outcome.overall.failure_ratio,
            "round {}",
            a.round
        );
    }
}
