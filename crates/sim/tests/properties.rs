//! Property-based tests for the simulator: event ordering, RNG ranges, and
//! structural invariants of contention traces.

use proptest::prelude::*;

use wsn_sim::contention::{run_channel_sim, AttemptOutcome};
use wsn_sim::events::EventQueue;
use wsn_sim::{ChannelSimConfig, Xoshiro256StarStar};

proptest! {
    /// Pops come out sorted by (time, priority) with FIFO tie-breaking.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        events in proptest::collection::vec((0u64..1000, 0u8..3), 1..200)
    ) {
        let mut q = EventQueue::new();
        for (i, &(t, prio)) in events.iter().enumerate() {
            q.push(t, prio, i);
        }
        let mut last: Option<(u64, u8, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            let prio = events[idx].1;
            if let Some((lt, lp, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(prio >= lp, "priority order violated");
                    if prio == lp {
                        prop_assert!(idx > lidx, "FIFO violated within class");
                    }
                }
            }
            last = Some((t, prio, idx));
        }
    }

    /// `range_u32(n)` is always `< n`.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), n in 1u32..10_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.range_u32(n) < n);
        }
    }

    /// Split streams are pure functions of (state, stream id).
    #[test]
    fn rng_split_is_pure(seed in any::<u64>(), stream in any::<u64>()) {
        let root = Xoshiro256StarStar::seed_from_u64(seed);
        let mut a = root.split(stream);
        let mut b = root.split(stream);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Contention traces satisfy structural invariants for arbitrary
    /// loads, payloads and seeds: probabilities in range, attempts within
    /// the retry budget, CCAs within the CSMA bound.
    #[test]
    fn contention_trace_invariants(
        payload in 5usize..=123,
        load_pct in 5u32..=90,
        seed in any::<u64>(),
    ) {
        let mut cfg = ChannelSimConfig::figure6(payload, load_pct as f64 / 100.0, seed);
        cfg.nodes = 20;
        cfg.superframes = 4;
        let trace = run_channel_sim(&cfg, |_| false);

        let max_rounds = cfg.csma.max_backoffs as u32 + 1;
        for a in &trace.attempts {
            prop_assert!(a.ccas >= 1);
            prop_assert!(a.ccas <= max_rounds * cfg.csma.cw as u32);
            if a.outcome == AttemptOutcome::AccessFailure {
                // A failed procedure performed at least one CCA per round.
                prop_assert!(a.ccas >= max_rounds);
            }
        }
        for t in &trace.transactions {
            prop_assert!(t.attempts <= cfg.retries.n_max());
            if t.delivered {
                prop_assert!(t.attempts >= 1);
                prop_assert!(!t.access_failure);
            }
        }

        let stats = trace.contention_stats();
        prop_assert!(stats.pr_collision.value() <= 1.0);
        prop_assert!(stats.pr_access_failure.value() <= 1.0);
        if stats.procedures > 0 {
            prop_assert!(stats.mean_ccas >= 1.0);
            prop_assert!(stats.mean_contention.secs() >= 0.0);
        }
    }

    /// With no corruption, every transmitted-and-uncollided attempt is
    /// delivered — outcome accounting is conserved.
    #[test]
    fn outcome_conservation(seed in any::<u64>()) {
        let mut cfg = ChannelSimConfig::figure6(50, 0.3, seed);
        cfg.nodes = 15;
        cfg.superframes = 4;
        let trace = run_channel_sim(&cfg, |_| false);
        let delivered_attempts = trace
            .attempts
            .iter()
            .filter(|a| a.outcome == AttemptOutcome::Delivered)
            .count();
        let delivered_transactions =
            trace.transactions.iter().filter(|t| t.delivered).count();
        // Every delivered transaction ends with exactly one delivered
        // attempt, and no corrupted attempts can exist without an oracle.
        prop_assert_eq!(delivered_attempts, delivered_transactions);
        prop_assert!(trace
            .attempts
            .iter()
            .all(|a| a.outcome != AttemptOutcome::Corrupted));
    }
}
