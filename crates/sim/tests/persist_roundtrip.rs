//! The scenario-as-data contract, pinned against the committed fixtures
//! in `scenarios/`:
//!
//! * **byte round-trip** — for every committed fixture,
//!   `save(load(text)) == text` exactly (the writer is canonical and the
//!   committed files are in canonical form);
//! * **in-code equivalence** — every fixture decodes to precisely the
//!   `Scenario` the exporting binary builds in code (structural
//!   `PartialEq`), and *running* the loaded scenario is bit-identical to
//!   running the in-code one;
//! * **typed failures** — truncations, wrong types, duplicate keys and
//!   unknown fields produce positioned [`ParseError`]s, never panics.

use std::path::{Path, PathBuf};

use wsn_sim::scenario::{ChannelAllocation, DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::{fingerprint_scenario, load_scenario, save_scenario, FaultPlan, Runner};

/// The committed fixture directory at the repository root.
fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn fixture_text(file: &str) -> String {
    let path = fixture_dir().join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Every committed scenario fixture (`manifest.json` is not a scenario).
const FIXTURES: [&str; 6] = [
    "case_study_s5.json",
    "churn_outage.json",
    "clustered_heterogeneous_traffic.json",
    "indoor_disc_ring_stratified.json",
    "uniform_55_95_db_population.json",
    "uniform_with_gts_and_downlink.json",
];

/// What the exporting binaries build in code, fixture by fixture:
/// `case_study --export-scenario` (4 superframes, 1 rep),
/// `churn_study --export-scenario` (6 superframes, 1 rep) and
/// `scenario_sweep --save-dir` (4 superframes, 1 rep).
fn in_code(file: &str) -> Scenario {
    match file {
        "case_study_s5.json" => Scenario::new(
            "paper §5 case study",
            16,
            100,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 95.0,
            },
        )
        .with_traffic(TrafficSpec::uniform(120))
        .with_beacon_order(wsn_mac::BeaconOrder::new(6).expect("BO 6 valid"))
        .with_superframes(4),
        "churn_outage.json" => Scenario::new(
            "churn0.1-out2",
            3,
            12,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 90.0,
            },
        )
        .with_traffic(TrafficSpec::uniform(120).with_gts(1).with_downlink(0.3))
        .with_beacon_order(wsn_mac::BeaconOrder::new(3).expect("BO 3 valid"))
        .with_faults(
            FaultPlan::inert()
                .with_churn(0.10, 1, 3)
                .with_outages(0.10, 2),
        )
        .with_superframes(6),
        "clustered_heterogeneous_traffic.json" => Scenario::new(
            "clustered, heterogeneous traffic",
            4,
            50,
            DeploymentSpec::Clustered {
                field_radius_m: 50.0,
                cluster_radius_m: 6.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::Contiguous)
        .with_traffic(TrafficSpec::per_channel(vec![40, 80, 120, 123]))
        .with_superframes(4),
        "indoor_disc_ring_stratified.json" => Scenario::new(
            "indoor disc, ring-stratified",
            4,
            50,
            DeploymentSpec::Disc {
                radius_m: 55.0,
                exponent: 3.0,
                shadowing_db: 4.0,
            },
        )
        .with_allocation(ChannelAllocation::RingStratified)
        .with_superframes(4),
        "uniform_55_95_db_population.json" => Scenario::new(
            "uniform 55-95 dB population",
            4,
            50,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 95.0,
            },
        )
        .with_superframes(4),
        "uniform_with_gts_and_downlink.json" => Scenario::new(
            "uniform with GTS and downlink",
            4,
            50,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 90.0,
            },
        )
        .with_traffic(TrafficSpec::uniform(120).with_gts(1).with_downlink(0.2))
        .with_superframes(4),
        other => panic!("no in-code reconstruction for {other}"),
    }
    .with_replications(1)
}

#[test]
fn committed_fixtures_round_trip_byte_for_byte() {
    for file in FIXTURES {
        let text = fixture_text(file);
        let saved = load_scenario(&text).unwrap_or_else(|e| panic!("{file}: {e}"));
        let rendered = save_scenario(&saved).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(rendered, text, "{file}: save(load(text)) != text");
    }
}

#[test]
fn committed_fixtures_decode_to_the_in_code_scenarios() {
    for file in FIXTURES {
        let saved = load_scenario(&fixture_text(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(saved.policy.is_none(), "{file}: fixtures are open-loop");
        assert_eq!(saved.scenario, in_code(file), "{file}: structural mismatch");
    }
}

#[test]
fn loaded_fixtures_run_bit_identically_to_the_in_code_scenarios() {
    let runner = Runner::from_env();
    for file in FIXTURES {
        let saved = load_scenario(&fixture_text(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        let loaded = saved.scenario.run(&runner);
        let reference = in_code(file).run(&runner);
        assert_eq!(
            loaded.overall.mean_node_power, reference.overall.mean_node_power,
            "{file}: power"
        );
        assert_eq!(
            loaded.overall.failure_ratio, reference.overall.failure_ratio,
            "{file}: failures"
        );
        assert_eq!(
            loaded.overall.power_standard_error, reference.overall.power_standard_error,
            "{file}: power se"
        );
        assert_eq!(
            loaded.overall.mean_delay, reference.overall.mean_delay,
            "{file}: delay"
        );
        assert_eq!(
            loaded.overall.transactions, reference.overall.transactions,
            "{file}: transactions"
        );
        assert_eq!(loaded.gts_denied, reference.gts_denied, "{file}: gts denied");
        for (c, (a, b)) in loaded
            .per_channel
            .iter()
            .zip(&reference.per_channel)
            .enumerate()
        {
            assert_eq!(a.node_powers, b.node_powers, "{file} ch{c}: node powers");
        }
    }
}

/// The resume key: a fingerprint is stable across load/save round-trips
/// of the same config and changes when any field (or the seed) does —
/// pinned on the committed fixtures so a format change that silently
/// invalidates every journal shows up here.
#[test]
fn fingerprints_are_stable_and_config_sensitive() {
    for file in FIXTURES {
        let saved = load_scenario(&fixture_text(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        let fp = fingerprint_scenario(&saved);
        assert_eq!(fp.len(), 16, "{file}: 64-bit hex digest");
        assert!(fp.bytes().all(|b| b.is_ascii_hexdigit()), "{file}: {fp}");
        // Round-tripping the text does not move the fingerprint.
        let reparsed = load_scenario(&save_scenario(&saved).unwrap()).unwrap();
        assert_eq!(fingerprint_scenario(&reparsed), fp, "{file}: round-trip");

        let mut reseeded = saved.clone();
        reseeded.scenario.seed = reseeded.scenario.seed.wrapping_add(1);
        assert_ne!(fingerprint_scenario(&reseeded), fp, "{file}: seed-blind");

        let mut retuned = saved.clone();
        retuned.scenario.superframes += 1;
        assert_ne!(fingerprint_scenario(&retuned), fp, "{file}: config-blind");
    }
}

// ---------------------------------------------------------------------------
// Malformed input: typed, positioned errors — never panics.
// ---------------------------------------------------------------------------

#[test]
fn truncated_fixture_reports_a_positioned_error() {
    let text = fixture_text("case_study_s5.json");
    // Cut the document at several byte-ish points (char boundaries) and
    // make sure each failure is a typed error, not a panic.
    let chars: Vec<char> = text.chars().collect();
    for cut in [1, chars.len() / 4, chars.len() / 2, chars.len() - 2] {
        let truncated: String = chars[..cut].iter().collect();
        let err = load_scenario(&truncated)
            .expect_err("a truncated document must not decode");
        assert!(err.line >= 1, "cut at {cut}: line {}", err.line);
        assert!(!err.expected.is_empty(), "cut at {cut}: empty diagnostic");
    }
}

#[test]
fn wrong_types_are_rejected_with_position() {
    let text = fixture_text("churn_outage.json");
    let bad = text.replace("\"channels\": 3", "\"channels\": \"three\"");
    assert_ne!(bad, text, "the replacement must hit");
    let err = load_scenario(&bad).expect_err("a string channel count must not decode");
    assert!(
        err.expected.contains("integer"),
        "diagnostic names the expected type: {err}"
    );
    assert!(err.line > 1, "position points into the document: {err}");
}

#[test]
fn duplicate_keys_are_rejected() {
    let text = fixture_text("uniform_55_95_db_population.json");
    let bad = text.replace(
        "\"channels\": 4,",
        "\"channels\": 4,\n  \"channels\": 4,",
    );
    assert_ne!(bad, text, "the replacement must hit");
    let err = load_scenario(&bad).expect_err("duplicate keys must not decode");
    assert!(
        err.expected.contains("duplicate"),
        "diagnostic names the duplicate: {err}"
    );
}

#[test]
fn unknown_fields_are_rejected() {
    let text = fixture_text("uniform_with_gts_and_downlink.json");
    let bad = text.replace(
        "\"shards\": 1,",
        "\"shards\": 1,\n  \"turbo\": true,",
    );
    assert_ne!(bad, text, "the replacement must hit");
    let err = load_scenario(&bad).expect_err("unknown fields must not decode");
    assert!(
        err.expected.contains("turbo"),
        "diagnostic names the stray field: {err}"
    );
}

#[test]
fn format_version_is_enforced() {
    let text = fixture_text("case_study_s5.json");
    let bad = text.replace("\"format\": 1,", "\"format\": 2,");
    assert_ne!(bad, text, "the replacement must hit");
    let err = load_scenario(&bad).expect_err("an unknown format version must not decode");
    assert!(err.expected.contains('1'), "diagnostic names format 1: {err}");
}
