//! The telemetry inertness contract, end to end:
//!
//! * **bit-identical output** — every simulation result (engine stats,
//!   scenario outcomes with faults and CFP traffic, farm record bytes)
//!   is identical with telemetry enabled and disabled: the registry
//!   draws no RNG and never touches simulation state;
//! * **thread-count invariance** — the *final* deterministic snapshot
//!   record is byte-identical across 1/2/4 worker threads (every
//!   deterministic metric merges through a commutative integer fold
//!   over a fixed job set);
//! * **collection** — with telemetry on, the registry actually fills.
//!
//! Every test mutates the process-global registry, so they serialize on
//! one lock (cargo runs same-binary tests on multiple threads).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use wsn_sim::scenario::{DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::telemetry;
use wsn_sim::{
    simulate_contention, BatchEntry, BatchSet, ChannelSimConfig, ContentionStats, FaultPlan,
    RunConfig, Runner, SavedScenario, WriteSink,
};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Serializes registry use across tests (poisoning recovered: a failed
/// sibling test must not cascade).
fn lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` twice — telemetry off, then on (reset in between) — and
/// returns both results for the bit-identity comparison.
fn off_then_on<T>(mut f: impl FnMut() -> T) -> (T, T) {
    telemetry::set_enabled(false);
    let off = f();
    telemetry::reset();
    telemetry::set_enabled(true);
    let on = f();
    telemetry::set_enabled(false);
    (off, on)
}

/// A small but non-trivial closed-loop scenario: faults and GTS/downlink
/// traffic exercise every instrumented engine path.
fn churn_scenario(seed: u64) -> Scenario {
    Scenario::new(
        "telemetry-churn",
        3,
        12,
        DeploymentSpec::UniformLossGrid {
            min_db: 58.0,
            max_db: 88.0,
        },
    )
    .with_traffic(TrafficSpec::uniform(32).with_gts_demand(2).with_downlink(0.5))
    .with_superframes(4)
    .with_replications(2)
    .with_seed(seed)
    .with_faults(FaultPlan::inert().with_churn(0.08, 2, 2).with_outages(0.05, 1))
}

#[test]
fn engine_stats_are_bit_identical_with_telemetry_on() {
    let _guard = lock();
    // A figure-6-style contention point per payload class.
    for (payload, load) in [(20usize, 0.3), (50, 0.6), (100, 0.85)] {
        let mut cfg = ChannelSimConfig::figure6(payload, load, 0xF16_6 + payload as u64);
        cfg.superframes = 12;
        let (off, on): (ContentionStats, ContentionStats) = off_then_on(|| simulate_contention(&cfg));
        assert_eq!(off, on, "payload {payload} load {load}");
    }
}

#[test]
fn scenario_outcomes_are_bit_identical_with_telemetry_on() {
    let _guard = lock();
    let runner = Runner::with_threads(2);

    // Case-study-shaped closed deployment (shrunk) and the churn/outage
    // scenario; `ScenarioOutcome` has no `PartialEq`, but `Debug` prints
    // f64 with round-trip precision, so equal strings ⇔ equal bits.
    let case = Scenario::paper_case_study()
        .with_superframes(3)
        .with_replications(1)
        .with_seed(0xCA5E);
    let (off, on) = off_then_on(|| format!("{:?}", case.run(&runner)));
    assert_eq!(off, on, "case study outcome changed under telemetry");

    let churn = churn_scenario(0xC0FE);
    let (off, on) = off_then_on(|| format!("{:?}", churn.run(&runner)));
    assert_eq!(off, on, "churn outcome changed under telemetry");
}

/// One farm entry per seed, cheap enough for a 6-scenario batch.
fn tiny_entry(name: &str, seed: u64) -> BatchEntry {
    let scenario = Scenario::new(
        name,
        2,
        8,
        DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        },
    )
    .with_superframes(3)
    .with_replications(2)
    .with_seed(seed);
    BatchEntry {
        name: name.to_string(),
        path: PathBuf::from(format!("{name}.json")),
        saved: SavedScenario::open_loop(scenario),
    }
}

fn tiny_batch() -> BatchSet {
    BatchSet::from_entries(
        vec![
            tiny_entry("a", 11),
            tiny_entry("b", 22),
            tiny_entry("c", 33),
            tiny_entry("d", 44),
            tiny_entry("e", 55),
            tiny_entry("f", 66),
        ],
        None,
    )
    .unwrap()
}

/// Farm record bytes (including per-record `job_ms` — compared after
/// stripping, like CI does) must not move when telemetry collects.
#[test]
fn farm_records_are_bit_identical_with_telemetry_on() {
    let _guard = lock();
    let set = tiny_batch();
    let runner = Runner::with_threads(2);
    let (off, on) = off_then_on(|| {
        let mut sink = WriteSink::new(Vec::new());
        set.run_with(&runner, &mut sink, &RunConfig::default()).unwrap();
        strip_job_ms(std::str::from_utf8(&sink.into_inner()).unwrap())
    });
    assert_eq!(off, on, "farm record bytes changed under telemetry");
}

/// Drops every `"job_ms":<num>,` and the final aggregate line — the
/// only wall-clock bytes in the record stream (the aggregate carries
/// whole-batch wall and rate fields).
fn strip_job_ms(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines().filter(|l| !l.contains("\"aggregate\":true")) {
        let mut line = line.to_string();
        while let Some(start) = line.find("\"job_ms\":") {
            let end = start + line[start..].find(',').expect("job_ms is not last") + 1;
            line.replace_range(start..end, "");
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The final deterministic snapshot record is byte-identical across
/// 1/2/4 worker threads: wave splits, shard order and scheduling must
/// never leak into the deterministic section (thread-dependent values —
/// maps, waves, pool occupancy, wall clocks — live in the timing
/// record, which is exempt).
#[test]
fn final_deterministic_snapshot_is_thread_count_invariant() {
    let _guard = lock();
    let set = tiny_batch();
    let mut lines = Vec::new();
    for threads in [1usize, 2, 4] {
        telemetry::reset();
        telemetry::set_enabled(true);
        let runner = Runner::with_threads(threads);
        let mut sink = WriteSink::new(Vec::new());
        set.run_with(&runner, &mut sink, &RunConfig::default()).unwrap();
        let (det, _timing) = telemetry::snapshot_lines(true);
        telemetry::set_enabled(false);
        lines.push((threads, det));
    }
    let (_, reference) = &lines[0];
    for (threads, line) in &lines[1..] {
        assert_eq!(line, reference, "{threads} threads diverged from 1 thread");
    }
}

/// With telemetry on the registry actually collects: engine counters,
/// histograms, runner jobs and farm tallies all fill; disabled runs add
/// nothing.
#[test]
fn enabled_registry_collects_and_disabled_registry_does_not() {
    let _guard = lock();
    let set = tiny_batch();
    let runner = Runner::with_threads(2);

    telemetry::reset();
    telemetry::set_enabled(true);
    let mut sink = WriteSink::new(Vec::new());
    set.run_with(&runner, &mut sink, &RunConfig::default()).unwrap();
    telemetry::set_enabled(false);
    let snap = telemetry::snapshot();
    assert!(snap.engine.runs > 0, "engine shards folded");
    assert!(snap.engine.events > 0, "events counted");
    assert!(snap.engine.queue_pushes > 0, "queue instrumented");
    assert!(snap.engine.queue_skip_slots.count > 0, "skip histogram filled");
    assert!(snap.runner.jobs > 0, "runner jobs counted");
    assert_eq!(snap.farm.ok, 6, "all six scenarios tallied ok");
    let timing = telemetry::timing_snapshot();
    assert!(timing.job.count > 0 && timing.batch.count == 1, "spans recorded");

    telemetry::reset();
    let mut sink = WriteSink::new(Vec::new());
    set.run_with(&runner, &mut sink, &RunConfig::default()).unwrap();
    assert_eq!(telemetry::snapshot(), wsn_sim::telemetry::MetricSet::NEW);
}
