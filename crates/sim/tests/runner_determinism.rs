//! The parallel runner's contract: for a fixed master seed its output is
//! bit-identical to the serial engine's, for every thread count, and the
//! streaming reduction is bit-identical to trace-then-reduce.

use wsn_sim::contention::run_channel_sim;
use wsn_sim::{simulate_contention, ChannelSimConfig, Runner, StatsSink};

fn point(payload: usize, load: f64, seed: u64) -> ChannelSimConfig {
    let mut cfg = ChannelSimConfig::figure6(payload, load, seed);
    cfg.superframes = 8;
    cfg
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_engine() {
    // A miniature Figure-6 grid: 2 payloads × 5 loads.
    let configs: Vec<ChannelSimConfig> = [20usize, 100]
        .iter()
        .flat_map(|&p| (1..=5).map(move |i| point(p, i as f64 * 0.15, 0xF166 + p as u64)))
        .collect();

    // Reference: the serial engine, point by point.
    let serial: Vec<_> = configs.iter().map(simulate_contention).collect();

    for threads in [1, 2, 4, 8] {
        let parallel = Runner::with_threads(threads).sweep_contention(&configs);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn parallel_replications_are_bit_identical_to_serial() {
    let base = point(50, 0.42, 0xB0B);
    let serial = Runner::serial().replicate_contention(&base, 6);
    for threads in [2, 3, 6, 12] {
        let parallel = Runner::with_threads(threads).replicate_contention(&base, 6);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn streaming_reduction_equals_trace_reduction() {
    let cfg = point(100, 0.6, 0x7EA);
    let trace = run_channel_sim(&cfg, |_| false);
    let mut sink = StatsSink::new();
    trace.replay(&mut sink);
    assert_eq!(simulate_contention(&cfg), trace.contention_stats());
    assert_eq!(sink.contention_stats(), trace.contention_stats());
}

#[test]
fn runner_output_is_reproducible_across_invocations() {
    let base = point(50, 0.42, 42);
    let a = Runner::from_env().replicate_contention(&base, 4);
    let b = Runner::from_env().replicate_contention(&base, 4);
    assert_eq!(a, b);
}
