//! The parallel runner's contract: for a fixed master seed its output is
//! bit-identical to the serial engine's, for every thread count, and the
//! streaming reduction is bit-identical to trace-then-reduce. The same
//! guarantee covers the network layer: replicated network simulations and
//! whole scenarios merge to bit-identical summaries for every thread
//! count.

use wsn_phy::ber::EmpiricalCc2420Ber;
use wsn_radio::RadioModel;
use wsn_sim::contention::run_channel_sim;
use wsn_sim::network::{NetworkConfig, NetworkSummary, TxPowerPolicy};
use wsn_sim::policy::{GreedyRebalance, PolicyEngine, ProportionalFair};
use wsn_sim::scenario::{BerChoice, ChannelAllocation, DeploymentSpec, Scenario, TrafficSpec};
use wsn_sim::{
    simulate_contention, BatchSet, ChannelSimConfig, FaultPlan, NetworkSimulator, Runner,
    StatsSink,
};
use wsn_units::{DBm, Db, Seconds};

fn point(payload: usize, load: f64, seed: u64) -> ChannelSimConfig {
    let mut cfg = ChannelSimConfig::figure6(payload, load, seed);
    cfg.superframes = 8;
    cfg
}

fn network_point(nodes: usize, seed: u64) -> NetworkConfig {
    let mut channel = point(120, 0.4, seed);
    channel.nodes = nodes;
    channel.superframes = 5;
    NetworkConfig {
        path_losses: (0..nodes)
            .map(|i| Db::new(58.0 + 35.0 * i as f64 / nodes as f64))
            .collect(),
        channel,
        radio: RadioModel::cc2420(),
        tx_policy: TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(-88.0),
        },
        coordinator_tx: DBm::new(0.0),
        wakeup_margin: Seconds::from_millis(1.0),
        corrupt_probs: None,
    }
}

/// Bit-exact equality on every scalar of a summary.
fn assert_summaries_identical(a: &NetworkSummary, b: &NetworkSummary, context: &str) {
    assert_eq!(a.mean_node_power, b.mean_node_power, "{context}: power");
    assert_eq!(a.failure_ratio, b.failure_ratio, "{context}: failures");
    assert_eq!(a.transactions, b.transactions, "{context}: transactions");
    assert_eq!(a.mean_delay, b.mean_delay, "{context}: delay");
    assert_eq!(a.mean_attempts, b.mean_attempts, "{context}: attempts");
    assert_eq!(
        a.energy_per_bit_nj, b.energy_per_bit_nj,
        "{context}: energy/bit"
    );
    assert_eq!(a.replications, b.replications, "{context}: reps");
    assert_eq!(
        a.power_standard_error, b.power_standard_error,
        "{context}: power se"
    );
    assert_eq!(
        a.failure_standard_error, b.failure_standard_error,
        "{context}: failure se"
    );
    assert_eq!(
        a.delay_standard_error, b.delay_standard_error,
        "{context}: delay se"
    );
    assert_eq!(a.node_powers, b.node_powers, "{context}: node powers");
    assert_eq!(a.cap_power, b.cap_power, "{context}: cap power");
    assert_eq!(a.cfp_power, b.cfp_power, "{context}: cfp power");
    assert_eq!(
        a.cap_power_standard_error, b.cap_power_standard_error,
        "{context}: cap power se"
    );
    assert_eq!(
        a.cfp_power_standard_error, b.cfp_power_standard_error,
        "{context}: cfp power se"
    );
    assert_eq!(
        a.gts_transactions, b.gts_transactions,
        "{context}: gts txns"
    );
    assert_eq!(
        a.gts_failure_ratio, b.gts_failure_ratio,
        "{context}: gts failures"
    );
    assert_eq!(a.gts_denied, b.gts_denied, "{context}: gts denied");
    assert_eq!(a.downlink_polls, b.downlink_polls, "{context}: dl polls");
    assert_eq!(
        a.downlink_failure_ratio, b.downlink_failure_ratio,
        "{context}: dl failures"
    );
    assert_eq!(
        a.downlink_deferred, b.downlink_deferred,
        "{context}: dl deferred"
    );
    assert_eq!(a.deaths, b.deaths, "{context}: deaths");
    assert_eq!(a.orphan_scans, b.orphan_scans, "{context}: orphan scans");
    assert_eq!(a.join_attempts, b.join_attempts, "{context}: join attempts");
    assert_eq!(
        a.join_failure_ratio, b.join_failure_ratio,
        "{context}: join failures"
    );
    assert_eq!(
        a.mean_reassociation_delay, b.mean_reassociation_delay,
        "{context}: reassoc delay"
    );
    assert_eq!(a.dormant_nodes, b.dormant_nodes, "{context}: dormant");
    assert_eq!(
        a.energy_per_delivered_packet_uj, b.energy_per_delivered_packet_uj,
        "{context}: energy/packet"
    );
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial_engine() {
    // A miniature Figure-6 grid: 2 payloads × 5 loads.
    let configs: Vec<ChannelSimConfig> = [20usize, 100]
        .iter()
        .flat_map(|&p| (1..=5).map(move |i| point(p, i as f64 * 0.15, 0xF166 + p as u64)))
        .collect();

    // Reference: the serial engine, point by point.
    let serial: Vec<_> = configs.iter().map(simulate_contention).collect();

    for threads in [1, 2, 4, 8] {
        let parallel = Runner::with_threads(threads).sweep_contention(&configs);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn parallel_replications_are_bit_identical_to_serial() {
    let base = point(50, 0.42, 0xB0B);
    let serial = Runner::serial().replicate_contention(&base, 6);
    for threads in [2, 3, 6, 12] {
        let parallel = Runner::with_threads(threads).replicate_contention(&base, 6);
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn streaming_reduction_equals_trace_reduction() {
    let cfg = point(100, 0.6, 0x7EA);
    let trace = run_channel_sim(&cfg, |_| false);
    let mut sink = StatsSink::new();
    trace.replay(&mut sink);
    assert_eq!(simulate_contention(&cfg), trace.contention_stats());
    assert_eq!(sink.contention_stats(), trace.contention_stats());
}

#[test]
fn runner_output_is_reproducible_across_invocations() {
    let base = point(50, 0.42, 42);
    let a = Runner::from_env().replicate_contention(&base, 4);
    let b = Runner::from_env().replicate_contention(&base, 4);
    assert_eq!(a, b);
}

#[test]
fn network_sweep_is_bit_identical_to_serial_streaming() {
    let ber = EmpiricalCc2420Ber::paper();
    let configs: Vec<NetworkConfig> = (0..5u64).map(|c| network_point(12, 0x4E7 + c)).collect();

    // Reference: serial streaming runs, config by config.
    let serial: Vec<NetworkSummary> = configs
        .iter()
        .map(|cfg| NetworkSimulator::new(cfg.clone()).run_streaming(&ber))
        .collect();

    for threads in [1, 2, 4] {
        let parallel = Runner::with_threads(threads).sweep_network(&configs, &ber);
        assert_eq!(parallel.len(), serial.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_summaries_identical(a, b, &format!("sweep threads={threads}"));
        }
    }
}

#[test]
fn network_replications_are_bit_identical_across_1_2_4_threads() {
    let ber = EmpiricalCc2420Ber::paper();
    let base = network_point(15, 0xBEE);
    let serial = Runner::with_threads(1).replicate_network(&base, 6, &ber);
    assert_eq!(serial.replications, 6);
    for threads in [2, 4] {
        let parallel = Runner::with_threads(threads).replicate_network(&base, 6, &ber);
        assert_summaries_identical(&serial, &parallel, &format!("replicate threads={threads}"));
    }
}

#[test]
fn scenario_runs_are_bit_identical_across_1_2_4_threads() {
    // A geometric, heterogeneous-traffic scenario exercises deployment
    // compilation, per-channel loads and the two-level (channel ×
    // replication) reduction at once.
    let scenario = Scenario::new(
        "determinism probe",
        3,
        8,
        DeploymentSpec::Disc {
            radius_m: 40.0,
            exponent: 3.0,
            shadowing_db: 3.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_traffic(TrafficSpec::per_channel(vec![60, 100, 123]))
    .with_superframes(4)
    .with_replications(3);

    let serial = scenario.run(&Runner::with_threads(1));
    for threads in [2, 4] {
        let parallel = scenario.run(&Runner::with_threads(threads));
        assert_summaries_identical(
            &serial.overall,
            &parallel.overall,
            &format!("scenario overall threads={threads}"),
        );
        for (c, (a, b)) in serial
            .per_channel
            .iter()
            .zip(&parallel.per_channel)
            .enumerate()
        {
            assert_summaries_identical(a, b, &format!("scenario ch{c} threads={threads}"));
        }
    }
    assert_eq!(serial.overall.replications, 3);
}

/// The closed policy loop is a round-by-round composition of runner
/// reductions and pure policy decisions, so its entire trace — the
/// assignments chosen, nodes moved, convergence round and every round's
/// summaries — must be bit-identical for 1, 2 and 4 worker threads.
#[test]
fn policy_loop_is_bit_identical_across_1_2_4_threads() {
    let scenario = Scenario::new(
        "policy determinism probe",
        3,
        12,
        DeploymentSpec::Disc {
            radius_m: 55.0,
            exponent: 3.0,
            shadowing_db: 3.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_channel_ber(vec![
        BerChoice::EmpiricalCc2420,
        BerChoice::HardDecisionDsss {
            noise_figure_db: 24.0,
        },
        BerChoice::HardDecisionDsss {
            noise_figure_db: 27.0,
        },
    ])
    .with_superframes(4)
    .with_replications(2);
    let engine = PolicyEngine::new(scenario).with_rounds(4).run_all_rounds();

    let serial = engine.run(&Runner::with_threads(1), &mut GreedyRebalance::new(2));
    for threads in [2, 4] {
        let parallel = engine.run(&Runner::with_threads(threads), &mut GreedyRebalance::new(2));
        assert_eq!(
            serial.converged_at, parallel.converged_at,
            "threads={threads}: convergence round"
        );
        assert_eq!(serial.rounds.len(), parallel.rounds.len());
        for (a, b) in serial.rounds.iter().zip(&parallel.rounds) {
            let context = format!("threads={threads} round={}", a.round);
            assert_eq!(a.assignment, b.assignment, "{context}: assignment");
            assert_eq!(a.moved, b.moved, "{context}: moved");
            assert_summaries_identical(
                &a.outcome.overall,
                &b.outcome.overall,
                &format!("{context} overall"),
            );
            for (c, (x, y)) in a
                .outcome
                .per_channel
                .iter()
                .zip(&b.outcome.per_channel)
                .enumerate()
            {
                assert_summaries_identical(x, y, &format!("{context} ch{c}"));
            }
        }
    }
    // The rebalancer actually acted in this configuration — the guarantee
    // above is not vacuous.
    assert!(serial.rounds.iter().any(|r| r.moved > 0));
}

/// The policy loop's per-drift corruption cache must be invisible: every
/// round of a cached engine run reproduces, bit-for-bit, a manual
/// replication of the same round through the *uncached* compile path
/// (`compile_assignment_with_losses` carries no precomputed
/// probabilities). Drifting faults exercise several distinct cache keys,
/// downlink-burst rounds pin that the boost composes with caching.
#[test]
fn policy_corruption_cache_matches_uncached_rounds_bitwise() {
    let scenario = Scenario::new(
        "cache equivalence probe",
        2,
        10,
        DeploymentSpec::UniformLossGrid {
            min_db: 58.0,
            max_db: 90.0,
        },
    )
    .with_superframes(4)
    .with_replications(2)
    .with_faults(FaultPlan::inert().with_drift(2.5, 3).with_bursts(4, 0.3));
    let runner = Runner::with_threads(1);
    let rounds = 5usize;
    let engine = PolicyEngine::new(scenario.clone())
        .with_rounds(rounds)
        .run_all_rounds();
    let trace = engine.run(&runner, &mut wsn_sim::policy::StaticAllocation);
    assert_eq!(trace.rounds.len(), rounds);

    // Manual uncached replication: StaticAllocation never moves a node, so
    // every round re-runs the initial assignment at salt = round.
    let losses = scenario.population_losses();
    let assignment = scenario.initial_assignment();
    for (round, recorded) in trace.rounds.iter().enumerate() {
        let drift = scenario.faults.loss_drift_db(round as u32);
        let round_losses: Vec<Db> = losses.iter().map(|&l| l + Db::new(drift)).collect();
        let mut configs =
            scenario.compile_assignment_with_losses(&round_losses, &assignment, round as u64);
        for cfg in &mut configs {
            assert!(
                cfg.corrupt_probs.is_none(),
                "public compile path must stay uncached"
            );
            let boost = scenario.faults.downlink_boost(round as u32);
            cfg.channel.cfp.downlink_rate = (cfg.channel.cfp.downlink_rate + boost).min(1.0);
        }
        let uncached = scenario.run_compiled(&runner, &configs);
        let context = format!("round={round} (drift {drift} dB)");
        assert_summaries_identical(
            &recorded.outcome.overall,
            &uncached.overall,
            &format!("{context} overall"),
        );
        for (c, (a, b)) in recorded
            .outcome
            .per_channel
            .iter()
            .zip(&uncached.per_channel)
            .enumerate()
        {
            assert_summaries_identical(a, b, &format!("{context} ch{c}"));
        }
    }
    // The probe exercised at least two distinct drift values (cache keys).
    let drifts: std::collections::BTreeSet<u64> = (0..rounds)
        .map(|r| scenario.faults.loss_drift_db(r as u32).to_bits())
        .collect();
    assert!(
        drifts.len() >= 2,
        "want multiple cache keys, got {drifts:?}"
    );
}

/// ProportionalFair reshuffles many nodes at once; pin its loop too.
#[test]
fn proportional_fair_loop_is_bit_identical_across_threads() {
    let scenario = Scenario::new(
        "pf determinism probe",
        3,
        10,
        DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 92.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_superframes(4)
    .with_replications(2);
    let engine = PolicyEngine::new(scenario).with_rounds(3).run_all_rounds();

    let serial = engine.run(&Runner::with_threads(1), &mut ProportionalFair::default());
    for threads in [2, 4] {
        let parallel = engine.run(
            &Runner::with_threads(threads),
            &mut ProportionalFair::default(),
        );
        assert_eq!(serial.rounds.len(), parallel.rounds.len());
        for (a, b) in serial.rounds.iter().zip(&parallel.rounds) {
            assert_eq!(a.assignment, b.assignment, "threads={threads}");
            assert_eq!(a.moved, b.moved, "threads={threads}");
        }
        assert_eq!(
            serial.worst_failure_trajectory(),
            parallel.worst_failure_trajectory(),
            "threads={threads}"
        );
        assert_eq!(
            serial.energy_trajectory_j(),
            parallel.energy_trajectory_j(),
            "threads={threads}"
        );
    }
}

/// The CFP engine — GTS holders transmitting contention-free, downlink
/// polls contending in the CAP — runs on the same runner reductions, so
/// a GTS + downlink scenario must stay bit-identical for 1, 2 and 4
/// worker threads, CFP statistics included.
#[test]
fn cfp_scenario_is_bit_identical_across_1_2_4_threads() {
    let scenario = Scenario::new(
        "cfp determinism probe",
        3,
        14,
        DeploymentSpec::UniformLossGrid {
            min_db: 58.0,
            max_db: 90.0,
        },
    )
    .with_traffic(TrafficSpec::uniform(100).with_gts(1).with_downlink(0.5))
    .with_superframes(5)
    .with_replications(3);

    let serial = scenario.run(&Runner::with_threads(1));
    // The probe actually exercises the CFP: descriptors granted and
    // denied, GTS traffic observed, polls answered and deferred.
    assert_eq!(serial.gts_denied, vec![7, 7, 7]);
    assert!(serial.overall.gts_transactions > 0);
    assert!(serial.overall.downlink_polls > 0);
    assert!(serial.overall.cfp_power.microwatts() > 0.0);

    for threads in [2, 4] {
        let parallel = scenario.run(&Runner::with_threads(threads));
        assert_eq!(serial.gts_denied, parallel.gts_denied, "threads={threads}");
        assert_summaries_identical(
            &serial.overall,
            &parallel.overall,
            &format!("cfp overall threads={threads}"),
        );
        for (c, (a, b)) in serial
            .per_channel
            .iter()
            .zip(&parallel.per_channel)
            .enumerate()
        {
            assert_summaries_identical(a, b, &format!("cfp ch{c} threads={threads}"));
        }
    }
}

/// Fault injection adds RNG draws, event reordering and mid-run state
/// (deaths, outages, GTS reallocation) to the engine — all of it seeded
/// from the per-replication root, never from thread scheduling. A churning
/// scenario with coordinator outages must therefore stay bit-identical
/// for 1, 2 and 4 worker threads, fault statistics included.
#[test]
fn faulted_scenario_is_bit_identical_across_1_2_4_threads() {
    let scenario = Scenario::new(
        "fault determinism probe",
        3,
        14,
        DeploymentSpec::UniformLossGrid {
            min_db: 58.0,
            max_db: 90.0,
        },
    )
    .with_traffic(TrafficSpec::uniform(100).with_gts(1).with_downlink(0.4))
    .with_faults(
        FaultPlan::inert()
            .with_churn(0.04, 1, 2)
            .with_outages(0.10, 1),
    )
    .with_superframes(8)
    .with_replications(3);

    let serial = scenario.run(&Runner::with_threads(1));
    // The probe actually exercises the fault machinery — the determinism
    // guarantee below is not vacuous.
    assert!(serial.overall.deaths > 0, "plan must kill nodes");
    assert!(
        serial.overall.orphan_scans > 0,
        "outages must trigger scans"
    );
    assert!(
        serial.overall.join_attempts > 0,
        "deaths must trigger joins"
    );
    assert!(
        serial.overall.energy_per_delivered_packet_uj.is_finite(),
        "the degraded network still delivers"
    );

    for threads in [2, 4] {
        let parallel = scenario.run(&Runner::with_threads(threads));
        assert_summaries_identical(
            &serial.overall,
            &parallel.overall,
            &format!("faulted overall threads={threads}"),
        );
        for (c, (a, b)) in serial
            .per_channel
            .iter()
            .zip(&parallel.per_channel)
            .enumerate()
        {
            assert_summaries_identical(a, b, &format!("faulted ch{c} threads={threads}"));
        }
    }
}

/// The headline robustness contract: a scenario carrying an explicitly
/// inert `FaultPlan` is byte-for-byte the same simulation as one that
/// never mentions faults at all — no extra RNG draws, no sink traffic, no
/// accumulator drift.
#[test]
fn inert_fault_plan_is_invisible() {
    let build = || {
        Scenario::new(
            "inert fault probe",
            3,
            12,
            DeploymentSpec::UniformLossGrid {
                min_db: 58.0,
                max_db: 90.0,
            },
        )
        .with_traffic(TrafficSpec::uniform(100).with_gts(1).with_downlink(0.5))
        .with_superframes(5)
        .with_replications(2)
    };
    let plain = build().run(&Runner::from_env());
    let inert = build()
        .with_faults(FaultPlan::inert())
        .run(&Runner::from_env());

    assert_summaries_identical(&plain.overall, &inert.overall, "inert overall");
    for (c, (a, b)) in plain.per_channel.iter().zip(&inert.per_channel).enumerate() {
        assert_summaries_identical(a, b, &format!("inert ch{c}"));
    }
    // And the fault counters themselves stay at zero.
    assert_eq!(inert.overall.deaths, 0);
    assert_eq!(inert.overall.orphan_scans, 0);
    assert_eq!(inert.overall.join_attempts, 0);
    assert_eq!(inert.overall.dormant_nodes, 0);
}

/// On the ring-stratified deployment the outer channel saturates first —
/// the paper's dense-network prediction. GreedyRebalance must strictly
/// lower that worst-channel failure relative to the static baseline
/// within the 8-round budget (the PR's acceptance criterion).
#[test]
fn greedy_rebalance_beats_static_on_ring_stratified_scenario() {
    let scenario = Scenario::new(
        "ring-stratified convergence",
        4,
        16,
        DeploymentSpec::Disc {
            radius_m: 60.0,
            exponent: 3.0,
            shadowing_db: 0.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_beacon_order(wsn_mac::BeaconOrder::new(3).expect("BO 3 valid"))
    .with_superframes(6)
    .with_replications(2);
    let engine = PolicyEngine::new(scenario).with_rounds(8).run_all_rounds();
    let runner = Runner::from_env();

    let static_trace = engine.run(&runner, &mut wsn_sim::StaticAllocation);
    let greedy_trace = engine.run(&runner, &mut GreedyRebalance::new(3));

    // Same per-round seeds: round r differs between the traces only by
    // the assignment, so the comparison isolates the policy's effect.
    assert_eq!(static_trace.rounds.len(), 8);
    assert_eq!(greedy_trace.rounds.len(), 8);
    assert_eq!(
        static_trace.rounds[0].worst_failure(),
        greedy_trace.rounds[0].worst_failure(),
        "round 0 runs the identical initial assignment"
    );
    assert!(greedy_trace.rounds.iter().any(|r| r.moved > 0));

    let static_final = static_trace.final_round().worst_failure();
    let greedy_final = greedy_trace.final_round().worst_failure();
    assert!(
        greedy_final < static_final,
        "greedy {greedy_final:.3} must beat static {static_final:.3} by round 8"
    );
}

/// Near convergence the worst/best failure gap is round-to-round
/// contention noise, and zero-tolerance greedy keeps trading nodes
/// between the two best channels forever. The ε-damped variant
/// (`with_move_cost`) raises its bar after every executed move, so on the
/// same ring-stratified scenario it must actually stabilize — while still
/// beating the static baseline.
#[test]
fn move_cost_settles_greedy_on_ring_stratified_scenario() {
    let scenario = Scenario::new(
        "ring-stratified hysteresis",
        4,
        16,
        DeploymentSpec::Disc {
            radius_m: 60.0,
            exponent: 3.0,
            shadowing_db: 0.0,
        },
    )
    .with_allocation(ChannelAllocation::RingStratified)
    .with_beacon_order(wsn_mac::BeaconOrder::new(3).expect("BO 3 valid"))
    .with_superframes(6)
    .with_replications(2);
    let engine = PolicyEngine::new(scenario).with_rounds(10).run_all_rounds();
    let runner = Runner::from_env();

    let static_trace = engine.run(&runner, &mut wsn_sim::StaticAllocation);
    let mut undamped = GreedyRebalance::new(2).with_tolerance(0.0);
    let undamped_trace = engine.run(&runner, &mut undamped);
    let mut damped = GreedyRebalance::new(2)
        .with_tolerance(0.0)
        .with_move_cost(0.05);
    let damped_trace = engine.run(&runner, &mut damped);

    // Zero tolerance without damping oscillates to the round budget.
    assert_eq!(undamped_trace.converged_at, None);
    assert!(undamped_trace
        .rounds
        .iter()
        .all(|r| r.round + 1 == 10 || r.moved > 0));
    // The damped run stabilizes mid-budget and stays stable.
    let settled = damped_trace
        .converged_at
        .expect("damped greedy must stabilize");
    assert!(settled < 9, "settled only at the budget's edge");
    assert!(damped_trace.rounds[settled..].iter().all(|r| r.moved == 0));
    // Damping does not cost the rebalancing win.
    assert!(
        damped_trace.final_round().worst_failure() < static_trace.final_round().worst_failure()
    );
}

/// The committed saved-scenario fixtures at the repository root.
fn fixture_batch() -> BatchSet {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    BatchSet::load_dir(&dir).expect("the committed fixture directory loads")
}

/// The batch service flattens every scenario's jobs onto one shared pool,
/// so its per-scenario records inherit the runner's contract: bit-identical
/// for 1, 2 and 4 worker threads across the whole committed fixture set.
#[test]
fn batch_of_fixtures_is_bit_identical_across_1_2_4_threads() {
    let set = fixture_batch();
    assert!(set.entries().len() >= 4, "the fixture set stays non-trivial");

    let mut sink = Vec::new();
    let serial = set.run(&Runner::with_threads(1), &mut sink).unwrap();
    for threads in [2, 4] {
        let parallel = set.run(&Runner::with_threads(threads), &mut Vec::new()).unwrap();
        assert_eq!(serial.records.len(), parallel.records.len());
        assert_eq!(serial.jobs, parallel.jobs, "threads={threads}");
        for (a, b) in serial.records.iter().zip(&parallel.records) {
            let context = format!("batch `{}` threads={threads}", a.name);
            assert_eq!(a.name, b.name, "{context}: record order");
            assert_eq!(a.seed, b.seed, "{context}: seed");
            assert_eq!(a.fingerprint, b.fingerprint, "{context}: fingerprint");
            let (ao, bo) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            assert_summaries_identical(&ao.overall, &bo.overall, &context);
            for (c, (x, y)) in ao.per_channel.iter().zip(&bo.per_channel).enumerate() {
                assert_summaries_identical(x, y, &format!("{context} ch{c}"));
            }
            assert_eq!(ao.gts_denied, bo.gts_denied, "{context}: gts denied");
        }
    }
}

/// Results are keyed by scenario, not by position: reversing the entry
/// order (as a reordered manifest would) changes nothing about any
/// scenario's record.
#[test]
fn batch_results_are_invariant_to_entry_ordering() {
    let forward = fixture_batch();
    let mut reversed_entries: Vec<_> = forward.entries().to_vec();
    reversed_entries.reverse();
    let reversed = BatchSet::from_entries(reversed_entries, None).unwrap();

    let runner = Runner::from_env();
    let a = forward.run(&runner, &mut Vec::new()).unwrap();
    let b = reversed.run(&runner, &mut Vec::new()).unwrap();
    assert_eq!(a.records.len(), b.records.len());
    for record in &a.records {
        let twin = b
            .records
            .iter()
            .find(|r| r.name == record.name)
            .unwrap_or_else(|| panic!("`{}` present in both orders", record.name));
        let context = format!("ordering `{}`", record.name);
        assert_eq!(record.seed, twin.seed, "{context}: seed");
        let (ro, to) = (
            record.outcome.as_ref().unwrap(),
            twin.outcome.as_ref().unwrap(),
        );
        assert_summaries_identical(&ro.overall, &to.overall, &context);
        for (c, (x, y)) in ro.per_channel.iter().zip(&to.per_channel).enumerate() {
            assert_summaries_identical(x, y, &format!("{context} ch{c}"));
        }
    }
}
