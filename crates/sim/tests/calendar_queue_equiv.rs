//! Randomized equivalence suite: the calendar queue must reproduce the
//! old `BinaryHeap<Reverse<(time, priority, seq)>>` pop order exactly —
//! the determinism contract every simulator result rests on.
//!
//! A reference heap queue (the pre-calendar implementation's semantics,
//! kept here verbatim as a model) runs side by side with the calendar
//! queue over randomized interleaved push/pop workloads: arbitrary
//! priorities, same-slot storms, drain-and-refill cycles, below-cursor
//! pushes and window growth. Every pop must agree on `(time, payload)`,
//! which pins FIFO order within equal `(slot, priority)` because payloads
//! are unique push indices.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use wsn_phy::noise::UniformSource;
use wsn_sim::events::{EventQueue, PRIORITY_CLASSES};
use wsn_sim::Xoshiro256StarStar;

/// The old implementation's ordering semantics: a binary heap over
/// explicit `(time, priority, insertion-sequence)` keys.
#[derive(Default)]
struct HeapQueue {
    heap: BinaryHeap<Reverse<(u64, u8, u64, u64)>>,
    seq: u64,
}

impl HeapQueue {
    fn push(&mut self, time: u64, priority: u8, payload: u64) {
        self.heap.push(Reverse((time, priority, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap
            .pop()
            .map(|Reverse((time, _, _, payload))| (time, payload))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Drives both queues through an identical randomized workload and
/// asserts pop-for-pop equality. `backdate_bias` pushes a fraction of
/// events *below* the highest time pushed so far — while the queue is
/// non-empty — exercising the calendar's slide-the-window-down branch
/// (and its grow-before-slide rebuild when the widened span overflows
/// the ring).
fn drive_equivalence(seed: u64, ops: usize, window: u64, pop_bias: f64, backdate_bias: f64) {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut calendar: EventQueue<u64> = EventQueue::new();
    let mut reference = HeapQueue::default();
    let mut payload = 0u64;
    // The simulators never schedule before the current time; mirror that
    // by keying pushes off the last popped time. `high` tracks the top of
    // the pushed range so backdated pushes land below the cursor.
    let mut now = 0u64;
    let mut high = 0u64;

    for op in 0..ops {
        let do_pop = reference.len() > 0 && rng.next_f64() < pop_bias;
        if do_pop {
            let a = calendar.pop();
            let b = reference.pop();
            assert_eq!(a, b, "seed={seed} op={op}: pop divergence");
            if let Some((t, _)) = a {
                now = t;
            }
        } else {
            // Cluster times to force same-slot ties (FIFO coverage) while
            // still exercising the whole window.
            let spread = if rng.next_u64() % 4 == 0 {
                rng.next_u64() % window
            } else {
                rng.next_u64() % 4
            };
            let time = if reference.len() > 0 && rng.next_f64() < backdate_bias {
                // Below everything pending (often below the calendar's
                // cursor): pops must still come out min-first.
                high.saturating_sub(1 + rng.next_u64() % window)
            } else {
                now + spread
            };
            let priority = (rng.next_u64() % PRIORITY_CLASSES as u64) as u8;
            calendar.push(time, priority, payload);
            reference.push(time, priority, payload);
            payload += 1;
            high = high.max(time);
        }
        assert_eq!(calendar.len(), reference.len(), "seed={seed} op={op}");
    }
    // Drain both completely.
    loop {
        let a = calendar.pop();
        let b = reference.pop();
        assert_eq!(a, b, "seed={seed}: drain divergence");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn pop_order_matches_heap_for_interleaved_workloads() {
    for seed in 0..16u64 {
        drive_equivalence(0xCA1E_0000 + seed, 4_000, 200, 0.45, 0.0);
    }
}

#[test]
fn pop_order_matches_heap_under_window_growth() {
    // Spreads far beyond the 256-slot default ring force ring growth while
    // buckets are populated.
    for seed in 0..8u64 {
        drive_equivalence(0x60_0000 + seed, 2_000, 50_000, 0.40, 0.0);
    }
}

#[test]
fn pop_order_matches_heap_under_drain_refill_cycles() {
    // A pop-heavy mix keeps emptying the queue, resetting the window
    // origin to arbitrary new epochs.
    for seed in 0..8u64 {
        drive_equivalence(0xD8A1_0000 + seed, 3_000, 1_000, 0.75, 0.0);
    }
}

#[test]
fn pop_order_matches_heap_for_same_slot_storms() {
    // Every push lands within 4 slots of the cursor: maximal tie density,
    // the FIFO-within-bucket stress case.
    for seed in 0..8u64 {
        drive_equivalence(0x5707_0000 + seed, 4_000, 1, 0.5, 0.0);
    }
}

#[test]
fn pop_order_matches_heap_with_below_cursor_pushes() {
    // A fifth of the pushes land below everything pending while the queue
    // is non-empty, driving the calendar's slide-the-window-down branch;
    // the wide spread also forces grow-before-slide rebuilds.
    for seed in 0..8u64 {
        drive_equivalence(0xBAC_0000 + seed, 3_000, 2_000, 0.45, 0.2);
    }
    // Narrow spread: backdating without growth (pure cursor slides).
    for seed in 0..8u64 {
        drive_equivalence(0xBAC_1000 + seed, 3_000, 100, 0.45, 0.3);
    }
}

/// The CFP priority class (the fifth, added for GTS transmissions) must
/// obey the same `(time, class, insertion)` contract as the original
/// four: class-4-heavy workloads mixing CFP events with same-slot CAP
/// storms pop in reference-heap order.
#[test]
fn pop_order_matches_heap_for_cfp_class_storms() {
    for seed in 0..8u64 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xCF9_0000 + seed);
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut reference = HeapQueue::default();
        let mut payload = 0u64;
        let mut now = 0u64;
        for _ in 0..3_000 {
            if reference.len() > 0 && rng.next_f64() < 0.45 {
                let a = calendar.pop();
                let b = reference.pop();
                assert_eq!(a, b, "seed={seed}");
                if let Some((t, _)) = a {
                    now = t;
                }
            } else {
                let time = now + rng.next_u64() % 3;
                // Half the pushes land in the CFP class, the rest spread
                // over the CAP classes — maximal cross-class tie density.
                let priority = if rng.next_u64() % 2 == 0 {
                    (PRIORITY_CLASSES - 1) as u8
                } else {
                    (rng.next_u64() % (PRIORITY_CLASSES as u64 - 1)) as u8
                };
                calendar.push(time, priority, payload);
                reference.push(time, priority, payload);
                payload += 1;
            }
        }
        loop {
            let a = calendar.pop();
            let b = reference.pop();
            assert_eq!(a, b, "seed={seed}: drain");
            if a.is_none() {
                break;
            }
        }
    }
}

/// Repeated `grow_ring` relinks while every bucket class is populated:
/// each escalation round doubles the pushed span (256 → 512 → … slots),
/// forcing the ring to grow with live FIFO chains in flight. Every round
/// lands a full storm of all five priority classes exactly at the old
/// window boundary (the last slot the previous ring could hold) and just
/// past it, so the relink must preserve `(time, class, insertion)` order
/// for buckets that move between ring positions.
#[test]
fn pop_order_matches_heap_across_repeated_ring_growth() {
    for seed in 0..8u64 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x9085_0000 + seed);
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut reference = HeapQueue::default();
        let mut payload = 0u64;
        let mut push = |cal: &mut EventQueue<u64>, rf: &mut HeapQueue, t: u64, p: u8| {
            cal.push(t, p, payload);
            rf.push(t, p, payload);
            payload += 1;
        };

        // The default ring holds 256 slots; escalate the span through six
        // doublings so growth fires repeatedly on a populated queue.
        let mut span = 256u64;
        for _round in 0..6 {
            let boundary = span - 1;
            for class in 0..PRIORITY_CLASSES as u8 {
                // Two pushes per class at the boundary slot itself (FIFO
                // ties that must survive the relink) …
                push(&mut calendar, &mut reference, boundary, class);
                push(&mut calendar, &mut reference, boundary, class);
                // … one just past it (the push that triggers growth) …
                push(&mut calendar, &mut reference, boundary + 1, class);
                // … and scattered filler throughout the widened span.
                for _ in 0..3 {
                    let t = rng.next_u64() % (span * 2);
                    push(&mut calendar, &mut reference, t, class);
                }
            }
            // Partially drain so the cursor advances into the grown ring
            // while later rounds' chains are still linked.
            for _ in 0..10 {
                let a = calendar.pop();
                let b = reference.pop();
                assert_eq!(a, b, "seed={seed} span={span}: pop divergence");
            }
            assert_eq!(calendar.len(), reference.len(), "seed={seed} span={span}");
            span *= 2;
        }
        loop {
            let a = calendar.pop();
            let b = reference.pop();
            assert_eq!(a, b, "seed={seed}: drain divergence");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn pop_order_matches_heap_for_all_pushes_then_all_pops() {
    // Arbitrary (time, priority) pushed up front — including pushes below
    // earlier times while the queue is non-empty — then drained.
    for seed in 0..8u64 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xA11_0000 + seed);
        let mut calendar: EventQueue<u64> = EventQueue::new();
        let mut reference = HeapQueue::default();
        for payload in 0..1_500u64 {
            let time = rng.next_u64() % 10_000;
            let priority = (rng.next_u64() % PRIORITY_CLASSES as u64) as u8;
            calendar.push(time, priority, payload);
            reference.push(time, priority, payload);
        }
        loop {
            let a = calendar.pop();
            let b = reference.pop();
            assert_eq!(a, b, "seed={seed}");
            if a.is_none() {
                break;
            }
        }
    }
}
