//! Seedable, splittable pseudo-random number generation.
//!
//! The simulator needs reproducible, statistically sound randomness with
//! cheap per-node sub-streams. [`Xoshiro256StarStar`] (Blackman & Vigna)
//! seeded through SplitMix64 provides both without external dependencies;
//! it also implements [`wsn_phy::noise::UniformSource`] so the same stream
//! can drive CSMA backoffs, arrival offsets and chip-level noise.

use wsn_phy::noise::UniformSource;

/// The xoshiro256★★ generator.
///
/// # Examples
///
/// ```
/// use wsn_sim::Xoshiro256StarStar;
///
/// let mut a = Xoshiro256StarStar::seed_from_u64(7);
/// let mut b = Xoshiro256StarStar::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent per-node sub-streams:
/// let mut n0 = a.split(0);
/// let mut n1 = a.split(1);
/// assert_ne!(n0.next_u64(), n1.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the generator from a single word via SplitMix64 (as the
    /// authors of xoshiro recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        // All-zero state is invalid; SplitMix64 cannot produce it from any
        // seed, but keep the guard for defense in depth.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256StarStar { s }
    }

    /// Derives an independent sub-stream for entity `stream` (node index,
    /// superframe, …) without perturbing this generator.
    pub fn split(&self, stream: u64) -> Xoshiro256StarStar {
        // Mix the stream id into the state through SplitMix64 re-seeding.
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        Xoshiro256StarStar::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32` in `0..n` (Lemire's method, bias-free for the widths
    /// used here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range_u32(&mut self, n: u32) -> u32 {
        assert!(n > 0, "range upper bound must be positive");
        ((self.next_u64() >> 32).wrapping_mul(n as u64) >> 32) as u32
    }

    /// Uniform `usize` in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n` does not fit in `u32`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(u32::try_from(n).is_ok(), "index range too large");
        self.range_u32(n as u32) as usize
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!(!p.is_nan(), "probability must not be NaN");
        self.next_f64() < p
    }
}

impl UniformSource for Xoshiro256StarStar {
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_is_stable() {
        // Regression pin: changing the generator silently would invalidate
        // every recorded experiment.
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        // And differs from a different seed.
        let mut rng3 = Xoshiro256StarStar::seed_from_u64(1);
        let other: Vec<u64> = (0..4).map(|_| rng3.next_u64()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_half_mean() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn range_u32_uniformity() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.range_u32(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let root = Xoshiro256StarStar::seed_from_u64(42);
        let mut a = root.split(0);
        let mut b = root.split(1);
        // Crude decorrelation check: agreement frequency of booleans ≈ 1/2.
        let agree = (0..10_000)
            .filter(|_| (a.next_u64() & 1) == (b.next_u64() & 1))
            .count();
        assert!((agree as f64 / 10_000.0 - 0.5).abs() < 0.03);
        // Splitting is pure: same stream id twice gives the same stream.
        let mut c = root.split(0);
        let mut d = root.split(0);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    #[should_panic(expected = "upper bound must be positive")]
    fn zero_range_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let _ = rng.range_u32(0);
    }
}
