//! Streaming consumers for the contention engine's event stream.
//!
//! The simulators historically materialized every [`AttemptRecord`] and
//! [`TransactionRecord`] into [`SimTrace`] `Vec`s and reduced them
//! afterwards. For large replication sweeps that allocation is pure
//! overhead: every figure only needs a handful of online statistics. A
//! [`TraceSink`] receives each record the moment its outcome is final, so
//! a reducer can fold it immediately:
//!
//! * [`TraceCollector`] — the original behaviour: collect everything into
//!   a [`SimTrace`] (kept for trace-level analyses and tests);
//! * [`StatsSink`] — the online reducer: feeds a
//!   [`ContentionAccumulator`] plus the transaction-level tallies without
//!   allocating. Its output is bit-identical to collecting a trace and
//!   reducing it afterwards, because records arrive in exactly the order
//!   they would have been pushed.

use std::fs;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use wsn_units::Probability;

use crate::cfp::{DownlinkOutcome, DownlinkRecord, GtsRecord};
use crate::contention::{AttemptOutcome, AttemptRecord, SimTrace, TransactionRecord, SLOT_US};
use crate::faults::{FaultKind, FaultRecord};
use crate::rng::Xoshiro256StarStar;
use crate::stats::{Accumulator, ContentionAccumulator, ContentionStats, Counter};

/// Receives contention records as the engine finalizes them.
///
/// Records are delivered in deterministic engine order (the order the
/// trace `Vec`s would have been filled), so any fold over a sink is as
/// reproducible as the trace itself.
pub trait TraceSink {
    /// One contention procedure finished (transmission started, collided,
    /// was corrupted, or access failed).
    fn on_attempt(&mut self, record: &AttemptRecord);
    /// One application-level transaction concluded.
    fn on_transaction(&mut self, record: &TransactionRecord);
    /// An arrival was skipped because the node was still busy.
    fn on_overrun(&mut self) {}
    /// One GTS (contention-free) transmission concluded.
    fn on_gts(&mut self, _record: &GtsRecord) {}
    /// One downlink poll concluded.
    fn on_downlink(&mut self, _record: &DownlinkRecord) {}
    /// One fault event (death, missed beacon, join attempt, …) occurred.
    fn on_fault(&mut self, _record: &FaultRecord) {}
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        (**self).on_attempt(record);
    }
    fn on_transaction(&mut self, record: &TransactionRecord) {
        (**self).on_transaction(record);
    }
    fn on_overrun(&mut self) {
        (**self).on_overrun();
    }
    fn on_gts(&mut self, record: &GtsRecord) {
        (**self).on_gts(record);
    }
    fn on_downlink(&mut self, record: &DownlinkRecord) {
        (**self).on_downlink(record);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        (**self).on_fault(record);
    }
}

/// Fans records out to two sinks (e.g. an online reducer plus a trace
/// collector).
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        self.0.on_attempt(record);
        self.1.on_attempt(record);
    }
    fn on_transaction(&mut self, record: &TransactionRecord) {
        self.0.on_transaction(record);
        self.1.on_transaction(record);
    }
    fn on_overrun(&mut self) {
        self.0.on_overrun();
        self.1.on_overrun();
    }
    fn on_gts(&mut self, record: &GtsRecord) {
        self.0.on_gts(record);
        self.1.on_gts(record);
    }
    fn on_downlink(&mut self, record: &DownlinkRecord) {
        self.0.on_downlink(record);
        self.1.on_downlink(record);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        self.0.on_fault(record);
        self.1.on_fault(record);
    }
}

/// Collects every record into a [`SimTrace`] — the pre-streaming
/// behaviour, still used by trace-level analyses.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    trace: SimTrace,
}

impl TraceCollector {
    /// Creates a collector; `superframe_slots` is carried into the trace.
    pub fn new(superframe_slots: u64) -> Self {
        TraceCollector {
            trace: SimTrace {
                attempts: Vec::new(),
                transactions: Vec::new(),
                gts: Vec::new(),
                downlinks: Vec::new(),
                faults: Vec::new(),
                overruns: 0,
                superframe_slots,
            },
        }
    }

    /// Consumes the collector, yielding the trace.
    pub fn into_trace(self) -> SimTrace {
        self.trace
    }
}

impl TraceSink for TraceCollector {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        self.trace.attempts.push(*record);
    }
    fn on_transaction(&mut self, record: &TransactionRecord) {
        self.trace.transactions.push(*record);
    }
    fn on_overrun(&mut self) {
        self.trace.overruns += 1;
    }
    fn on_gts(&mut self, record: &GtsRecord) {
        self.trace.gts.push(*record);
    }
    fn on_downlink(&mut self, record: &DownlinkRecord) {
        self.trace.downlinks.push(*record);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        self.trace.faults.push(*record);
    }
}

/// Online reducer: folds the event stream straight into the statistics the
/// figures consume, allocating nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSink {
    /// Per-procedure contention statistics (Figure 6 material).
    pub contention: ContentionAccumulator,
    /// Failed-transaction counter (`Pr_fail` numerator/denominator).
    pub failures: Counter,
    /// Attempts per transaction.
    pub attempts: Accumulator,
    /// Delivery delay in superframes, over delivered transactions.
    pub delivery_superframes: Accumulator,
    /// Arrivals skipped because the node was still busy.
    pub overruns: u64,
    /// Failed GTS transmissions over GTS transmissions (CFP traffic; GTS
    /// deliveries also fold into [`failures`](Self::failures),
    /// [`attempts`](Self::attempts) and
    /// [`delivery_superframes`](Self::delivery_superframes) so CAP-only
    /// and GTS scenarios compare on the same transaction statistics).
    pub gts_failures: Counter,
    /// Undelivered downlink polls over non-deferred polls.
    pub downlink_failures: Counter,
    /// Downlink polls deferred because the node was busy.
    pub downlink_deferred: u64,
    /// Node deaths injected by the fault plan.
    pub deaths: u64,
    /// Missed beacons spent listening (orphan-scan windows of alive
    /// nodes during coordinator outages).
    pub orphan_scans: u64,
    /// Re-association exchanges (hit = the coordinator's response got
    /// through).
    pub join_attempts: Counter,
    /// Death → successful re-association latency in superframes.
    pub reassoc_superframes: Accumulator,
    /// Nodes that exhausted their join-retry budget and went dormant.
    pub dormant_nodes: u64,
}

impl StatsSink {
    /// Creates an empty reducer.
    pub fn new() -> Self {
        StatsSink::default()
    }

    /// Merges another reducer (exact; fixed merge order stays
    /// bit-deterministic).
    pub fn merge(&mut self, other: &StatsSink) {
        self.contention.merge(&other.contention);
        self.failures.merge(&other.failures);
        self.attempts.merge(&other.attempts);
        self.delivery_superframes.merge(&other.delivery_superframes);
        self.overruns += other.overruns;
        self.gts_failures.merge(&other.gts_failures);
        self.downlink_failures.merge(&other.downlink_failures);
        self.downlink_deferred += other.downlink_deferred;
        self.deaths += other.deaths;
        self.orphan_scans += other.orphan_scans;
        self.join_attempts.merge(&other.join_attempts);
        self.reassoc_superframes.merge(&other.reassoc_superframes);
        self.dormant_nodes += other.dormant_nodes;
    }

    /// The contention statistics (identical to
    /// [`SimTrace::contention_stats`] on the equivalent trace).
    pub fn contention_stats(&self) -> ContentionStats {
        self.contention.finish()
    }

    /// Fraction of transactions that failed.
    pub fn failure_ratio(&self) -> Probability {
        self.failures.ratio()
    }

    /// Mean attempts per transaction.
    pub fn mean_attempts(&self) -> f64 {
        self.attempts.mean()
    }

    /// Mean delivery delay in superframes over delivered packets.
    pub fn mean_delivery_superframes(&self) -> f64 {
        self.delivery_superframes.mean()
    }
}

impl TraceSink for StatsSink {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        self.contention
            .contention_us
            .push(record.contention_slots as f64 * SLOT_US as f64);
        self.contention.ccas.push(record.ccas as f64);
        self.contention
            .access_failures
            .observe(record.outcome == AttemptOutcome::AccessFailure);
        if record.outcome != AttemptOutcome::AccessFailure {
            self.contention
                .collisions
                .observe(record.outcome == AttemptOutcome::Collided);
        }
    }

    fn on_transaction(&mut self, record: &TransactionRecord) {
        self.failures.observe(!record.delivered);
        self.attempts.push(record.attempts as f64);
        if record.delivered {
            self.delivery_superframes
                .push(record.superframes_waited as f64 + 1.0);
        }
    }

    fn on_overrun(&mut self) {
        self.overruns += 1;
    }

    fn on_gts(&mut self, record: &GtsRecord) {
        self.gts_failures.observe(!record.delivered);
        // A GTS transmission is a one-attempt transaction: fold it into
        // the shared transaction statistics too.
        self.failures.observe(!record.delivered);
        self.attempts.push(1.0);
        if record.delivered {
            self.delivery_superframes
                .push(record.superframes_waited as f64 + 1.0);
        }
    }

    fn on_downlink(&mut self, record: &DownlinkRecord) {
        if record.outcome == DownlinkOutcome::Deferred {
            self.downlink_deferred += 1;
        } else {
            self.downlink_failures
                .observe(record.outcome != DownlinkOutcome::Delivered);
        }
    }

    fn on_fault(&mut self, record: &FaultRecord) {
        match record.kind {
            FaultKind::Death => self.deaths += 1,
            FaultKind::MissedBeacon { listened } => {
                if listened {
                    self.orphan_scans += 1;
                }
            }
            FaultKind::JoinAttempt { success } => self.join_attempts.observe(success),
            FaultKind::Reassociated {
                latency_superframes,
            } => self.reassoc_superframes.push(latency_superframes as f64),
            FaultKind::Dormant => self.dormant_nodes += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Result sinks: where the batch farm's JSONL records go
// ---------------------------------------------------------------------------

/// Delivery counters a [`ResultSink`] accumulates over its lifetime.
///
/// All fields are zero for sinks that cannot fail ([`WriteSink`]); the
/// `batch_run` CLI folds them into `BENCH_batch.json` so a farm run leaves a
/// trail of how flaky its consumer was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkCounters {
    /// Connection attempts that failed (before backoff + retry).
    pub connect_retries: u64,
    /// Successful connections after the first one.
    pub reconnects: u64,
    /// Lines diverted to the on-disk overflow queue while the peer was down.
    pub spilled_lines: u64,
    /// Overflow-queue lines later delivered to the peer.
    pub drained_lines: u64,
}

/// Consumes the batch farm's JSONL record stream, one line per call.
///
/// This lifts the raw `&mut dyn Write` the batch service used to take into a
/// trait that can retry, reconnect and spill: [`WriteSink`] is the plain
/// adapter for files and stdout, [`TcpSink`] streams to a socket with
/// bounded exponential backoff and an optional on-disk overflow queue.
///
/// `line` never contains a newline; the sink supplies framing. An `Err`
/// from [`emit`](Self::emit) means the line could not be delivered *or*
/// durably queued — the batch aborts with [`BatchError::Sink`]
/// (see [`crate::batch::BatchError`]).
pub trait ResultSink {
    /// Delivers (or durably queues) one JSONL record.
    fn emit(&mut self, line: &str) -> io::Result<()>;

    /// Flushes buffered state after the last record. Called once by the
    /// batch service; a `TcpSink` uses it for a final overflow drain.
    fn done(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Delivery counters accumulated so far.
    fn counters(&self) -> SinkCounters {
        SinkCounters::default()
    }
}

/// The plain adapter: newline-frames every record into any [`Write`]
/// (file, stdout lock, `Vec<u8>` in tests).
#[derive(Debug)]
pub struct WriteSink<W: Write> {
    inner: W,
}

impl<W: Write> WriteSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        WriteSink { inner }
    }

    /// Consumes the sink, yielding the writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> ResultSink for WriteSink<W> {
    fn emit(&mut self, line: &str) -> io::Result<()> {
        self.inner.write_all(line.as_bytes())?;
        self.inner.write_all(b"\n")
    }

    fn done(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Streams records to a TCP peer, surviving a flaky one.
///
/// * **Backoff** — reconnects with bounded exponential backoff; the jitter
///   is drawn from a seeded [`Xoshiro256StarStar`] so a farm run's retry
///   schedule is reproducible from the batch seed ([`with_seed`](Self::with_seed)).
/// * **Timeouts** — write (and, in ack mode, read) timeouts so a wedged
///   peer cannot hang the farm ([`with_write_timeout`](Self::with_write_timeout)).
/// * **Overflow queue** — with [`with_overflow`](Self::with_overflow), a
///   down peer never blocks the farm: lines spill to an on-disk queue and
///   drain, in order, on the next successful connect. Reconnect attempts
///   are time-gated by the backoff schedule so at most one connect is
///   tried per backoff window. Without an overflow path, `emit` blocks —
///   sleeping through the backoff schedule — and gives up with the last
///   I/O error after the attempt budget ([`with_backoff`](Self::with_backoff)).
/// * **Acks** — with [`with_ack`](Self::with_ack), the sink reads one byte
///   back per line before considering it delivered. TCP alone buffers
///   writes, so a peer that vanishes can silently eat tail lines; the ack
///   turns delivery into at-least-once (a line is retried unless the peer
///   confirmed it — consumers must treat duplicate records as re-sends,
///   which the journal's fingerprint makes trivial).
#[derive(Debug)]
pub struct TcpSink {
    addr: String,
    stream: Option<TcpStream>,
    rng: Xoshiro256StarStar,
    ack: bool,
    write_timeout: Duration,
    backoff_base: Duration,
    backoff_max: Duration,
    attempt_budget: u32,
    overflow: Option<PathBuf>,
    next_connect_at: Option<Instant>,
    consecutive_failures: u32,
    connected_once: bool,
    counters: SinkCounters,
}

impl TcpSink {
    /// Creates a sink for `addr` (`host:port`) with default knobs: no ack,
    /// no overflow queue, 5 s write timeout, 50 ms–2 s backoff, 5 attempts.
    pub fn new(addr: impl Into<String>) -> Self {
        TcpSink {
            addr: addr.into(),
            stream: None,
            rng: Xoshiro256StarStar::seed_from_u64(0),
            ack: false,
            write_timeout: Duration::from_secs(5),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            attempt_budget: 5,
            overflow: None,
            next_connect_at: None,
            consecutive_failures: 0,
            connected_once: false,
            counters: SinkCounters::default(),
        }
    }

    /// Seeds the backoff jitter (pass the batch seed for a reproducible
    /// retry schedule).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = Xoshiro256StarStar::seed_from_u64(seed);
        self
    }

    /// Requires a 1-byte ack from the peer per line (at-least-once
    /// delivery).
    pub fn with_ack(mut self, ack: bool) -> Self {
        self.ack = ack;
        self
    }

    /// Spills to `path` while the peer is down instead of blocking the
    /// farm; drained on reconnect.
    pub fn with_overflow(mut self, path: impl Into<PathBuf>) -> Self {
        self.overflow = Some(path.into());
        self
    }

    /// Write (and ack-read) timeout per line.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Backoff schedule: delays grow `base, 2·base, 4·base, …` capped at
    /// `max` (each halved-then-jittered deterministically); without an
    /// overflow queue, `emit` gives up after `attempts` tries.
    pub fn with_backoff(mut self, base: Duration, max: Duration, attempts: u32) -> Self {
        self.backoff_base = base;
        self.backoff_max = max;
        self.attempt_budget = attempts.max(1);
        self
    }

    /// Delay before retry number `attempt` (1-based): exponential, capped,
    /// jittered into `[raw/2, raw]` from the seeded generator.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let base_ms = self.backoff_base.as_millis().max(1) as u64;
        let max_ms = self.backoff_max.as_millis().max(1) as u64;
        let raw = base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(max_ms)
            .max(1);
        let half = raw / 2;
        let jitter = self.rng.next_u64() % (raw - half + 1);
        Duration::from_millis(half + jitter)
    }

    fn disconnect(&mut self) {
        self.stream = None;
    }

    /// Connects if disconnected, then drains any overflow backlog. On a
    /// fresh connect failure the `connect_retries` counter ticks.
    fn ensure_stream(&mut self) -> io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        match TcpStream::connect(&self.addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(self.write_timeout));
                if self.ack {
                    let _ = stream.set_read_timeout(Some(self.write_timeout));
                }
                self.stream = Some(stream);
                if self.connected_once {
                    self.counters.reconnects += 1;
                } else {
                    self.connected_once = true;
                }
                self.consecutive_failures = 0;
                self.next_connect_at = None;
                self.drain_overflow()
            }
            Err(e) => {
                self.counters.connect_retries += 1;
                Err(e)
            }
        }
    }

    /// Writes one framed line (and reads the ack); disconnects on any I/O
    /// error so the next attempt reconnects.
    fn send_raw(&mut self, line: &str) -> io::Result<()> {
        let stream = match self.stream.as_mut() {
            Some(s) => s,
            None => return Err(io::Error::new(io::ErrorKind::NotConnected, "sink disconnected")),
        };
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        let sent = stream.write_all(&framed).and_then(|()| stream.flush());
        if let Err(e) = sent {
            self.disconnect();
            return Err(e);
        }
        if self.ack {
            let mut ack = [0u8; 1];
            if let Err(e) = stream.read_exact(&mut ack) {
                self.disconnect();
                return Err(e);
            }
        }
        Ok(())
    }

    fn try_send(&mut self, line: &str) -> io::Result<()> {
        self.ensure_stream()?;
        self.send_raw(line)
    }

    /// Appends one line to the overflow queue (fsync'd so a subsequent
    /// crash cannot lose it).
    fn spill(&mut self, line: &str) -> io::Result<()> {
        let path = self
            .overflow
            .as_ref()
            .expect("spill requires an overflow path");
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        self.counters.spilled_lines += 1;
        Ok(())
    }

    /// Sends every queued line in order; on a mid-drain failure the unsent
    /// tail is written back so nothing is lost.
    fn drain_overflow(&mut self) -> io::Result<()> {
        let path = match self.overflow.clone() {
            Some(p) => p,
            None => return Ok(()),
        };
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return fs::remove_file(&path);
        }
        for (i, line) in lines.iter().enumerate() {
            if let Err(e) = self.send_raw(line) {
                // Keep only the unsent tail queued.
                let tail = lines[i..].join("\n");
                fs::write(&path, format!("{tail}\n"))?;
                return Err(e);
            }
            self.counters.drained_lines += 1;
        }
        fs::remove_file(&path)
    }

    /// True when the overflow queue still holds undelivered lines.
    pub fn has_backlog(&self) -> bool {
        self.overflow
            .as_ref()
            .map(|p| fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
            .unwrap_or(false)
    }
}

impl ResultSink for TcpSink {
    fn emit(&mut self, line: &str) -> io::Result<()> {
        if self.overflow.is_some() {
            // Never block the farm: respect the backoff time gate, spill
            // while the peer is down, drain on the next connect.
            if self.stream.is_none() {
                if let Some(gate) = self.next_connect_at {
                    if Instant::now() < gate {
                        return self.spill(line);
                    }
                }
            }
            match self.try_send(line) {
                Ok(()) => Ok(()),
                Err(_) => {
                    self.disconnect();
                    self.consecutive_failures += 1;
                    let delay = self.backoff_delay(self.consecutive_failures);
                    self.next_connect_at = Some(Instant::now() + delay);
                    self.spill(line)
                }
            }
        } else {
            // Blocking mode: sleep through the backoff schedule, give up
            // with the last error once the attempt budget is spent.
            let mut attempt = 0u32;
            loop {
                match self.try_send(line) {
                    Ok(()) => return Ok(()),
                    Err(e) => {
                        self.disconnect();
                        attempt += 1;
                        if attempt >= self.attempt_budget {
                            return Err(e);
                        }
                        let delay = self.backoff_delay(attempt);
                        thread::sleep(delay);
                    }
                }
            }
        }
    }

    fn done(&mut self) -> io::Result<()> {
        // Final drain attempt for the overflow backlog; an unreachable
        // peer is not an error here — the queue file survives on disk.
        if self.has_backlog() {
            let mut attempt = 0u32;
            while self.has_backlog() && attempt < self.attempt_budget {
                self.next_connect_at = None;
                if self.try_send_nothing().is_ok() && !self.has_backlog() {
                    break;
                }
                attempt += 1;
                let delay = self.backoff_delay(attempt);
                thread::sleep(delay);
            }
        }
        if let Some(stream) = self.stream.as_mut() {
            stream.flush()?;
        }
        Ok(())
    }

    fn counters(&self) -> SinkCounters {
        self.counters
    }
}

impl TcpSink {
    /// Connect-and-drain without a payload line (used by the final drain).
    fn try_send_nothing(&mut self) -> io::Result<()> {
        self.ensure_stream()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::{run_channel_sim, ChannelSimConfig};

    fn cfg() -> ChannelSimConfig {
        let mut c = ChannelSimConfig::figure6(50, 0.4, 77);
        c.superframes = 8;
        c
    }

    #[test]
    fn streaming_matches_trace_reduction() {
        let trace = run_channel_sim(&cfg(), |_| false);
        let mut sink = StatsSink::new();
        trace.replay(&mut sink);
        let streamed = sink.contention_stats();
        let reduced = trace.contention_stats();
        assert_eq!(streamed, reduced);
        assert_eq!(sink.failure_ratio(), trace.transaction_failure_ratio());
        assert_eq!(sink.mean_attempts(), trace.mean_attempts());
        assert_eq!(
            sink.mean_delivery_superframes(),
            trace.mean_delivery_superframes()
        );
        assert_eq!(sink.overruns, trace.overruns);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let trace = run_channel_sim(&cfg(), |_| false);
        let mut tee = TeeSink(
            StatsSink::new(),
            TraceCollector::new(trace.superframe_slots),
        );
        trace.replay(&mut tee);
        let TeeSink(stats, collector) = tee;
        let copy = collector.into_trace();
        assert_eq!(copy.attempts, trace.attempts);
        assert_eq!(copy.transactions, trace.transactions);
        assert_eq!(stats.contention_stats(), trace.contention_stats());
    }
}
