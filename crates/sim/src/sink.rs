//! Streaming consumers for the contention engine's event stream.
//!
//! The simulators historically materialized every [`AttemptRecord`] and
//! [`TransactionRecord`] into [`SimTrace`] `Vec`s and reduced them
//! afterwards. For large replication sweeps that allocation is pure
//! overhead: every figure only needs a handful of online statistics. A
//! [`TraceSink`] receives each record the moment its outcome is final, so
//! a reducer can fold it immediately:
//!
//! * [`TraceCollector`] — the original behaviour: collect everything into
//!   a [`SimTrace`] (kept for trace-level analyses and tests);
//! * [`StatsSink`] — the online reducer: feeds a
//!   [`ContentionAccumulator`] plus the transaction-level tallies without
//!   allocating. Its output is bit-identical to collecting a trace and
//!   reducing it afterwards, because records arrive in exactly the order
//!   they would have been pushed.

use wsn_units::Probability;

use crate::cfp::{DownlinkOutcome, DownlinkRecord, GtsRecord};
use crate::contention::{AttemptOutcome, AttemptRecord, SimTrace, TransactionRecord, SLOT_US};
use crate::faults::{FaultKind, FaultRecord};
use crate::stats::{Accumulator, ContentionAccumulator, ContentionStats, Counter};

/// Receives contention records as the engine finalizes them.
///
/// Records are delivered in deterministic engine order (the order the
/// trace `Vec`s would have been filled), so any fold over a sink is as
/// reproducible as the trace itself.
pub trait TraceSink {
    /// One contention procedure finished (transmission started, collided,
    /// was corrupted, or access failed).
    fn on_attempt(&mut self, record: &AttemptRecord);
    /// One application-level transaction concluded.
    fn on_transaction(&mut self, record: &TransactionRecord);
    /// An arrival was skipped because the node was still busy.
    fn on_overrun(&mut self) {}
    /// One GTS (contention-free) transmission concluded.
    fn on_gts(&mut self, _record: &GtsRecord) {}
    /// One downlink poll concluded.
    fn on_downlink(&mut self, _record: &DownlinkRecord) {}
    /// One fault event (death, missed beacon, join attempt, …) occurred.
    fn on_fault(&mut self, _record: &FaultRecord) {}
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        (**self).on_attempt(record);
    }
    fn on_transaction(&mut self, record: &TransactionRecord) {
        (**self).on_transaction(record);
    }
    fn on_overrun(&mut self) {
        (**self).on_overrun();
    }
    fn on_gts(&mut self, record: &GtsRecord) {
        (**self).on_gts(record);
    }
    fn on_downlink(&mut self, record: &DownlinkRecord) {
        (**self).on_downlink(record);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        (**self).on_fault(record);
    }
}

/// Fans records out to two sinks (e.g. an online reducer plus a trace
/// collector).
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        self.0.on_attempt(record);
        self.1.on_attempt(record);
    }
    fn on_transaction(&mut self, record: &TransactionRecord) {
        self.0.on_transaction(record);
        self.1.on_transaction(record);
    }
    fn on_overrun(&mut self) {
        self.0.on_overrun();
        self.1.on_overrun();
    }
    fn on_gts(&mut self, record: &GtsRecord) {
        self.0.on_gts(record);
        self.1.on_gts(record);
    }
    fn on_downlink(&mut self, record: &DownlinkRecord) {
        self.0.on_downlink(record);
        self.1.on_downlink(record);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        self.0.on_fault(record);
        self.1.on_fault(record);
    }
}

/// Collects every record into a [`SimTrace`] — the pre-streaming
/// behaviour, still used by trace-level analyses.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    trace: SimTrace,
}

impl TraceCollector {
    /// Creates a collector; `superframe_slots` is carried into the trace.
    pub fn new(superframe_slots: u64) -> Self {
        TraceCollector {
            trace: SimTrace {
                attempts: Vec::new(),
                transactions: Vec::new(),
                gts: Vec::new(),
                downlinks: Vec::new(),
                faults: Vec::new(),
                overruns: 0,
                superframe_slots,
            },
        }
    }

    /// Consumes the collector, yielding the trace.
    pub fn into_trace(self) -> SimTrace {
        self.trace
    }
}

impl TraceSink for TraceCollector {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        self.trace.attempts.push(*record);
    }
    fn on_transaction(&mut self, record: &TransactionRecord) {
        self.trace.transactions.push(*record);
    }
    fn on_overrun(&mut self) {
        self.trace.overruns += 1;
    }
    fn on_gts(&mut self, record: &GtsRecord) {
        self.trace.gts.push(*record);
    }
    fn on_downlink(&mut self, record: &DownlinkRecord) {
        self.trace.downlinks.push(*record);
    }
    fn on_fault(&mut self, record: &FaultRecord) {
        self.trace.faults.push(*record);
    }
}

/// Online reducer: folds the event stream straight into the statistics the
/// figures consume, allocating nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsSink {
    /// Per-procedure contention statistics (Figure 6 material).
    pub contention: ContentionAccumulator,
    /// Failed-transaction counter (`Pr_fail` numerator/denominator).
    pub failures: Counter,
    /// Attempts per transaction.
    pub attempts: Accumulator,
    /// Delivery delay in superframes, over delivered transactions.
    pub delivery_superframes: Accumulator,
    /// Arrivals skipped because the node was still busy.
    pub overruns: u64,
    /// Failed GTS transmissions over GTS transmissions (CFP traffic; GTS
    /// deliveries also fold into [`failures`](Self::failures),
    /// [`attempts`](Self::attempts) and
    /// [`delivery_superframes`](Self::delivery_superframes) so CAP-only
    /// and GTS scenarios compare on the same transaction statistics).
    pub gts_failures: Counter,
    /// Undelivered downlink polls over non-deferred polls.
    pub downlink_failures: Counter,
    /// Downlink polls deferred because the node was busy.
    pub downlink_deferred: u64,
    /// Node deaths injected by the fault plan.
    pub deaths: u64,
    /// Missed beacons spent listening (orphan-scan windows of alive
    /// nodes during coordinator outages).
    pub orphan_scans: u64,
    /// Re-association exchanges (hit = the coordinator's response got
    /// through).
    pub join_attempts: Counter,
    /// Death → successful re-association latency in superframes.
    pub reassoc_superframes: Accumulator,
    /// Nodes that exhausted their join-retry budget and went dormant.
    pub dormant_nodes: u64,
}

impl StatsSink {
    /// Creates an empty reducer.
    pub fn new() -> Self {
        StatsSink::default()
    }

    /// Merges another reducer (exact; fixed merge order stays
    /// bit-deterministic).
    pub fn merge(&mut self, other: &StatsSink) {
        self.contention.merge(&other.contention);
        self.failures.merge(&other.failures);
        self.attempts.merge(&other.attempts);
        self.delivery_superframes.merge(&other.delivery_superframes);
        self.overruns += other.overruns;
        self.gts_failures.merge(&other.gts_failures);
        self.downlink_failures.merge(&other.downlink_failures);
        self.downlink_deferred += other.downlink_deferred;
        self.deaths += other.deaths;
        self.orphan_scans += other.orphan_scans;
        self.join_attempts.merge(&other.join_attempts);
        self.reassoc_superframes.merge(&other.reassoc_superframes);
        self.dormant_nodes += other.dormant_nodes;
    }

    /// The contention statistics (identical to
    /// [`SimTrace::contention_stats`] on the equivalent trace).
    pub fn contention_stats(&self) -> ContentionStats {
        self.contention.finish()
    }

    /// Fraction of transactions that failed.
    pub fn failure_ratio(&self) -> Probability {
        self.failures.ratio()
    }

    /// Mean attempts per transaction.
    pub fn mean_attempts(&self) -> f64 {
        self.attempts.mean()
    }

    /// Mean delivery delay in superframes over delivered packets.
    pub fn mean_delivery_superframes(&self) -> f64 {
        self.delivery_superframes.mean()
    }
}

impl TraceSink for StatsSink {
    fn on_attempt(&mut self, record: &AttemptRecord) {
        self.contention
            .contention_us
            .push(record.contention_slots as f64 * SLOT_US as f64);
        self.contention.ccas.push(record.ccas as f64);
        self.contention
            .access_failures
            .observe(record.outcome == AttemptOutcome::AccessFailure);
        if record.outcome != AttemptOutcome::AccessFailure {
            self.contention
                .collisions
                .observe(record.outcome == AttemptOutcome::Collided);
        }
    }

    fn on_transaction(&mut self, record: &TransactionRecord) {
        self.failures.observe(!record.delivered);
        self.attempts.push(record.attempts as f64);
        if record.delivered {
            self.delivery_superframes
                .push(record.superframes_waited as f64 + 1.0);
        }
    }

    fn on_overrun(&mut self) {
        self.overruns += 1;
    }

    fn on_gts(&mut self, record: &GtsRecord) {
        self.gts_failures.observe(!record.delivered);
        // A GTS transmission is a one-attempt transaction: fold it into
        // the shared transaction statistics too.
        self.failures.observe(!record.delivered);
        self.attempts.push(1.0);
        if record.delivered {
            self.delivery_superframes
                .push(record.superframes_waited as f64 + 1.0);
        }
    }

    fn on_downlink(&mut self, record: &DownlinkRecord) {
        if record.outcome == DownlinkOutcome::Deferred {
            self.downlink_deferred += 1;
        } else {
            self.downlink_failures
                .observe(record.outcome != DownlinkOutcome::Delivered);
        }
    }

    fn on_fault(&mut self, record: &FaultRecord) {
        match record.kind {
            FaultKind::Death => self.deaths += 1,
            FaultKind::MissedBeacon { listened } => {
                if listened {
                    self.orphan_scans += 1;
                }
            }
            FaultKind::JoinAttempt { success } => self.join_attempts.observe(success),
            FaultKind::Reassociated {
                latency_superframes,
            } => self.reassoc_superframes.push(latency_superframes as f64),
            FaultKind::Dormant => self.dormant_nodes += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::{run_channel_sim, ChannelSimConfig};

    fn cfg() -> ChannelSimConfig {
        let mut c = ChannelSimConfig::figure6(50, 0.4, 77);
        c.superframes = 8;
        c
    }

    #[test]
    fn streaming_matches_trace_reduction() {
        let trace = run_channel_sim(&cfg(), |_| false);
        let mut sink = StatsSink::new();
        trace.replay(&mut sink);
        let streamed = sink.contention_stats();
        let reduced = trace.contention_stats();
        assert_eq!(streamed, reduced);
        assert_eq!(sink.failure_ratio(), trace.transaction_failure_ratio());
        assert_eq!(sink.mean_attempts(), trace.mean_attempts());
        assert_eq!(
            sink.mean_delivery_superframes(),
            trace.mean_delivery_superframes()
        );
        assert_eq!(sink.overruns, trace.overruns);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let trace = run_channel_sim(&cfg(), |_| false);
        let mut tee = TeeSink(
            StatsSink::new(),
            TraceCollector::new(trace.superframe_slots),
        );
        trace.replay(&mut tee);
        let TeeSink(stats, collector) = tee;
        let copy = collector.into_trace();
        assert_eq!(copy.attempts, trace.attempts);
        assert_eq!(copy.transactions, trace.transactions);
        assert_eq!(stats.contention_stats(), trace.contention_stats());
    }
}
