//! A deterministic calendar (bucket) event queue.
//!
//! This is the hot core of both simulators: every beacon, arrival, CCA and
//! transmission ending flows through one queue, so its constant factors
//! dominate the Monte-Carlo throughput. The queue exploits what a slot-grid
//! simulator guarantees — integer times on a bounded grid, a small fixed
//! set of priority classes, and near-monotone scheduling — to make both
//! `push` and `pop` O(1):
//!
//! * **Bucket layout.** Time is hashed into a power-of-two ring of slots
//!   (`time & mask`); each ring slot holds [`PRIORITY_CLASSES`]
//!   singly-linked FIFO buckets (slot-major, so one pop scans adjacent
//!   cells). Events live in a free-listed arena, so steady-state push/pop
//!   churn allocates nothing.
//! * **Window invariant.** All pending times span less than the ring size,
//!   so a ring cell never holds two distinct times and the pop cursor can
//!   assign the time from its own position. The ring grows (doubling,
//!   amortized O(1)) whenever a push would violate the span — simulators
//!   that schedule at most one superframe ahead never grow after warm-up.
//! * **Pop is a cursor scan.** `pop` walks the ring from the last popped
//!   time to the next occupied cell. The cursor never rewinds while events
//!   are pending, so the total scan cost over a run is O(time horizon) —
//!   a few adjacent loads per event for the simulators' event densities —
//!   plus O(1) per event.
//!
//! # Determinism contract
//!
//! Pop order is **part of the simulators' reproducibility guarantee**:
//! events pop ordered by `(time, priority class, insertion order)`, exactly
//! the order the previous binary-heap implementation produced with its
//! explicit `(time, priority, sequence)` keys. FIFO-within-bucket realizes
//! the insertion-order tiebreak *by construction* — appending to a bucket
//! tail needs no sequence counter — and never depends on allocation
//! addresses or hash order, so runs are bit-reproducible. The
//! `calendar_queue_equiv` integration suite pins this queue against a
//! reference binary heap over randomized interleaved workloads.
//!
//! # Contract narrowings vs. the old heap
//!
//! * Priorities must be `< PRIORITY_CLASSES` (the simulators use exactly
//!   five classes; the heap accepted any `u8`).
//! * The span of pending times is bounded by [`MAX_WINDOW`] slots
//!   (reached only by pushing two events ~2²⁸ slots apart — no slot-grid
//!   simulation does; the heap accepted any spread).

/// Sentinel "no entry" index for bucket heads/tails and the free list.
const NIL: u32 = u32::MAX;

/// Number of priority classes `push` accepts (`0..PRIORITY_CLASSES`;
/// lower runs first among same-time events). The simulators use five:
/// beacon, transmission-end, CCA, arrival, and the CFP class (GTS
/// transmissions, which never contend and therefore order after every
/// CAP event in their slot).
pub const PRIORITY_CLASSES: usize = 5;

/// Hard ceiling on the ring window, in slots. The window only needs to
/// cover the *span* of simultaneously pending times (one superframe for
/// the simulators), not the whole horizon; 2²⁸ slots is ~23 simulated
/// hours on the 320 µs grid.
pub const MAX_WINDOW: u64 = 1 << 28;

#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

#[derive(Debug, Clone)]
struct Entry<E> {
    /// `Some` while queued; `None` on the free list.
    payload: Option<E>,
    /// Next entry in the same bucket, or next free slot.
    next: u32,
}

/// Deterministic calendar queue over an arbitrary event payload `E`.
///
/// Time is an opaque `u64` (the simulators use backoff slots).
///
/// # Examples
///
/// ```
/// use wsn_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, 0, "late");
/// q.push(10, 1, "early-low-priority");
/// q.push(10, 0, "early-high-priority");
/// assert_eq!(q.pop(), Some((10, "early-high-priority")));
/// assert_eq!(q.pop(), Some((10, "early-low-priority")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// `ring_slots × PRIORITY_CLASSES` bucket cells, slot-major.
    buckets: Vec<Bucket>,
    /// Entry arena; vacated entries chain through `free` and are reused by
    /// the next push, so storage is bounded by the peak queue length.
    arena: Vec<Entry<E>>,
    /// Head of the arena free list.
    free: u32,
    /// Pending event count.
    len: usize,
    /// Ring size − 1 (ring size is a power of two).
    mask: u64,
    /// Scan position: every pending event has `time ≥ cursor`.
    cursor: u64,
    /// Largest pending time (meaningful only while `len > 0`).
    max_pending: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default 256-slot window (grown on
    /// demand).
    pub fn new() -> Self {
        EventQueue::with_window(256)
    }

    /// Creates an empty queue whose ring covers at least `window` slots,
    /// so pushes spanning up to `window` need never grow the ring.
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds [`MAX_WINDOW`].
    pub fn with_window(window: u64) -> Self {
        let ring = window.max(2).next_power_of_two();
        assert!(
            ring <= MAX_WINDOW,
            "event window {window} slots exceeds the {MAX_WINDOW}-slot ceiling"
        );
        EventQueue {
            buckets: vec![EMPTY_BUCKET; ring as usize * PRIORITY_CLASSES],
            arena: Vec::new(),
            free: NIL,
            len: 0,
            mask: ring - 1,
            cursor: 0,
            max_pending: 0,
        }
    }

    /// Grows the ring so pushes spanning up to `window` slots need not
    /// grow it again. Cheap when already satisfied; intended for workspace
    /// reuse, where the expected span is known up front.
    pub fn reserve_window(&mut self, window: u64) {
        self.ensure_window(window);
    }

    /// Ring size in slots.
    fn ring(&self) -> u64 {
        self.mask + 1
    }

    /// Bucket cell index of `(time, priority)`.
    fn cell(&self, time: u64, priority: u8) -> usize {
        (time & self.mask) as usize * PRIORITY_CLASSES + priority as usize
    }

    /// Grows the ring to cover at least `needed` slots, relinking pending
    /// buckets (chains move wholesale, preserving FIFO order).
    fn ensure_window(&mut self, needed: u64) {
        if needed <= self.ring() {
            return;
        }
        assert!(
            needed <= MAX_WINDOW,
            "event span {needed} slots exceeds the {MAX_WINDOW}-slot ceiling"
        );
        let new_ring = needed.next_power_of_two();
        let new_mask = new_ring - 1;
        let mut buckets = vec![EMPTY_BUCKET; new_ring as usize * PRIORITY_CLASSES];
        if self.len > 0 {
            // The old window invariant (span < old ring) makes every old
            // cell hold exactly one time value, so scanning the pending
            // time range visits each occupied cell exactly once.
            for t in self.cursor..=self.max_pending {
                for p in 0..PRIORITY_CLASSES {
                    let old = self.buckets[(t & self.mask) as usize * PRIORITY_CLASSES + p];
                    if old.head != NIL {
                        buckets[(t & new_mask) as usize * PRIORITY_CLASSES + p] = old;
                    }
                }
            }
        }
        self.buckets = buckets;
        self.mask = new_mask;
    }

    /// Schedules `event` at `time` with a priority class (lower runs
    /// first among same-time events).
    ///
    /// # Panics
    ///
    /// Panics if `priority ≥` [`PRIORITY_CLASSES`], or if the pending-time
    /// span would exceed [`MAX_WINDOW`].
    pub fn push(&mut self, time: u64, priority: u8, event: E) {
        assert!(
            (priority as usize) < PRIORITY_CLASSES,
            "priority {priority} out of range (< {PRIORITY_CLASSES})"
        );
        if self.len == 0 {
            self.cursor = time;
            self.max_pending = time;
        } else if time < self.cursor {
            // Sliding the window down is legal as long as the widened span
            // still fits the ring (grow first: the rebuild scan needs the
            // old cursor/max_pending to still describe the pending set).
            self.ensure_window(self.max_pending - time + 1);
            self.cursor = time;
        } else if time > self.max_pending {
            self.ensure_window(time - self.cursor + 1);
            self.max_pending = time;
        }

        let idx = if self.free != NIL {
            let idx = self.free;
            let entry = &mut self.arena[idx as usize];
            self.free = entry.next;
            entry.payload = Some(event);
            entry.next = NIL;
            idx
        } else {
            assert!(
                self.arena.len() < NIL as usize,
                "event arena exhausted (u32 index space)"
            );
            self.arena.push(Entry {
                payload: Some(event),
                next: NIL,
            });
            (self.arena.len() - 1) as u32
        };

        let cell = self.cell(time, priority);
        let bucket = &mut self.buckets[cell];
        if bucket.tail == NIL {
            bucket.head = idx;
        } else {
            self.arena[bucket.tail as usize].next = idx;
        }
        bucket.tail = idx;
        self.len += 1;
    }

    /// Removes and returns the earliest event (ties: lowest priority
    /// class first, then insertion order).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let base = (self.cursor & self.mask) as usize * PRIORITY_CLASSES;
            for p in 0..PRIORITY_CLASSES {
                let bucket = &mut self.buckets[base + p];
                if bucket.head == NIL {
                    continue;
                }
                let idx = bucket.head;
                let entry = &mut self.arena[idx as usize];
                bucket.head = entry.next;
                if bucket.head == NIL {
                    bucket.tail = NIL;
                }
                let event = entry
                    .payload
                    .take()
                    .expect("queued entry has a payload — queue invariant broken");
                entry.next = self.free;
                self.free = idx;
                self.len -= 1;
                return Some((self.cursor, event));
            }
            debug_assert!(
                self.cursor < self.max_pending,
                "pending events must lie within [cursor, max_pending]"
            );
            self.cursor += 1;
        }
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        (self.cursor..=self.max_pending).find(|&t| {
            let base = (t & self.mask) as usize * PRIORITY_CLASSES;
            self.buckets[base..base + PRIORITY_CLASSES]
                .iter()
                .any(|b| b.head != NIL)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events, keeping the ring and arena capacity for
    /// reuse (the workspace path: one clear per simulation run).
    ///
    /// O(pending span), not O(ring): `pop` already resets every bucket it
    /// drains, so only cells in `[cursor, max_pending]` can be occupied —
    /// a small run reusing a workspace whose ring was grown by a large
    /// one does not pay a full-ring memset.
    pub fn clear(&mut self) {
        if self.len > 0 {
            for t in self.cursor..=self.max_pending {
                let base = (t & self.mask) as usize * PRIORITY_CLASSES;
                self.buckets[base..base + PRIORITY_CLASSES].fill(EMPTY_BUCKET);
            }
        }
        self.arena.clear();
        self.free = NIL;
        self.len = 0;
        self.cursor = 0;
        self.max_pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 0, 'c');
        q.push(10, 0, 'a');
        q.push(20, 0, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
    }

    #[test]
    fn same_time_fifo_within_priority() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5, 0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn priority_classes_break_ties() {
        let mut q = EventQueue::new();
        q.push(5, 2, "later");
        q.push(5, 0, "first");
        q.push(5, 3, "last");
        q.push(5, 1, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "later");
        assert_eq!(q.pop().unwrap().1, "last");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, 0, ());
        q.push(3, 0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(1, 0, 1);
        q.push(5, 0, 5);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(3, 0, 3);
        q.push(2, 0, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn window_grows_on_demand() {
        // Default ring is 256 slots; a 10_000-slot spread must grow it
        // transparently without disturbing order.
        let mut q = EventQueue::new();
        q.push(10_000, 0, "far");
        q.push(0, 0, "near");
        q.push(5_000, 1, "mid");
        assert_eq!(q.pop(), Some((0, "near")));
        assert_eq!(q.pop(), Some((5_000, "mid")));
        assert_eq!(q.pop(), Some((10_000, "far")));
    }

    #[test]
    fn window_growth_preserves_fifo_within_buckets() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.push(100, 0, i);
        }
        // Trigger a rebuild while the bucket chain is populated.
        q.push(100_000, 0, 99);
        for i in 0..8 {
            assert_eq!(q.pop(), Some((100, i)));
        }
        assert_eq!(q.pop(), Some((100_000, 99)));
    }

    #[test]
    fn empty_queue_accepts_any_new_epoch() {
        // Draining resets the window origin: a fresh push far below the
        // previous cursor is fine once the queue is empty.
        let mut q = EventQueue::new();
        q.push(1 << 40, 0, "late-epoch");
        assert_eq!(q.pop(), Some((1 << 40, "late-epoch")));
        q.push(3, 0, "early-epoch");
        assert_eq!(q.pop(), Some((3, "early-epoch")));
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.push(i, (i % 4) as u8, i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(2, 0, 2u64);
        q.push(1, 0, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.pop(), Some((2, 2)));
    }

    #[test]
    fn storage_is_reclaimed() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..50 {
                q.push(round * 100 + i, 0, i);
            }
            for _ in 0..50 {
                q.pop();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.arena.len() < 200,
            "arena storage grew unboundedly: {}",
            q.arena.len()
        );
    }

    #[test]
    fn storage_is_reclaimed_under_interleaved_push_pop() {
        // One long-lived event pins the window top while short-lived
        // events churn through below it; the free list must bound arena
        // storage at the peak live count.
        let mut q = EventQueue::new();
        q.push(50_000, 0, 0); // pinned: never popped during the churn
        for i in 0..10_000u64 {
            q.push(i, 0, i);
            q.push(i, 1, i);
            let _ = q.pop();
            let _ = q.pop();
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.arena.len() <= 4,
            "interleaved churn grew storage to {} slots",
            q.arena.len()
        );
        assert_eq!(q.pop(), Some((50_000, 0)));
    }

    #[test]
    #[should_panic(expected = "priority")]
    fn out_of_range_priority_rejected() {
        let mut q = EventQueue::new();
        q.push(0, PRIORITY_CLASSES as u8, ());
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn absurd_window_rejected() {
        let mut q = EventQueue::new();
        q.push(0, 0, ());
        q.push(MAX_WINDOW + 1, 0, ());
    }
}
