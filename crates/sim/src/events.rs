//! A deterministic calendar (bucket) event queue.
//!
//! This is the hot core of both simulators: every beacon, arrival, CCA and
//! transmission ending flows through one queue, so its constant factors
//! dominate the Monte-Carlo throughput. The queue exploits what a slot-grid
//! simulator guarantees — integer times on a bounded grid, a small fixed
//! set of priority classes, and near-monotone scheduling — to make both
//! `push` and `pop` O(1):
//!
//! * **Bucket layout.** Time is hashed into a power-of-two ring of slots
//!   (`time & mask`); each ring slot holds [`PRIORITY_CLASSES`]
//!   singly-linked FIFO buckets (slot-major, so one pop scans adjacent
//!   cells). Events live in a free-listed arena, so steady-state push/pop
//!   churn allocates nothing.
//! * **Window invariant.** All pending times span less than the ring size,
//!   so a ring cell never holds two distinct times and the pop cursor can
//!   assign the time from its own position. The ring grows (doubling,
//!   amortized O(1)) whenever a push would violate the span — simulators
//!   that schedule at most one superframe ahead never grow after warm-up.
//! * **Pop is a bitmap hop.** A two-level occupancy bitmap shadows the
//!   ring — one bit per slot, one summary bit per 64-slot word — so `pop`
//!   jumps the cursor straight to the next occupied slot in O(1) word
//!   probes instead of scanning empty cells. Sparse/low-load superframes
//!   (the million-node regime, where most slots hold nothing) stop paying
//!   per-slot scans; the cursor still never rewinds while events are
//!   pending, and each event costs O(1) beyond the hop.
//!
//! # Determinism contract
//!
//! Pop order is **part of the simulators' reproducibility guarantee**:
//! events pop ordered by `(time, priority class, insertion order)`, exactly
//! the order the previous binary-heap implementation produced with its
//! explicit `(time, priority, sequence)` keys. FIFO-within-bucket realizes
//! the insertion-order tiebreak *by construction* — appending to a bucket
//! tail needs no sequence counter — and never depends on allocation
//! addresses or hash order, so runs are bit-reproducible. The
//! `calendar_queue_equiv` integration suite pins this queue against a
//! reference binary heap over randomized interleaved workloads.
//!
//! # Contract narrowings vs. the old heap
//!
//! * Priorities must be `< PRIORITY_CLASSES` (the simulators use exactly
//!   five classes; the heap accepted any `u8`).
//! * The span of pending times is bounded by [`MAX_WINDOW`] slots
//!   (reached only by pushing two events ~2²⁸ slots apart — no slot-grid
//!   simulation does; the heap accepted any spread).

/// Sentinel "no entry" index for bucket heads/tails and the free list.
const NIL: u32 = u32::MAX;

/// Number of priority classes `push` accepts (`0..PRIORITY_CLASSES`;
/// lower runs first among same-time events). The simulators use five:
/// beacon, transmission-end, CCA, arrival, and the CFP class (GTS
/// transmissions, which never contend and therefore order after every
/// CAP event in their slot).
pub const PRIORITY_CLASSES: usize = 5;

/// Hard ceiling on the ring window, in slots. The window only needs to
/// cover the *span* of simultaneously pending times (one superframe for
/// the simulators), not the whole horizon; 2²⁸ slots is ~23 simulated
/// hours on the 320 µs grid.
pub const MAX_WINDOW: u64 = 1 << 28;

/// Typed rejection of a ring window/span request that exceeds
/// [`MAX_WINDOW`].
///
/// Surfaced by [`EventQueue::try_reserve_window`] and
/// [`WindowError::check`] so callers can validate a simulation horizon up
/// front; the infallible paths ([`EventQueue::push`],
/// [`EventQueue::with_window`], [`EventQueue::reserve_window`]) panic with
/// this error's message instead of a bare assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowError {
    /// The offending window/span request, in slots.
    pub requested: u64,
}

impl WindowError {
    /// Checks a prospective window size against [`MAX_WINDOW`] without
    /// needing a queue — the config-validation hook.
    pub fn check(window: u64) -> Result<(), WindowError> {
        if window > MAX_WINDOW {
            Err(WindowError { requested: window })
        } else {
            Ok(())
        }
    }
}

impl core::fmt::Display for WindowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "event window of {} slots exceeds the {MAX_WINDOW}-slot ceiling",
            self.requested
        )
    }
}

impl std::error::Error for WindowError {}

/// Optional queue operation counters, collected only while telemetry is
/// enabled (see [`EventQueue::set_stats_enabled`]). Collection reads
/// values the queue already computes — it can never change push/pop
/// behavior or ordering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events pushed.
    pub pushes: u64,
    /// Events popped.
    pub pops: u64,
    /// Ring window growths (reallocation + bucket relink).
    pub window_growths: u64,
    /// Cursor skip distances in ring slots: one sample per pop that found
    /// the cursor's slot empty and hopped via the occupancy bitmap.
    pub skip_slots: crate::telemetry::Hist,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

#[derive(Debug, Clone)]
struct Entry<E> {
    /// `Some` while queued; `None` on the free list.
    payload: Option<E>,
    /// Next entry in the same bucket, or next free slot.
    next: u32,
}

/// Deterministic calendar queue over an arbitrary event payload `E`.
///
/// Time is an opaque `u64` (the simulators use backoff slots).
///
/// # Examples
///
/// ```
/// use wsn_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, 0, "late");
/// q.push(10, 1, "early-low-priority");
/// q.push(10, 0, "early-high-priority");
/// assert_eq!(q.pop(), Some((10, "early-high-priority")));
/// assert_eq!(q.pop(), Some((10, "early-low-priority")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// `ring_slots × PRIORITY_CLASSES` bucket cells, slot-major.
    buckets: Vec<Bucket>,
    /// Entry arena; vacated entries chain through `free` and are reused by
    /// the next push, so storage is bounded by the peak queue length.
    arena: Vec<Entry<E>>,
    /// Head of the arena free list.
    free: u32,
    /// Pending event count.
    len: usize,
    /// One bit per ring slot, set while any priority bucket at the slot
    /// holds events — the lower bitmap level behind the cursor hop.
    occupied: Vec<u64>,
    /// One bit per `occupied` word, set while that word is nonzero — the
    /// upper level, skipping 4096 empty slots per probe.
    summary: Vec<u64>,
    /// Ring size − 1 (ring size is a power of two).
    mask: u64,
    /// Scan position: every pending event has `time ≥ cursor`.
    cursor: u64,
    /// Largest pending time (meaningful only while `len > 0`).
    max_pending: u64,
    /// Operation counters; `None` (the default) costs one never-taken
    /// branch per operation.
    stats: Option<Box<QueueStats>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default 256-slot window (grown on
    /// demand).
    pub fn new() -> Self {
        EventQueue::with_window(256)
    }

    /// Creates an empty queue whose ring covers at least `window` slots,
    /// so pushes spanning up to `window` need never grow the ring.
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds [`MAX_WINDOW`].
    pub fn with_window(window: u64) -> Self {
        let ring = window.max(2).next_power_of_two();
        assert!(
            ring <= MAX_WINDOW,
            "event window {window} slots exceeds the {MAX_WINDOW}-slot ceiling"
        );
        let words = Self::bitmap_words(ring);
        EventQueue {
            buckets: vec![EMPTY_BUCKET; ring as usize * PRIORITY_CLASSES],
            arena: Vec::new(),
            free: NIL,
            len: 0,
            occupied: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            mask: ring - 1,
            cursor: 0,
            max_pending: 0,
            stats: None,
        }
    }

    /// Turns operation counting on (installing fresh zeroed counters) or
    /// off. Counting is inert: it never changes queue behavior, only the
    /// [`stats`](Self::stats) readout.
    pub fn set_stats_enabled(&mut self, on: bool) {
        self.stats = if on {
            Some(Box::default())
        } else {
            None
        };
    }

    /// The operation counters accumulated since
    /// [`set_stats_enabled`](Self::set_stats_enabled)`(true)`, if
    /// counting is on.
    pub fn stats(&self) -> Option<&QueueStats> {
        self.stats.as_deref()
    }

    /// Grows the ring so pushes spanning up to `window` slots need not
    /// grow it again. Cheap when already satisfied; intended for workspace
    /// reuse, where the expected span is known up front.
    ///
    /// # Panics
    ///
    /// Panics if `window` exceeds [`MAX_WINDOW`]; use
    /// [`try_reserve_window`](Self::try_reserve_window) to get the typed
    /// error instead.
    pub fn reserve_window(&mut self, window: u64) {
        if let Err(e) = self.ensure_window(window) {
            panic!("{e}");
        }
    }

    /// Fallible [`reserve_window`](Self::reserve_window): grows the ring to
    /// cover `window` slots, or reports a typed [`WindowError`] when the
    /// request exceeds [`MAX_WINDOW`] — the config-validation path uses
    /// this to reject over-long horizons before a run starts instead of
    /// aborting mid-simulation.
    pub fn try_reserve_window(&mut self, window: u64) -> Result<(), WindowError> {
        self.ensure_window(window)
    }

    /// Ring size in slots.
    fn ring(&self) -> u64 {
        self.mask + 1
    }

    /// Bucket cell index of `(time, priority)`.
    fn cell(&self, time: u64, priority: u8) -> usize {
        (time & self.mask) as usize * PRIORITY_CLASSES + priority as usize
    }

    /// Occupancy-bitmap words covering a `ring`-slot window.
    fn bitmap_words(ring: u64) -> usize {
        (ring as usize).div_ceil(64)
    }

    /// Marks ring slot `slot` occupied at both bitmap levels.
    fn set_occupied(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] |= 1u64 << (slot & 63);
        self.summary[w >> 6] |= 1u64 << (w & 63);
    }

    /// Clears ring slot `slot`'s occupancy bit, and its summary bit once
    /// the whole word drains.
    fn clear_occupied(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] &= !(1u64 << (slot & 63));
        if self.occupied[w] == 0 {
            self.summary[w >> 6] &= !(1u64 << (w & 63));
        }
    }

    /// `true` while any priority bucket at ring slot `slot` holds events.
    fn slot_occupied(&self, slot: usize) -> bool {
        self.occupied[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// Ring slot of the next occupied cell strictly after `pos`,
    /// cyclically. Only call while events are pending and slot `pos`
    /// itself is unoccupied — the window invariant (span < ring) then
    /// guarantees the cyclically-next set bit is exactly where the old
    /// linear cursor scan would have stopped.
    fn next_occupied(&self, pos: usize) -> usize {
        let w0 = pos >> 6;
        let b = (pos & 63) as u32;
        // Bits strictly above `pos` in its own word.
        let above = if b == 63 {
            0
        } else {
            self.occupied[w0] & (!0u64 << (b + 1))
        };
        if above != 0 {
            return (w0 << 6) + above.trailing_zeros() as usize;
        }
        // Summary level: the next nonzero occupancy word, wrapping. The
        // loop terminates because a pending event guarantees a set bit.
        let nsum = self.summary.len();
        let s0 = w0 >> 6;
        let sb = (w0 & 63) as u32;
        let sabove = if sb == 63 {
            0
        } else {
            self.summary[s0] & (!0u64 << (sb + 1))
        };
        let w = if sabove != 0 {
            (s0 << 6) + sabove.trailing_zeros() as usize
        } else {
            let mut s = if s0 + 1 == nsum { 0 } else { s0 + 1 };
            loop {
                if self.summary[s] != 0 {
                    break (s << 6) + self.summary[s].trailing_zeros() as usize;
                }
                debug_assert!(s != s0, "occupancy bitmap empty while events pending");
                s = if s + 1 == nsum { 0 } else { s + 1 };
            }
        };
        (w << 6) + self.occupied[w].trailing_zeros() as usize
    }

    /// Grows the ring to cover at least `needed` slots, relinking pending
    /// buckets (chains move wholesale, preserving FIFO order) and
    /// rebuilding the occupancy bitmaps.
    fn ensure_window(&mut self, needed: u64) -> Result<(), WindowError> {
        if needed <= self.ring() {
            return Ok(());
        }
        WindowError::check(needed)?;
        if let Some(stats) = self.stats.as_deref_mut() {
            stats.window_growths += 1;
        }
        let new_ring = needed.next_power_of_two();
        let new_mask = new_ring - 1;
        let words = Self::bitmap_words(new_ring);
        let mut buckets = vec![EMPTY_BUCKET; new_ring as usize * PRIORITY_CLASSES];
        let mut occupied = vec![0u64; words];
        let mut summary = vec![0u64; words.div_ceil(64)];
        if self.len > 0 {
            // The old window invariant (span < old ring) makes every old
            // cell hold exactly one time value, so scanning the pending
            // time range visits each occupied cell exactly once.
            for t in self.cursor..=self.max_pending {
                if !self.slot_occupied((t & self.mask) as usize) {
                    continue;
                }
                let slot = (t & new_mask) as usize;
                for p in 0..PRIORITY_CLASSES {
                    let old = self.buckets[(t & self.mask) as usize * PRIORITY_CLASSES + p];
                    if old.head != NIL {
                        buckets[slot * PRIORITY_CLASSES + p] = old;
                    }
                }
                let w = slot >> 6;
                occupied[w] |= 1u64 << (slot & 63);
                summary[w >> 6] |= 1u64 << (w & 63);
            }
        }
        self.buckets = buckets;
        self.occupied = occupied;
        self.summary = summary;
        self.mask = new_mask;
        Ok(())
    }

    /// Schedules `event` at `time` with a priority class (lower runs
    /// first among same-time events).
    ///
    /// # Panics
    ///
    /// Panics if `priority ≥` [`PRIORITY_CLASSES`], or if the pending-time
    /// span would exceed [`MAX_WINDOW`].
    pub fn push(&mut self, time: u64, priority: u8, event: E) {
        assert!(
            (priority as usize) < PRIORITY_CLASSES,
            "priority {priority} out of range (< {PRIORITY_CLASSES})"
        );
        if self.len == 0 {
            self.cursor = time;
            self.max_pending = time;
        } else if time < self.cursor {
            // Sliding the window down is legal as long as the widened span
            // still fits the ring (grow first: the rebuild scan needs the
            // old cursor/max_pending to still describe the pending set).
            if let Err(e) = self.ensure_window(self.max_pending - time + 1) {
                panic!("{e}");
            }
            self.cursor = time;
        } else if time > self.max_pending {
            if let Err(e) = self.ensure_window(time - self.cursor + 1) {
                panic!("{e}");
            }
            self.max_pending = time;
        }

        let idx = if self.free != NIL {
            let idx = self.free;
            let entry = &mut self.arena[idx as usize];
            self.free = entry.next;
            entry.payload = Some(event);
            entry.next = NIL;
            idx
        } else {
            assert!(
                self.arena.len() < NIL as usize,
                "event arena exhausted (u32 index space)"
            );
            self.arena.push(Entry {
                payload: Some(event),
                next: NIL,
            });
            (self.arena.len() - 1) as u32
        };

        let cell = self.cell(time, priority);
        let bucket = &mut self.buckets[cell];
        if bucket.tail == NIL {
            bucket.head = idx;
        } else {
            self.arena[bucket.tail as usize].next = idx;
        }
        bucket.tail = idx;
        self.set_occupied((time & self.mask) as usize);
        self.len += 1;
        if let Some(stats) = self.stats.as_deref_mut() {
            stats.pushes += 1;
        }
    }

    /// Removes and returns the earliest event (ties: lowest priority
    /// class first, then insertion order).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        if self.len == 0 {
            return None;
        }
        let mut slot = (self.cursor & self.mask) as usize;
        if !self.slot_occupied(slot) {
            // Hop the cursor straight to the next occupied cell. The
            // window invariant (span < ring) means the cyclic distance to
            // that bit is exactly how far the old linear scan would walk.
            let next = self.next_occupied(slot);
            let dist = (next.wrapping_sub(slot) as u64) & self.mask;
            debug_assert!(
                self.cursor + dist <= self.max_pending,
                "pending events must lie within [cursor, max_pending]"
            );
            if let Some(stats) = self.stats.as_deref_mut() {
                stats.skip_slots.record(dist);
            }
            self.cursor += dist;
            slot = next;
        }
        let base = slot * PRIORITY_CLASSES;
        for p in 0..PRIORITY_CLASSES {
            let head = self.buckets[base + p].head;
            if head == NIL {
                continue;
            }
            let entry = &mut self.arena[head as usize];
            let next = entry.next;
            let event = entry
                .payload
                .take()
                .expect("queued entry has a payload — queue invariant broken");
            entry.next = self.free;
            self.free = head;
            self.buckets[base + p].head = next;
            if next == NIL {
                self.buckets[base + p].tail = NIL;
                if self.buckets[base..base + PRIORITY_CLASSES]
                    .iter()
                    .all(|b| b.head == NIL)
                {
                    self.clear_occupied(slot);
                }
            }
            self.len -= 1;
            if let Some(stats) = self.stats.as_deref_mut() {
                stats.pops += 1;
            }
            return Some((self.cursor, event));
        }
        unreachable!("occupied ring slot holds no events — bitmap invariant broken")
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let slot = (self.cursor & self.mask) as usize;
        if self.slot_occupied(slot) {
            return Some(self.cursor);
        }
        let next = self.next_occupied(slot);
        let dist = (next.wrapping_sub(slot) as u64) & self.mask;
        Some(self.cursor + dist)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events, keeping the ring and arena capacity for
    /// reuse (the workspace path: one clear per simulation run).
    ///
    /// O(pending span), not O(ring): `pop` already resets every bucket it
    /// drains, so only cells in `[cursor, max_pending]` can be occupied —
    /// a small run reusing a workspace whose ring was grown by a large
    /// one does not pay a full-ring memset.
    pub fn clear(&mut self) {
        if self.len > 0 {
            for t in self.cursor..=self.max_pending {
                let slot = (t & self.mask) as usize;
                let base = slot * PRIORITY_CLASSES;
                self.buckets[base..base + PRIORITY_CLASSES].fill(EMPTY_BUCKET);
                self.clear_occupied(slot);
            }
        }
        self.arena.clear();
        self.free = NIL;
        self.len = 0;
        self.cursor = 0;
        self.max_pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 0, 'c');
        q.push(10, 0, 'a');
        q.push(20, 0, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
    }

    #[test]
    fn same_time_fifo_within_priority() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5, 0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn priority_classes_break_ties() {
        let mut q = EventQueue::new();
        q.push(5, 2, "later");
        q.push(5, 0, "first");
        q.push(5, 3, "last");
        q.push(5, 1, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "later");
        assert_eq!(q.pop().unwrap().1, "last");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, 0, ());
        q.push(3, 0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(1, 0, 1);
        q.push(5, 0, 5);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(3, 0, 3);
        q.push(2, 0, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn window_grows_on_demand() {
        // Default ring is 256 slots; a 10_000-slot spread must grow it
        // transparently without disturbing order.
        let mut q = EventQueue::new();
        q.push(10_000, 0, "far");
        q.push(0, 0, "near");
        q.push(5_000, 1, "mid");
        assert_eq!(q.pop(), Some((0, "near")));
        assert_eq!(q.pop(), Some((5_000, "mid")));
        assert_eq!(q.pop(), Some((10_000, "far")));
    }

    #[test]
    fn window_growth_preserves_fifo_within_buckets() {
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.push(100, 0, i);
        }
        // Trigger a rebuild while the bucket chain is populated.
        q.push(100_000, 0, 99);
        for i in 0..8 {
            assert_eq!(q.pop(), Some((100, i)));
        }
        assert_eq!(q.pop(), Some((100_000, 99)));
    }

    #[test]
    fn empty_queue_accepts_any_new_epoch() {
        // Draining resets the window origin: a fresh push far below the
        // previous cursor is fine once the queue is empty.
        let mut q = EventQueue::new();
        q.push(1 << 40, 0, "late-epoch");
        assert_eq!(q.pop(), Some((1 << 40, "late-epoch")));
        q.push(3, 0, "early-epoch");
        assert_eq!(q.pop(), Some((3, "early-epoch")));
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.push(i, (i % 4) as u8, i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(2, 0, 2u64);
        q.push(1, 0, 1);
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.pop(), Some((2, 2)));
    }

    #[test]
    fn storage_is_reclaimed() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..50 {
                q.push(round * 100 + i, 0, i);
            }
            for _ in 0..50 {
                q.pop();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.arena.len() < 200,
            "arena storage grew unboundedly: {}",
            q.arena.len()
        );
    }

    #[test]
    fn storage_is_reclaimed_under_interleaved_push_pop() {
        // One long-lived event pins the window top while short-lived
        // events churn through below it; the free list must bound arena
        // storage at the peak live count.
        let mut q = EventQueue::new();
        q.push(50_000, 0, 0); // pinned: never popped during the churn
        for i in 0..10_000u64 {
            q.push(i, 0, i);
            q.push(i, 1, i);
            let _ = q.pop();
            let _ = q.pop();
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.arena.len() <= 4,
            "interleaved churn grew storage to {} slots",
            q.arena.len()
        );
        assert_eq!(q.pop(), Some((50_000, 0)));
    }

    #[test]
    fn sparse_hops_cross_word_and_summary_boundaries() {
        // Gaps larger than 64 slots (one occupancy word) and larger than
        // 4096 slots (one summary word) exercise both bitmap levels, and
        // the final pair wraps the cursor around the ring.
        let mut q = EventQueue::with_window(1 << 14);
        let times = [0u64, 1, 65, 70, 4100, 8200, 8201, 16350, 16383 + 5];
        for (i, &t) in times.iter().enumerate() {
            q.push(t, (i % PRIORITY_CLASSES) as u8, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)));
            assert_eq!(q.peek_time(), times.get(i + 1).copied());
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_reserve_window_reports_typed_error() {
        let mut q = EventQueue::<()>::new();
        assert_eq!(q.try_reserve_window(1 << 20), Ok(()));
        let err = q
            .try_reserve_window(MAX_WINDOW + 1)
            .expect_err("over-ceiling window must be rejected");
        assert_eq!(err.requested, MAX_WINDOW + 1);
        assert!(err.to_string().contains("ceiling"), "{err}");
        assert_eq!(WindowError::check(MAX_WINDOW), Ok(()));
        assert!(WindowError::check(MAX_WINDOW + 1).is_err());
        // The failed reservation left the queue usable.
        q.push(9, 0, ());
        assert_eq!(q.pop(), Some((9, ())));
    }

    #[test]
    #[should_panic(expected = "priority")]
    fn out_of_range_priority_rejected() {
        let mut q = EventQueue::new();
        q.push(0, PRIORITY_CLASSES as u8, ());
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn absurd_window_rejected() {
        let mut q = EventQueue::new();
        q.push(0, 0, ());
        q.push(MAX_WINDOW + 1, 0, ());
    }
}
