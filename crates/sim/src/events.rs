//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, priority, insertion sequence)`: ties at the
//! same instant resolve first by an explicit priority class (e.g. process
//! transmission endings before new channel assessments), then by insertion
//! order — never by allocation addresses or hash order, so runs are
//! bit-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry (internal ordering wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: u64,
    priority: u8,
    seq: u64,
}

/// Deterministic event queue over an arbitrary event payload `E`.
///
/// Time is an opaque `u64` (the simulators use backoff slots or
/// nanoseconds).
///
/// # Examples
///
/// ```
/// use wsn_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(20, 0, "late");
/// q.push(10, 1, "early-low-priority");
/// q.push(10, 0, "early-high-priority");
/// assert_eq!(q.pop(), Some((10, "early-high-priority")));
/// assert_eq!(q.pop(), Some((10, "early-low-priority")));
/// assert_eq!(q.pop(), Some((20, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    payloads: Vec<Option<E>>,
    /// Indices of vacated `payloads` slots, reused by the next push. The
    /// previous tail-only reclamation let storage grow without bound under
    /// interleaved push/pop (a popped slot below a live tail was never
    /// reused); the free list bounds storage by the peak queue length.
    free: Vec<usize>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time` with a priority class (lower runs
    /// first among same-time events).
    pub fn push(&mut self, time: u64, priority: u8, event: E) {
        let key = Key {
            time,
            priority,
            seq: self.seq,
        };
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.payloads[slot] = Some(event);
                slot
            }
            None => {
                self.payloads.push(Some(event));
                self.payloads.len() - 1
            }
        };
        self.heap.push(Reverse((key, slot)));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        let event = self.payloads[slot]
            .take()
            .expect("payload already taken — queue invariant broken");
        self.free.push(slot);
        Some((key.time, event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((key, _))| key.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(30, 0, 'c');
        q.push(10, 0, 'a');
        q.push(20, 0, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
    }

    #[test]
    fn same_time_fifo_within_priority() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5, 0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn priority_classes_break_ties() {
        let mut q = EventQueue::new();
        q.push(5, 2, "last");
        q.push(5, 0, "first");
        q.push(5, 1, "middle");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "last");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(7, 0, ());
        q.push(3, 0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(3));
        q.pop();
        assert_eq!(q.peek_time(), Some(7));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(1, 0, 1);
        q.push(5, 0, 5);
        assert_eq!(q.pop(), Some((1, 1)));
        q.push(3, 0, 3);
        q.push(2, 0, 2);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((5, 5)));
    }

    #[test]
    fn storage_is_reclaimed() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..50 {
                q.push(round * 100 + i, 0, i);
            }
            for _ in 0..50 {
                q.pop();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.payloads.len() < 200,
            "payload storage grew unboundedly: {}",
            q.payloads.len()
        );
    }

    #[test]
    fn storage_is_reclaimed_under_interleaved_push_pop() {
        // One long-lived event pins a low slot while short-lived events
        // churn through. Tail-only reclamation never reused the popped
        // slots below the pinned tail, so storage grew by one slot per
        // iteration; with the free list it stays at the peak live count.
        let mut q = EventQueue::new();
        q.push(u64::MAX, 0, 0); // pinned: never popped during the churn
        for i in 0..10_000u64 {
            q.push(i, 0, i);
            q.push(i, 1, i);
            let _ = q.pop();
            let _ = q.pop();
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.payloads.len() <= 4,
            "interleaved churn grew storage to {} slots",
            q.payloads.len()
        );
    }
}
