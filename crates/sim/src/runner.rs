//! Deterministic parallel replication/sweep runner.
//!
//! Every figure binary runs the Monte-Carlo contention simulator over tens
//! of independent parameter points (and, for tighter confidence intervals,
//! over independent replications of the same point). Those runs share no
//! state, so they parallelize perfectly — *if* the result is guaranteed to
//! be exactly what the serial loop would have produced. This module
//! provides that guarantee:
//!
//! ## Seed-derivation scheme
//!
//! Replication `i` of a configuration with master seed `m` runs with seed
//! [`replication_seed`]`(m, i)` — the `i`-th output of the SplitMix64
//! stream seeded with `m` (computed in O(1) because SplitMix64's state
//! advances by a fixed constant, so the `i`-th state is
//! `m + (i+1)·0x9E37_79B9_7F4A_7C15` and one finalizer application yields
//! the output). Each replication's seed therefore depends only on
//! `(master, i)`, never on which thread ran it or in what order.
//!
//! ## Determinism guarantee
//!
//! [`Runner::map`] assigns jobs to a work-stealing index counter but
//! returns results ordered by job index, and the statistic merges
//! ([`StatsSink::merge`], built on Chan et al.'s pairwise mean/variance
//! combination) are performed serially in job-index order after all
//! workers finish. Consequently **the output is bit-identical for every
//! thread count**, including `--threads 1`: parallelism changes wall-clock
//! time, never results. `runner_determinism` integration tests pin this.
//!
//! ## Thread-count selection
//!
//! [`Runner::from_env`] uses all available cores, overridden by the
//! `WSN_SIM_THREADS` environment variable (CI pins single-threaded runs
//! with `WSN_SIM_THREADS=1`); the figure binaries additionally accept
//! `--threads N`, which takes precedence.
//!
//! ## Per-worker simulation workspaces
//!
//! The contention engine draws its scratch (calendar-queue ring, node
//! array, offsets, corruption buffer) from a thread-local
//! [`SimWorkspace`](crate::contention::SimWorkspace). Each worker spawned
//! by [`Runner::map`] therefore allocates that scratch once — on the first
//! job it steals — and reuses it for every further job, so a channels ×
//! replications grid pays O(workers) allocations instead of O(jobs).
//! Workers are scoped threads, so their workspaces live for one `map`
//! call; only the serial path (and the single-threaded fast path, which
//! runs jobs inline) carries its workspace across calls. The workspace is
//! pure scratch (fully reinitialized per run), so this reuse cannot
//! perturb the determinism guarantee; the `workspace_reuse` suite pins
//! that.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use wsn_phy::ber::BerModel;

use crate::contention::{run_channel_sim_into, ChannelSimConfig};
use crate::network::{NetworkAccumulator, NetworkConfig, NetworkSimulator, NetworkSummary};
use crate::sink::StatsSink;
use crate::stats::ContentionStats;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "WSN_SIM_THREADS";

/// SplitMix64 finalizer (Steele, Lea & Flood's `mix64` variant 13).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `index`-th output of the SplitMix64 stream seeded with `master`:
/// the per-replication seed used by [`Runner::replicate_contention`].
///
/// # Examples
///
/// ```
/// use wsn_sim::runner::replication_seed;
///
/// // Pure function of (master, index) — thread-schedule independent.
/// assert_eq!(replication_seed(42, 3), replication_seed(42, 3));
/// assert_ne!(replication_seed(42, 3), replication_seed(42, 4));
/// assert_ne!(replication_seed(42, 3), replication_seed(43, 3));
/// ```
pub fn replication_seed(master: u64, index: u64) -> u64 {
    splitmix64_mix(master.wrapping_add((index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A job that panicked under [`Runner::map_catching`], reduced to its
/// panic message.
///
/// The runner's plain [`Runner::map`] propagates job panics to the caller
/// — correct for in-code experiments, fatal for a batch farm where one
/// poisoned saved scenario must not take down 10 000 healthy ones.
/// [`Runner::map_catching`] confines each panic to its own job slot and
/// hands the caller this typed residue instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, downcast to text where possible.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-size pool of scoped worker threads executing embarrassingly
/// parallel jobs with deterministic, index-ordered results.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A single-threaded runner (the serial reference path).
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A runner sized from the environment: `WSN_SIM_THREADS` if set to a
    /// positive integer, otherwise the number of available cores.
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_var.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Runner::with_threads(threads)
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `jobs` on the worker pool, returning results in job
    /// order. `f` receives `(job_index, &job)`.
    ///
    /// Job-to-thread assignment is dynamic (an atomic index counter), but
    /// because every job is a pure function of its index and results are
    /// reassembled by index, the output is identical for any thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn map<T, R, F>(&self, jobs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(jobs.len());
        // Telemetry: the map/job counts are properties of the work list
        // (deterministic section); per-job walls accumulate in a
        // worker-local shard and fold in once per worker, so an enabled
        // run costs one registry lock per worker, not one per job.
        let telem = crate::telemetry::enabled() && !jobs.is_empty();
        if telem {
            crate::telemetry::note_map(jobs.len() as u64, workers.max(1) as u64);
        }
        if workers <= 1 {
            if !telem {
                return jobs.iter().enumerate().map(|(i, job)| f(i, job)).collect();
            }
            let map_span = crate::telemetry::Span::enter(crate::telemetry::Phase::Map);
            let mut job_walls = crate::telemetry::TimingStat::NEW;
            let out = jobs
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let t0 = Instant::now();
                    let r = f(i, job);
                    job_walls.record(t0.elapsed().as_secs_f64() * 1e3);
                    r
                })
                .collect();
            crate::telemetry::merge_job_timing(&job_walls);
            drop(map_span);
            return out;
        }

        let map_span = telem.then(|| crate::telemetry::Span::enter(crate::telemetry::Phase::Map));
        let next = AtomicUsize::new(0);
        let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs.len()));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut job_walls = telem.then_some(crate::telemetry::TimingStat::NEW);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        match job_walls.as_mut() {
                            None => local.push((i, f(i, &jobs[i]))),
                            Some(walls) => {
                                let t0 = Instant::now();
                                let r = f(i, &jobs[i]);
                                walls.record(t0.elapsed().as_secs_f64() * 1e3);
                                local.push((i, r));
                            }
                        }
                    }
                    if let Some(walls) = job_walls {
                        crate::telemetry::merge_job_timing(&walls);
                    }
                    gathered
                        .lock()
                        .expect("a sibling worker panicked")
                        .extend(local);
                });
            }
        });
        drop(map_span);

        let mut pairs = gathered
            .into_inner()
            .expect("a worker panicked while holding the result lock");
        debug_assert_eq!(pairs.len(), jobs.len(), "every job produces one result");
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Like [`map`](Self::map), but a panicking job yields
    /// `Err(`[`JobPanic`]`)` in its slot instead of taking down the whole
    /// map call (and, under parallelism, the sibling workers' results).
    ///
    /// Each job runs under `catch_unwind`; the `AssertUnwindSafe` wrapper
    /// is sound here because jobs are pure functions of their index — a
    /// panicked job's only observable effect is its discarded result
    /// slot, so no shared state can be seen half-mutated. Results keep
    /// the deterministic job-index order; which jobs panic is as
    /// reproducible as any other job output.
    ///
    /// The caught panic still flows through the global panic hook first
    /// (so the default "thread panicked" line appears on stderr once per
    /// poisoned job); the process, and every other job, keeps running.
    pub fn map_catching<T, R, F>(&self, jobs: &[T], f: F) -> Vec<Result<R, JobPanic>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map(jobs, |i, job| {
            std::panic::catch_unwind(AssertUnwindSafe(|| f(i, job)))
                .map_err(|payload| JobPanic {
                    message: panic_message(payload),
                })
        })
    }

    /// Simulates every configuration of a parameter sweep in parallel,
    /// reducing each point online ([`StatsSink`] — no trace allocation).
    /// Results are in `configs` order and bit-identical to running
    /// [`crate::simulate_contention`] over the slice serially.
    pub fn sweep_contention(&self, configs: &[ChannelSimConfig]) -> Vec<ContentionStats> {
        self.map(configs, |_, cfg| {
            let timings = cfg.timings();
            let mut sink = StatsSink::new();
            run_channel_sim_into(cfg, &timings, |_| false, &mut sink);
            sink.contention_stats()
        })
    }

    /// Maps `f` over the flat `items × replications` grid, returning one
    /// `Vec` of per-replication results per item (item order preserved,
    /// replication order within each item). `f` receives
    /// `(item_index, &item, replication_index)`.
    ///
    /// This is the shared fan-out discipline behind every replicated
    /// sweep — contention prewarming, figure timing sweeps, scenario
    /// grids: all jobs go to the pool as one list (maximum parallelism),
    /// and callers merge each item's replications in replication order,
    /// which keeps the reduction bit-identical for every thread count.
    pub fn map_replicated<T, R, F>(&self, items: &[T], replications: u32, f: F) -> Vec<Vec<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T, u64) -> R + Sync,
    {
        let reps = replications.max(1) as usize;
        let jobs: Vec<(usize, u64)> = (0..items.len())
            .flat_map(|i| (0..reps as u64).map(move |r| (i, r)))
            .collect();
        let mut flat = self.map(&jobs, |_, &(i, r)| f(i, &items[i], r)).into_iter();
        (0..items.len())
            .map(|_| flat.by_ref().take(reps).collect())
            .collect()
    }

    /// Runs `replications` independent copies of `base` (seeds derived via
    /// [`replication_seed`]) and merges their full statistics sinks in
    /// replication order.
    ///
    /// The merged [`StatsSink`] exposes the sufficient statistics behind
    /// [`ContentionStats`] — in particular the
    /// [`Accumulator::standard_error`](crate::stats::Accumulator::standard_error)
    /// of the mean contention duration and CCA count, and the binomial
    /// errors of the probability counters — which the figure binaries
    /// print as `value ± stderr` columns.
    ///
    /// The per-configuration [`crate::contention::SlotTimings`] are
    /// computed once and shared by every replication.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    pub fn replicate_contention_sink(
        &self,
        base: &ChannelSimConfig,
        replications: u32,
    ) -> StatsSink {
        assert!(replications > 0, "at least one replication required");
        let timings = base.timings();
        let indices: Vec<u64> = (0..replications as u64).collect();
        let shards = self.map(&indices, |_, &i| {
            let mut cfg = base.clone();
            cfg.seed = replication_seed(base.seed, i);
            let mut sink = StatsSink::new();
            run_channel_sim_into(&cfg, &timings, |_| false, &mut sink);
            sink
        });
        let mut merged = StatsSink::new();
        for shard in &shards {
            merged.merge(shard);
        }
        merged
    }

    /// Runs `replications` independent copies of `base` and merges their
    /// statistics in replication order; the finalized form of
    /// [`replicate_contention_sink`](Self::replicate_contention_sink).
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    pub fn replicate_contention(
        &self,
        base: &ChannelSimConfig,
        replications: u32,
    ) -> ContentionStats {
        self.replicate_contention_sink(base, replications)
            .contention_stats()
    }

    /// Simulates every network configuration in parallel, one streaming
    /// replication each. Results are in `configs` order and bit-identical
    /// to calling [`NetworkSimulator::run_streaming`] over the slice
    /// serially — the paper's 16-channel case study is 16 entries here.
    pub fn sweep_network<B: BerModel + Sync>(
        &self,
        configs: &[NetworkConfig],
        ber: &B,
    ) -> Vec<NetworkSummary> {
        self.map(configs, |_, cfg| {
            NetworkSimulator::new(cfg.clone()).run_streaming(ber)
        })
    }

    /// Runs `replications` independent copies of the network simulation
    /// `base` (channel seeds derived via [`replication_seed`], which also
    /// reseeds the corruption oracle) and merges the per-replication
    /// [`NetworkAccumulator`]s in replication order, so the summary's
    /// standard errors are replication-based.
    ///
    /// Bit-identical for every thread count, like every runner reduction.
    ///
    /// # Panics
    ///
    /// Panics if `replications` is zero.
    pub fn replicate_network<B: BerModel + Sync>(
        &self,
        base: &NetworkConfig,
        replications: u32,
        ber: &B,
    ) -> NetworkSummary {
        assert!(replications > 0, "at least one replication required");
        let indices: Vec<u64> = (0..replications as u64).collect();
        let shards = self.map(&indices, |_, &i| {
            // O(1) config view: the `Arc`-backed fields share storage, so
            // each replication only writes its derived seed.
            let mut cfg = base.clone();
            cfg.channel.seed = replication_seed(base.channel.seed, i);
            let mut acc = NetworkSimulator::new(cfg).run_accumulate(ber);
            acc.seal_replication();
            acc
        });
        let mut merged = NetworkAccumulator::new();
        for shard in &shards {
            merged.merge(shard);
        }
        merged.summary()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_job_order() {
        let jobs: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 5, 16] {
            let runner = Runner::with_threads(threads);
            let out = runner.map(&jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let want: Vec<u64> = jobs.iter().map(|&x| x * x).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let runner = Runner::with_threads(8);
        let empty: Vec<u32> = Vec::new();
        assert!(runner.map(&empty, |_, &x| x).is_empty());
        assert_eq!(runner.map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_clamped_positive() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
        assert_eq!(Runner::serial().threads(), 1);
    }

    #[test]
    fn replication_seeds_differ_from_master_and_each_other() {
        let seeds: Vec<u64> = (0..32).map(|i| replication_seed(0xABCD, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "seed collision");
        assert!(!seeds.contains(&0xABCD));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let configs: Vec<ChannelSimConfig> = [0.2, 0.4, 0.6]
            .iter()
            .map(|&load| {
                let mut c = ChannelSimConfig::figure6(50, load, 0x5EED);
                c.superframes = 6;
                c
            })
            .collect();
        let serial = Runner::serial().sweep_contention(&configs);
        let parallel = Runner::with_threads(3).sweep_contention(&configs);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn replicate_contention_sink_matches_stats() {
        let mut base = ChannelSimConfig::figure6(50, 0.4, 0xC0DE);
        base.superframes = 5;
        base.nodes = 30;
        let runner = Runner::with_threads(2);
        let sink = runner.replicate_contention_sink(&base, 4);
        assert_eq!(
            sink.contention_stats(),
            runner.replicate_contention(&base, 4)
        );
        // Four replications of samples → meaningful standard errors.
        assert!(sink.contention.contention_us.standard_error() > 0.0);
        assert!(sink.contention.ccas.standard_error() > 0.0);
    }

    #[test]
    fn network_replications_are_bit_identical_across_thread_counts() {
        use crate::network::{NetworkConfig, TxPowerPolicy};
        use wsn_phy::ber::EmpiricalCc2420Ber;
        use wsn_radio::RadioModel;
        use wsn_units::{DBm, Db, Seconds};

        let mut channel = ChannelSimConfig::figure6(120, 0.4, 0x11E7);
        channel.nodes = 15;
        channel.superframes = 5;
        let base = NetworkConfig {
            path_losses: vec![Db::new(75.0); channel.nodes].into(),
            channel,
            radio: RadioModel::cc2420(),
            tx_policy: TxPowerPolicy::ChannelInversion {
                target_rx: DBm::new(-88.0),
            },
            coordinator_tx: DBm::new(0.0),
            wakeup_margin: Seconds::from_millis(1.0),
            corrupt_probs: None,
        };
        let ber = EmpiricalCc2420Ber::paper();
        let serial = Runner::serial().replicate_network(&base, 5, &ber);
        assert_eq!(serial.replications, 5);
        assert!(serial.power_standard_error.microwatts() > 0.0);
        for threads in [2, 4] {
            let parallel = Runner::with_threads(threads).replicate_network(&base, 5, &ber);
            assert_eq!(
                serial.mean_node_power, parallel.mean_node_power,
                "threads={threads}"
            );
            assert_eq!(serial.failure_ratio, parallel.failure_ratio);
            assert_eq!(serial.mean_delay, parallel.mean_delay);
            assert_eq!(serial.power_standard_error, parallel.power_standard_error);
        }
    }

    #[test]
    fn map_catching_confines_panics_to_their_job_slot() {
        let jobs: Vec<u64> = (0..23).collect();
        for threads in [1, 4] {
            let runner = Runner::with_threads(threads);
            let out = runner.map_catching(&jobs, |_, &x| {
                if x % 7 == 3 {
                    panic!("poisoned job {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), jobs.len(), "threads={threads}");
            for (i, result) in out.iter().enumerate() {
                if i % 7 == 3 {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.message, format!("poisoned job {i}"));
                } else {
                    assert_eq!(*result.as_ref().unwrap(), i as u64 * 2);
                }
            }
        }
    }

    #[test]
    fn map_catching_is_deterministic_across_thread_counts() {
        let jobs: Vec<u64> = (0..31).collect();
        let run = |threads| {
            Runner::with_threads(threads).map_catching(&jobs, |_, &x| {
                if x == 11 {
                    panic!("always fails");
                }
                x
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn parallel_replications_are_bit_identical_to_serial() {
        let mut base = ChannelSimConfig::figure6(50, 0.4, 0xFEED);
        base.superframes = 5;
        base.nodes = 30;
        let serial = Runner::serial().replicate_contention(&base, 8);
        for threads in [2, 3, 8] {
            let parallel = Runner::with_threads(threads).replicate_contention(&base, 8);
            assert_eq!(serial, parallel, "threads={threads}");
        }
        // More replications accumulate more procedures.
        let fewer = Runner::serial().replicate_contention(&base, 2);
        assert!(serial.procedures > fewer.procedures);
    }
}
