//! Durable progress journal for restartable batch runs.
//!
//! A long farm run should survive `kill -9`. The batch service therefore
//! appends one fsync'd JSONL record to a journal file after *emitting* each
//! scenario's result (emit-then-journal: a crash between the two can only
//! duplicate a record on resume, never lose one — and duplicates are
//! trivially identified by the `fingerprint`). On `--resume`, the journal is
//! reloaded and scenarios whose [config fingerprint]
//! [`crate::persist::fingerprint_scenario`] matches an `ok` journal entry
//! are skipped; scenarios whose file changed (different fingerprint), or
//! that previously failed or timed out, re-run.
//!
//! One journal line looks like:
//!
//! ```json
//! {"journal":1,"scenario":"case_study_s5","fingerprint":"91b4e5602cf31a77","status":"ok","attempts":1,"elapsed_ms":4.25}
//! ```
//!
//! The loader tolerates a **torn final line** (a crash mid-append leaves a
//! partial last record; it is dropped and that scenario simply re-runs).
//! Corruption anywhere *else* is an error — it means something other than a
//! tear happened to the file, and silently skipping interior records would
//! turn resume into silent data loss.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::persist::{self, Node, ParseError, Value};

/// The journal line format version.
pub const JOURNAL_VERSION: u64 = 1;

/// One journaled scenario completion.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The scenario's name (unique within a batch).
    pub scenario: String,
    /// [`crate::persist::fingerprint_scenario`] of the saved scenario as
    /// it was when this record ran.
    pub fingerprint: String,
    /// `"ok"`, `"failed"` or `"timeout"` — only `"ok"` entries are
    /// skippable on resume.
    pub status: String,
    /// Attempts consumed (1 on a first-try success; retried panics
    /// count up).
    pub attempts: u64,
    /// Wall-clock the scenario cost in this run, milliseconds.
    pub elapsed_ms: f64,
}

impl JournalRecord {
    /// True when a resume run may skip a scenario carrying `fingerprint`.
    pub fn skippable(&self, fingerprint: &str) -> bool {
        self.status == "ok" && self.fingerprint == fingerprint
    }

    fn to_json(&self) -> Node {
        persist::json::obj(vec![
            ("journal", persist::json::uint(JOURNAL_VERSION)),
            ("scenario", persist::json::string(&self.scenario)),
            ("fingerprint", persist::json::string(&self.fingerprint)),
            ("status", persist::json::string(&self.status)),
            ("attempts", persist::json::uint(self.attempts)),
            ("elapsed_ms", persist::json::num(self.elapsed_ms)),
        ])
    }

    fn from_json(root: &Node) -> Result<Self, ParseError> {
        let err = |node: &Node, expected: &str| ParseError {
            line: node.line,
            col: node.col,
            expected: expected.to_string(),
        };
        let pairs = match &root.value {
            Value::Obj(pairs) => pairs,
            _ => return Err(err(root, "a journal record object")),
        };
        let mut scenario = None;
        let mut fingerprint = None;
        let mut status = None;
        let mut attempts = None;
        let mut elapsed_ms = None;
        for (k, node) in pairs {
            match k.name.as_str() {
                "journal" => match node.value {
                    Value::UInt(v) if v == JOURNAL_VERSION => {}
                    _ => return Err(err(node, &format!("journal version {JOURNAL_VERSION}"))),
                },
                "scenario" => match &node.value {
                    Value::Str(s) => scenario = Some(s.clone()),
                    _ => return Err(err(node, "a scenario name string")),
                },
                "fingerprint" => match &node.value {
                    Value::Str(s) => fingerprint = Some(s.clone()),
                    _ => return Err(err(node, "a fingerprint string")),
                },
                "status" => match &node.value {
                    Value::Str(s) if s == "ok" || s == "failed" || s == "timeout" => {
                        status = Some(s.clone())
                    }
                    _ => return Err(err(node, "status `ok`, `failed` or `timeout`")),
                },
                "attempts" => match node.value {
                    Value::UInt(v) => attempts = Some(v),
                    _ => return Err(err(node, "an attempt count")),
                },
                "elapsed_ms" => match node.value {
                    Value::Float(x) => elapsed_ms = Some(x),
                    Value::UInt(u) => elapsed_ms = Some(u as f64),
                    _ => return Err(err(node, "elapsed milliseconds")),
                },
                other => return Err(err(root, &format!("no field `{other}` in a journal record"))),
            }
        }
        Ok(JournalRecord {
            scenario: scenario.ok_or_else(|| err(root, "field `scenario`"))?,
            fingerprint: fingerprint.ok_or_else(|| err(root, "field `fingerprint`"))?,
            status: status.ok_or_else(|| err(root, "field `status`"))?,
            attempts: attempts.ok_or_else(|| err(root, "field `attempts`"))?,
            elapsed_ms: elapsed_ms.ok_or_else(|| err(root, "field `elapsed_ms`"))?,
        })
    }
}

/// Why a journal could not be loaded.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The file could not be read or written.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The OS error text.
        error: String,
    },
    /// A record *before* the final line failed to parse — the file has
    /// been damaged by something other than a torn final append.
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// 1-based line number of the bad record.
        line: usize,
        /// The parse diagnostic.
        error: ParseError,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            JournalError::Corrupt { path, line, error } => write!(
                f,
                "{}: corrupt journal record on line {line}: {error}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// What [`load_journal`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalLoad {
    /// Every parsed record, in append order (a re-run scenario appears
    /// more than once; the last record wins).
    pub records: Vec<JournalRecord>,
    /// True when a torn final line was dropped.
    pub torn_tail: bool,
}

impl JournalLoad {
    /// The last record journaled for `scenario`, if any.
    pub fn latest(&self, scenario: &str) -> Option<&JournalRecord> {
        self.records.iter().rev().find(|r| r.scenario == scenario)
    }
}

/// Loads a journal, tolerating a torn final line. A missing file is an
/// empty journal (first run with `--resume` is fine).
///
/// # Errors
///
/// [`JournalError::Io`] on read failure; [`JournalError::Corrupt`] when a
/// *non-final* line fails to parse.
pub fn load_journal(path: &Path) -> Result<JournalLoad, JournalError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(JournalLoad {
                records: Vec::new(),
                torn_tail: false,
            })
        }
        Err(e) => {
            return Err(JournalError::Io {
                path: path.to_path_buf(),
                error: e.to_string(),
            })
        }
    };
    // The journal is machine-written ASCII; lossy decoding only matters
    // for a tear through a (never-emitted) multi-byte sequence.
    let text = String::from_utf8_lossy(&bytes);
    let complete_tail = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::with_capacity(lines.len());
    let mut torn_tail = false;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let final_line = i + 1 == lines.len();
        let parsed = persist::parse_document(line).and_then(|n| JournalRecord::from_json(&n));
        match parsed {
            Ok(record) => records.push(record),
            Err(_) if final_line && !complete_tail => {
                // A crash mid-append: drop the partial record; its
                // scenario re-runs.
                torn_tail = true;
            }
            Err(error) => {
                return Err(JournalError::Corrupt {
                    path: path.to_path_buf(),
                    line: i + 1,
                    error,
                })
            }
        }
    }
    Ok(JournalLoad { records, torn_tail })
}

/// Appends fsync'd journal records.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: File,
}

impl JournalWriter {
    /// Opens a fresh journal, truncating any prior one (non-resume runs
    /// must not inherit stale completions).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on open failure.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        Self::open(path, false)
    }

    /// Opens a journal for appending (resume runs extend the history).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on open failure.
    pub fn resume(path: &Path) -> Result<Self, JournalError> {
        Self::open(path, true)
    }

    fn open(path: &Path, append: bool) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .create(true)
            .append(append)
            .write(true)
            .truncate(!append)
            .open(path)
            .map_err(|e| JournalError::Io {
                path: path.to_path_buf(),
                error: e.to_string(),
            })?;
        Ok(JournalWriter {
            path: path.to_path_buf(),
            file,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and syncs it to disk before returning — after
    /// this call the completion survives `kill -9`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write or sync failure.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let io_err = |e: io::Error| JournalError::Io {
            path: self.path.clone(),
            error: e.to_string(),
        };
        let mut line = persist::render_compact(&record.to_json());
        line.push('\n');
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.sync_data().map_err(io_err)
    }
}

/// Truncates a torn final line (no trailing newline) off a JSONL file,
/// returning how many bytes were dropped. Used on `--resume` to repair the
/// *output* stream a killed run left behind, so appended records
/// concatenate cleanly. A missing file is a no-op.
///
/// # Errors
///
/// Propagates read/write failures.
pub fn repair_jsonl_tail(path: &Path) -> io::Result<u64> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(0);
    }
    let keep = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    let dropped = (bytes.len() - keep) as u64;
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(keep as u64)?;
    file.sync_data()?;
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, status: &str) -> JournalRecord {
        JournalRecord {
            scenario: name.to_string(),
            fingerprint: format!("fp-{name}"),
            status: status.to_string(),
            attempts: 1,
            elapsed_ms: 2.5,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wsn_journal_test_{tag}_{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_records() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record("a", "ok")).unwrap();
        w.append(&record("b", "failed")).unwrap();
        let load = load_journal(&path).unwrap();
        assert!(!load.torn_tail);
        assert_eq!(load.records, vec![record("a", "ok"), record("b", "failed")]);
        assert!(load.latest("a").unwrap().skippable("fp-a"));
        assert!(!load.latest("a").unwrap().skippable("fp-other"));
        assert!(!load.latest("b").unwrap().skippable("fp-b"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let load = load_journal(Path::new("/nonexistent/journal.jsonl")).unwrap();
        assert!(load.records.is_empty());
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = temp_path("torn");
        let _ = fs::remove_file(&path);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record("a", "ok")).unwrap();
        w.append(&record("b", "ok")).unwrap();
        drop(w);
        // Tear the final record mid-write: chop the trailing bytes.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();
        let load = load_journal(&path).unwrap();
        assert!(load.torn_tail);
        assert_eq!(load.records, vec![record("a", "ok")]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = temp_path("corrupt");
        fs::write(&path, "{\"garbage\n{\"journal\":1}\n").unwrap();
        let err = load_journal(&path).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 1, .. }), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_and_resume_appends() {
        let path = temp_path("modes");
        let _ = fs::remove_file(&path);
        JournalWriter::create(&path)
            .unwrap()
            .append(&record("stale", "ok"))
            .unwrap();
        JournalWriter::create(&path)
            .unwrap()
            .append(&record("fresh", "ok"))
            .unwrap();
        let load = load_journal(&path).unwrap();
        assert_eq!(load.records, vec![record("fresh", "ok")]);
        JournalWriter::resume(&path)
            .unwrap()
            .append(&record("more", "ok"))
            .unwrap();
        let load = load_journal(&path).unwrap();
        assert_eq!(load.records.len(), 2);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repair_drops_only_a_torn_tail() {
        let path = temp_path("repair");
        fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"tor").unwrap();
        let dropped = repair_jsonl_tail(&path).unwrap();
        assert_eq!(dropped, 5);
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
        // Idempotent on a clean file.
        assert_eq!(repair_jsonl_tail(&path).unwrap(), 0);
        fs::remove_file(&path).unwrap();
    }
}
