//! Slot-grid Monte-Carlo simulation of the slotted CSMA/CA contention
//! procedure on a single 802.15.4 channel.
//!
//! This is the reproduction of the paper's (unreleased) contention
//! simulator: `N` nodes share one channel; each node offers one packet per
//! superframe; channel accesses follow slotted CSMA/CA on the 320 µs unit
//! backoff grid; collisions occur when two transmissions start in the same
//! backoff slot; acknowledged transmissions additionally occupy the channel
//! for the ACK turnaround. The output is the per-procedure statistics the
//! analytical model consumes ([`ContentionStats`], the paper's Figure 6).
//!
//! ## Modeling choices (documented divergences)
//!
//! * **Arrival pattern.** Nodes become ready at a fixed per-node offset
//!   uniformly distributed over the superframe (their 120-byte buffers fill
//!   at staggered phases), not synchronized at the beacon. Synchronizing
//!   all 100 nodes at the beacon would produce failure rates far above the
//!   paper's reported 16 % — the uniform reading is the only one consistent
//!   with the published case-study numbers. A `synchronized_arrivals`
//!   switch exposes the literal reading for ablation.
//! * **Sensing rule.** A CCA at backoff boundary `t` reports busy iff some
//!   transmission is on the air at `t`. Transmissions starting exactly at
//!   `t` are *not* detectable (the energy rises while the CCA samples), so
//!   two nodes whose contention windows expire in the same slot collide —
//!   the standard slotted-CSMA collision mechanism.
//! * **Quantization.** Decisions live on the 320 µs grid; the channel-busy
//!   horizon is tracked in microseconds so packet airtimes stay exact.

use wsn_mac::csma::{CsmaAction, CsmaParams, SlottedCsmaCa};
use wsn_mac::gts::GtsRegistry;
use wsn_mac::RetryPolicy;
use wsn_phy::frame::{ack_duration, beacon_duration, PacketLayout};
use wsn_phy::noise::UniformSource;
use wsn_units::{Probability, Seconds};

use crate::cfp::{CfpPlan, DownlinkOutcome, DownlinkRecord, GtsRecord, DATA_REQUEST_AIR_BYTES};
use crate::events::{EventQueue, WindowError};
use crate::faults::{FaultKind, FaultPlan, FaultRecord};
use crate::rng::Xoshiro256StarStar;
use crate::sink::{StatsSink, TraceCollector, TraceSink};
use crate::stats::ContentionStats;

/// Microseconds per unit backoff period.
pub(crate) const SLOT_US: u64 = 320;

/// Extra slots reserved past one superframe: the worst CSMA backoff /
/// airtime / ACK tail an event can be scheduled into. Shared between the
/// engine's window reservation and [`ChannelSimConfig::validate`] so the
/// pre-flight check and the actual reservation agree exactly.
pub(crate) const WINDOW_SLACK: u64 = 300;

/// A [`ChannelSimConfig`] that the engine would reject.
///
/// Returned by [`ChannelSimConfig::validate`]; the engine performs the
/// same checks on entry and panics with the matching message, so callers
/// that want a `Result` instead of a panic validate up front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `nodes == 0`.
    NoNodes,
    /// Load outside the open interval `(0, 1)` (the superframe length
    /// `T_ib = N·T_packet / λ` is undefined or degenerate outside it).
    BadLoad(
        /// The offending load value.
        f64,
    ),
    /// Fewer than two superframes (the first is warm-up and unrecorded,
    /// so nothing would be measured).
    TooFewSuperframes(
        /// The offending superframe count.
        u32,
    ),
    /// The implied superframe window exceeds the calendar queue's
    /// [`MAX_WINDOW`](crate::events::MAX_WINDOW) ceiling.
    Window(
        /// The typed window overflow from the event queue.
        WindowError,
    ),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "at least one node required"),
            ConfigError::BadLoad(load) => write!(f, "load must be in (0,1), got {load}"),
            ConfigError::TooFewSuperframes(n) => {
                write!(f, "need at least two superframes, got {n}")
            }
            ConfigError::Window(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<WindowError> for ConfigError {
    fn from(err: WindowError) -> Self {
        ConfigError::Window(err)
    }
}

/// Configuration of a single-channel contention simulation.
#[derive(Debug, Clone)]
pub struct ChannelSimConfig {
    /// Number of nodes sharing the channel (the paper uses 100).
    pub nodes: usize,
    /// Uplink packet layout (payload + the paper's 13-byte overhead).
    pub packet: PacketLayout,
    /// Network load λ: aggregate packet airtime over the inter-beacon
    /// period. Determines the superframe length as
    /// `T_ib = N·T_packet / λ`.
    pub load: f64,
    /// CSMA/CA parameters.
    pub csma: CsmaParams,
    /// Retransmission budget (`N_max`).
    pub retries: RetryPolicy,
    /// Number of superframes to simulate (the first is warm-up and not
    /// recorded).
    pub superframes: u32,
    /// Master seed.
    pub seed: u64,
    /// `true` to start every node's contention right after the beacon (the
    /// paper's literal prose); `false` for staggered per-node offsets.
    pub synchronized_arrivals: bool,
    /// Contention-free period plan: GTS holders and downlink polling.
    /// [`CfpPlan::inert`] (the default everywhere CAP-only semantics are
    /// expected) provably leaves the engine untouched.
    pub cfp: CfpPlan,
    /// Fault-injection plan: node churn and coordinator outages.
    /// [`FaultPlan::inert`] (the default) provably leaves the engine
    /// untouched; see [`crate::faults`] for the determinism contract.
    pub faults: FaultPlan,
}

impl ChannelSimConfig {
    /// The paper's Figure 6 configuration for a given payload and load:
    /// 100 nodes, standard CSMA parameters, `N_max = 5`.
    ///
    /// # Panics
    ///
    /// Panics if `load` is not in `(0, 1)`.
    pub fn figure6(payload_bytes: usize, load: f64, seed: u64) -> Self {
        assert!(
            load > 0.0 && load < 1.0,
            "load must be in (0,1), got {load}"
        );
        ChannelSimConfig {
            nodes: 100,
            packet: PacketLayout::with_payload(payload_bytes)
                .expect("payload within the paper's 123-byte maximum"),
            load,
            csma: CsmaParams::standard_2003(),
            retries: RetryPolicy::paper(),
            superframes: 60,
            seed,
            synchronized_arrivals: false,
            cfp: CfpPlan::inert(),
            faults: FaultPlan::inert(),
        }
    }

    /// Inter-beacon period implied by the load definition.
    pub fn beacon_interval(&self) -> Seconds {
        Seconds::from_secs(self.nodes as f64 * self.packet.duration().secs() / self.load)
    }

    /// Superframe length in backoff slots.
    fn superframe_slots(&self) -> u64 {
        (self.beacon_interval().micros() / SLOT_US as f64)
            .round()
            .max(8.0) as u64
    }

    /// Precomputes the per-configuration frame/ACK durations the engine
    /// consults on its hot path. Hoisting this out of the run lets a
    /// replication sweep pay the frame-layout arithmetic once per
    /// configuration instead of once per run.
    pub fn timings(&self) -> SlotTimings {
        let beacon_us = beacon_duration().micros().round() as u64;
        SlotTimings {
            superframe_slots: self.superframe_slots(),
            packet_us: self.packet.duration().micros().round() as u64,
            beacon_us,
            beacon_slots: beacon_us.div_ceil(SLOT_US),
            // Acknowledged transmissions hold the channel for t_ack⁻ + T_ack.
            ack_hold_us: 192 + ack_duration().micros().round() as u64,
            // A transmitter concludes "no acknowledgement" after t_ack⁺.
            ack_timeout_us: 864,
            mac_slot_backoffs: (self.superframe_slots() / 16).max(1),
            data_request_us: wsn_phy::consts::bytes(DATA_REQUEST_AIR_BYTES)
                .micros()
                .round() as u64,
        }
    }

    /// Checks every precondition the engine asserts on entry — node count,
    /// load interval, superframe count, and the calendar-queue window
    /// ceiling the implied superframe length must fit under — as a
    /// `Result` instead of a panic.
    ///
    /// `validate().is_ok()` guarantees [`run_channel_sim_into`] will not
    /// panic on configuration checks; the engine's panic messages match
    /// this error's [`Display`](core::fmt::Display) text.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if !(self.load > 0.0 && self.load < 1.0) {
            return Err(ConfigError::BadLoad(self.load));
        }
        if self.superframes < 2 {
            return Err(ConfigError::TooFewSuperframes(self.superframes));
        }
        // The engine reserves one superframe plus slack up front; a
        // superframe long enough to overflow MAX_WINDOW would panic inside
        // `reserve_window`.
        WindowError::check(self.superframe_slots() + WINDOW_SLACK)?;
        Ok(())
    }
}

/// Frame/ACK durations and grid constants derived once per configuration
/// (see [`ChannelSimConfig::timings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTimings {
    /// Superframe length in backoff slots.
    pub superframe_slots: u64,
    /// Uplink packet airtime in microseconds.
    pub packet_us: u64,
    /// Beacon airtime in microseconds.
    pub beacon_us: u64,
    /// Beacon airtime in whole backoff slots (rounded up).
    pub beacon_slots: u64,
    /// Channel hold time of an acknowledgement (t_ack⁻ + T_ack) in µs.
    pub ack_hold_us: u64,
    /// No-acknowledgement timeout t_ack⁺ in µs.
    pub ack_timeout_us: u64,
    /// Backoff slots per MAC superframe slot (1/16 of the superframe,
    /// floored at one) — the CFP slot grid.
    pub mac_slot_backoffs: u64,
    /// Data-request MAC command airtime in microseconds (downlink polls).
    pub data_request_us: u64,
}

/// Outcome of one contention procedure (one transmission attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Transmitted without collision and acknowledged.
    Delivered,
    /// Transmitted without collision but corrupted by channel noise (no
    /// acknowledgement) — only produced when a corruption hook is supplied.
    Corrupted,
    /// Collided with another transmission.
    Collided,
    /// CSMA/CA reported channel access failure.
    AccessFailure,
}

/// One contention procedure's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Node index.
    pub node: u32,
    /// Contention duration in backoff slots (start → transmission start or
    /// failure report).
    pub contention_slots: u64,
    /// CCAs performed.
    pub ccas: u32,
    /// Outcome.
    pub outcome: AttemptOutcome,
}

/// One application-level transaction (one packet in one superframe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransactionRecord {
    /// Node index.
    pub node: u32,
    /// Transmission attempts used (1..=N_max), 0 if access failed before
    /// any transmission.
    pub attempts: u32,
    /// `true` if the packet was delivered this superframe.
    pub delivered: bool,
    /// `true` if the transaction ended in a channel access failure.
    pub access_failure: bool,
    /// Superframes this packet had already waited before this transaction
    /// (0 = first try; delay ≈ (waited+1)·T_ib).
    pub superframes_waited: u32,
}

/// Full simulation trace.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// Per-procedure records (excluding warm-up).
    pub attempts: Vec<AttemptRecord>,
    /// Per-transaction records (excluding warm-up).
    pub transactions: Vec<TransactionRecord>,
    /// GTS (contention-free) transmission records (excluding warm-up).
    pub gts: Vec<GtsRecord>,
    /// Downlink poll records (excluding warm-up).
    pub downlinks: Vec<DownlinkRecord>,
    /// Fault events (excluding warm-up).
    pub faults: Vec<FaultRecord>,
    /// Arrivals skipped because the node was still busy with the previous
    /// transaction.
    pub overruns: u64,
    /// Superframe length in backoff slots.
    pub superframe_slots: u64,
}

impl SimTrace {
    /// Replays the trace into a sink, grouped by record type: all
    /// attempts (in engine order), then all transactions (in engine
    /// order), then the overruns. The live engine interleaves the three
    /// streams per event, and the trace does not retain that interleaving
    /// — so replay matches a streaming run exactly for reducers that fold
    /// each record type independently (such as [`StatsSink`] or
    /// [`TraceCollector`]), but not for sinks whose handling of one
    /// record type depends on the other types seen so far.
    pub fn replay<S: TraceSink>(&self, sink: &mut S) {
        for a in &self.attempts {
            sink.on_attempt(a);
        }
        for t in &self.transactions {
            sink.on_transaction(t);
        }
        for g in &self.gts {
            sink.on_gts(g);
        }
        for d in &self.downlinks {
            sink.on_downlink(d);
        }
        for f in &self.faults {
            sink.on_fault(f);
        }
        for _ in 0..self.overruns {
            sink.on_overrun();
        }
    }

    fn reduce_transactions(&self) -> StatsSink {
        let mut sink = StatsSink::new();
        for t in &self.transactions {
            sink.on_transaction(t);
        }
        sink
    }

    /// Reduces the trace to the model's contention statistics.
    pub fn contention_stats(&self) -> ContentionStats {
        let mut sink = StatsSink::new();
        for a in &self.attempts {
            sink.on_attempt(a);
        }
        sink.contention_stats()
    }

    /// Fraction of transactions that failed (channel access failure or
    /// retries exhausted) — the simulated counterpart of the model's
    /// `Pr_fail`.
    pub fn transaction_failure_ratio(&self) -> Probability {
        self.reduce_transactions().failure_ratio()
    }

    /// Mean attempts per transaction (delivered or not).
    pub fn mean_attempts(&self) -> f64 {
        self.reduce_transactions().mean_attempts()
    }

    /// Mean delivery delay in superframes (`1.0` = delivered in the first
    /// superframe), over delivered packets.
    pub fn mean_delivery_superframes(&self) -> f64 {
        self.reduce_transactions().mean_delivery_superframes()
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Beacon transmission starts (occupies the channel).
    Beacon,
    /// A node's packet becomes ready.
    Arrival { node: u32 },
    /// A node performs a CCA.
    Cca { node: u32 },
    /// A node's transmission ends (`end_us` is the exact airtime end).
    TxEnd { node: u32, end_us: u64 },
    /// A GTS holder transmits in its dedicated CFP slot (bypasses CSMA
    /// and the collision-cohort accounting entirely).
    GtsTx { node: u32 },
    /// A pending downlink frame's data-request poll becomes due.
    DlPoll { node: u32 },
}

// Priority classes resolve same-slot ties; the order reproduces the
// original heap-based engine exactly. That engine pre-pushed every beacon
// before the run began, so at equal `(slot, priority)` a beacon's sequence
// number always preceded any runtime TxEnd — beacons now get their own
// class above TxEnd, which encodes the same order without a sequence
// counter (and keeps it correct under lazy beacon scheduling). The CFP
// class orders GTS transmissions after every CAP event in their slot —
// they never read or write CAP channel state, so any fixed class would be
// deterministic; last keeps the CAP order exactly as before.
const PRIO_BEACON: u8 = 0; // channel state: beacon first …
const PRIO_TXEND: u8 = 1; // … then transmission endings
const PRIO_CCA: u8 = 2;
const PRIO_ARRIVAL: u8 = 3;
const PRIO_CFP: u8 = 4;

/// What a node's active CSMA procedure is transporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CsmaKind {
    /// The node's uplink data packet.
    Uplink,
    /// A downlink data-request MAC command (one procedure per poll, no
    /// retries — an undelivered frame stays pending at the coordinator).
    DataRequest,
}

/// Hot per-node scalars of the contention engine — the fields nearly
/// every event arm reads and writes, packed into one small struct so one
/// event's bookkeeping touches one cache line of the node array instead
/// of a whole aggregate `NodeState`.
#[derive(Debug, Clone, Copy)]
struct NodeHot {
    attempt: u32,
    superframes_waited: u32,
    cont_start_slot: u64,
    /// Start slot of this node's in-flight transmission (valid between
    /// its Transmit decision and its TxEnd) — the per-node half of the
    /// collision-cohort bookkeeping.
    tx_start_slot: u64,
    carry_packet: bool,
    active: bool,
    recording: bool,
    /// What the in-progress CSMA procedure carries (uplink packet or a
    /// downlink data request).
    kind: CsmaKind,
}

const NODE_HOT_INIT: NodeHot = NodeHot {
    attempt: 0,
    superframes_waited: 0,
    cont_start_slot: 0,
    tx_start_slot: 0,
    carry_packet: false,
    active: false,
    recording: false,
    kind: CsmaKind::Uplink,
};

/// Cold fault-plan per-node state, touched only at superframe boundaries
/// (and only under an active fault plan) — segregated so fault-free runs
/// never pull it into cache on the per-event path.
#[derive(Debug, Clone, Copy)]
struct NodeFault {
    /// `false` while the node's radio is off (dead or dormant). Always
    /// `true` in fault-free runs.
    alive: bool,
    /// The node drew a death mid-procedure; it dies when the procedure
    /// concludes (no calendar-queue surgery — see [`crate::faults`]).
    death_pending: bool,
    /// Retry budget exhausted: permanently off.
    dormant: bool,
    /// Superframes spent down since the node's death.
    down_superframes: u32,
    /// Failed re-association attempts since the node's death.
    join_retries: u32,
}

const NODE_FAULT_INIT: NodeFault = NodeFault {
    alive: true,
    death_pending: false,
    dormant: false,
    down_superframes: 0,
    join_retries: 0,
};

/// Reusable per-thread scratch of the contention engine: the calendar
/// queue, the struct-of-arrays node state, the arrival offsets and the
/// network layer's corruption-probability buffer.
///
/// Node state is deliberately struct-of-arrays — RNG streams, CSMA
/// machines, hot scalars ([`NodeHot`]), the two pending-record slots and
/// the cold fault group ([`NodeFault`]) live in parallel vectors — so the
/// per-slot hot loop at 10⁵⁺ nodes loads only the arrays an event arm
/// actually touches and stays L1/L2-resident instead of striding over a
/// ~160-byte aggregate per node.
///
/// A workspace is pure scratch — [`run_channel_sim_into_ws`] fully
/// reinitializes every field from the configuration, so reusing one across
/// runs (of *any* mix of configurations) is bit-identical to fresh
/// allocation; it merely skips the allocations. The `workspace_reuse`
/// integration suite pins that equivalence. Most callers never construct
/// one: [`run_channel_sim_into`] borrows the calling thread's implicit
/// workspace via [`with_workspace`], which is how the parallel
/// [`Runner`](crate::runner::Runner) gives each worker thread its own.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    queue: EventQueue<Ev>,
    /// Per-node RNG streams (`root.split(i)`).
    rngs: Vec<Xoshiro256StarStar>,
    /// Per-node in-flight CSMA machine, if any.
    csma: Vec<Option<SlottedCsmaCa>>,
    /// Per-node hot scalars (attempt counters, flags, slot marks).
    hot: Vec<NodeHot>,
    /// Attempt measured at transmission start, committed to the trace when
    /// its outcome is known at TxEnd (so attempts cut off by the horizon
    /// are never recorded with a fabricated outcome).
    pending_attempts: Vec<Option<AttemptRecord>>,
    /// Data-request contention measurements captured at transmission
    /// start, finalized into a [`DownlinkRecord`] at TxEnd.
    pending_dls: Vec<Option<(u64, u32)>>,
    /// Cold per-node fault state (alive/dormant/retry bookkeeping).
    fault: Vec<NodeFault>,
    offsets: Vec<u64>,
    /// Per-node downlink poll offsets (drawn only when the configuration
    /// polls at all).
    dl_offsets: Vec<u64>,
    /// Per-node packet/ACK corruption probabilities — the network
    /// simulator's oracle scratch (see `NetworkSimulator::drive`).
    pub(crate) corrupt_probs: Vec<f64>,
}

impl SimWorkspace {
    /// Creates an empty workspace; buffers grow to the largest
    /// configuration run through it and are then reused.
    pub fn new() -> Self {
        SimWorkspace::default()
    }
}

thread_local! {
    static WORKSPACE: std::cell::RefCell<SimWorkspace> =
        std::cell::RefCell::new(SimWorkspace::new());
}

/// Runs `f` with the calling thread's implicit [`SimWorkspace`].
///
/// Every thread owns exactly one. The serial path runs on the caller's
/// thread, so its workspace persists across entire sweeps and policy
/// loops; each of the [`Runner`](crate::runner::Runner)'s workers reuses
/// its own across all jobs it steals within one `map` call — a channels ×
/// replications grid allocates simulation scratch once per worker, not
/// once per job. (Workers are scoped threads, so their workspaces live
/// per `map` invocation: a multi-threaded policy loop pays one workspace
/// per worker per round.)
///
/// # Panics
///
/// Panics if called reentrantly (the workspace is exclusively borrowed
/// while `f` runs; trace sinks must not start nested simulations).
pub fn with_workspace<R>(f: impl FnOnce(&mut SimWorkspace) -> R) -> R {
    WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
}

/// Applies a deferred death at the end of the procedure that was in
/// flight when the node drew it. `death_pending` is only ever set when a
/// fault plan is active, so this is a no-op branch on the inert path.
fn resolve_pending_death<S: TraceSink>(
    f: &mut NodeFault,
    node: u32,
    in_warmup: bool,
    gts_registry: &mut Option<GtsRegistry>,
    sink: &mut S,
) {
    if !f.death_pending {
        return;
    }
    f.death_pending = false;
    f.alive = false;
    f.down_superframes = 0;
    f.join_retries = 0;
    if let Some(reg) = gts_registry.as_mut() {
        reg.deallocate(node as u16);
    }
    if !in_warmup {
        sink.on_fault(&FaultRecord {
            node,
            kind: FaultKind::Death,
        });
    }
}

/// Runs the channel simulation with a per-attempt corruption oracle,
/// streaming every finalized record into `sink`; returns the number of
/// events the discrete-event loop processed (the benchmark denominator).
///
/// This is the engine underneath [`run_channel_sim`] (which collects a
/// [`SimTrace`]) and [`simulate_contention`] (which reduces online via
/// [`StatsSink`]). `timings` must come from [`ChannelSimConfig::timings`]
/// for the same configuration; passing it in lets replication sweeps
/// compute the frame arithmetic once. Scratch comes from the calling
/// thread's implicit workspace ([`with_workspace`]); use
/// [`run_channel_sim_into_ws`] to manage the workspace explicitly.
///
/// # Panics
///
/// Panics if the configuration is structurally invalid (no nodes, load
/// outside `(0,1)`, fewer than two superframes).
pub fn run_channel_sim_into<F, S>(
    config: &ChannelSimConfig,
    timings: &SlotTimings,
    corrupt: F,
    sink: &mut S,
) -> u64
where
    F: FnMut(u32) -> bool,
    S: TraceSink,
{
    with_workspace(|ws| run_channel_sim_into_ws(config, timings, corrupt, sink, ws))
}

/// [`run_channel_sim_into`] over an explicit reusable [`SimWorkspace`]:
/// the zero-allocation fast path. The workspace is scratch only — results
/// are bit-identical whether it is fresh or reused, and regardless of what
/// configuration it last ran.
///
/// # Panics
///
/// As [`run_channel_sim_into`].
pub fn run_channel_sim_into_ws<F, S>(
    config: &ChannelSimConfig,
    timings: &SlotTimings,
    mut corrupt: F,
    sink: &mut S,
    ws: &mut SimWorkspace,
) -> u64
where
    F: FnMut(u32) -> bool,
    S: TraceSink,
{
    // Same checks (and messages) as `ChannelSimConfig::validate` — callers
    // that want a `Result` instead of a panic validate up front.
    if let Err(err) = config.validate() {
        panic!("{err}");
    }

    let sf_slots = timings.superframe_slots;
    let packet_us = timings.packet_us;
    let beacon_us = timings.beacon_us;
    let ack_hold_us = timings.ack_hold_us;
    let ack_timeout_us = timings.ack_timeout_us;

    let root = Xoshiro256StarStar::seed_from_u64(config.seed);
    ws.rngs.clear();
    ws.rngs
        .extend((0..config.nodes).map(|i| root.split(i as u64)));
    ws.csma.clear();
    ws.csma.resize_with(config.nodes, || None);
    ws.hot.clear();
    ws.hot.resize(config.nodes, NODE_HOT_INIT);
    ws.pending_attempts.clear();
    ws.pending_attempts.resize(config.nodes, None);
    ws.pending_dls.clear();
    ws.pending_dls.resize(config.nodes, None);
    ws.fault.clear();
    ws.fault.resize(config.nodes, NODE_FAULT_INIT);
    let mut offsets_rng = root.split(u64::MAX);

    // Fixed per-node arrival offsets (slots after the beacon).
    let beacon_slots = timings.beacon_slots;
    ws.offsets.clear();
    ws.offsets.extend((0..config.nodes).map(|_| {
        if config.synchronized_arrivals {
            beacon_slots
        } else {
            let span = sf_slots.saturating_sub(beacon_slots).max(1);
            beacon_slots + (offsets_rng.next_f64() * span as f64) as u64
        }
    }));

    // --- Contention-free period plan -----------------------------------
    // Every branch below is gated so an inert plan leaves the event
    // stream, RNG consumption and record stream bit-identical to the
    // CAP-only engine.
    let plan = config.cfp;
    let gts_nodes = plan.gts_nodes.min(config.nodes as u32);
    let polling = plan.downlink_rate > 0.0;
    if !plan.is_inert() {
        assert!(
            timings.superframe_slots >= 16,
            "a superframe must span its 16 MAC slots to carry a CFP"
        );
        if gts_nodes > 0 {
            assert!(
                packet_us <= plan.slots_per_gts as u64 * timings.mac_slot_backoffs * SLOT_US,
                "a {packet_us} µs packet does not fit a {}-slot GTS",
                plan.slots_per_gts
            );
        }
    }
    // Downlink polls use their own offsets and pending-draw stream so the
    // CAP arrival pattern is untouched by polling.
    let mut dl_rng = root.split(u64::MAX - 1);
    ws.dl_offsets.clear();
    if polling {
        ws.dl_offsets.extend((0..config.nodes).map(|_| {
            let span = sf_slots.saturating_sub(timings.beacon_slots).max(1);
            timings.beacon_slots + (dl_rng.next_f64() * span as f64) as u64
        }));
    }

    // --- Fault plan ------------------------------------------------------
    // Faults draw from their own stream and every branch is gated on
    // `faults_active`, so an inert plan leaves the event stream, RNG
    // consumption and record stream bit-identical to the fault-free
    // engine (see `crate::faults` for the determinism contract).
    let fplan = config.faults;
    let faults_active = !fplan.is_engine_inert();
    let mut fault_rng = root.split(u64::MAX - 2);
    // Remaining superframes of the current coordinator outage window.
    let mut outage_left: u32 = 0;
    // Live GTS lease state: a dying holder releases its descriptor via
    // the real registry and the freed slots re-resolve into the CFP at
    // the next superframe boundary; a rejoining holder re-allocates.
    let mut gts_registry = if faults_active && plan.has_gts() {
        let mut reg = GtsRegistry::new(plan.cfp_start_slot);
        for k in 0..gts_nodes {
            reg.allocate(k as u16, plan.slots_per_gts)
                .expect("plan allocations fit their own CFP envelope");
        }
        Some(reg)
    } else {
        None
    };

    let SimWorkspace {
        queue,
        rngs,
        csma,
        hot,
        pending_attempts,
        pending_dls,
        fault,
        offsets,
        dl_offsets,
        ..
    } = ws;
    // Telemetry shard: one local accumulator per run, folded into the
    // global registry once at the end. Telemetry reads values the engine
    // already computed and draws from no RNG stream, so it cannot perturb
    // the simulation (the inertness contract — see `crate::telemetry`);
    // when disabled, the cost is this one relaxed load plus a never-taken
    // branch per event.
    let mut telem: Option<Box<crate::telemetry::EngineMetrics>> = if crate::telemetry::enabled() {
        Some(Box::default())
    } else {
        None
    };
    queue.set_stats_enabled(telem.is_some());
    queue.clear();
    // Beacons and arrivals are scheduled lazily, one superframe ahead (the
    // farthest lookahead of any push), so the ring only ever needs to span
    // one superframe plus the worst CSMA backoff/airtime tail; the queue
    // holds O(active nodes) events instead of O(superframes × nodes).
    queue.reserve_window(sf_slots + WINDOW_SLACK);
    queue.push(0, PRIO_BEACON, Ev::Beacon);
    let mut beacons_left = config.superframes as u64 - 1;

    let mut busy_until_us: u64 = 0;
    // The one transmission cohort that has been *decided* but whose start
    // slot lies in the future; folded into `busy_until_us` once the clock
    // reaches it so that same-slot CCA decisions never see a transmission
    // that has not started yet.
    let mut pending_air: Option<(u64, u64)> = None;
    // Collision cohort: transmissions overlap in the air only when they
    // start in the same backoff slot (a CCA during any other airtime reads
    // busy), so all in-flight transmissions share one start slot. Same-slot
    // collision detection is therefore a counter over the current cohort —
    // no in-flight scan — and each TxEnd reads its verdict from the cohort
    // size, which is final before the first TxEnd fires.
    let mut cohort_slot = u64::MAX;
    let mut cohort_size: u32 = 0;
    let horizon_slot = config.superframes as u64 * sf_slots;
    let mut events: u64 = 0;

    while let Some((slot, ev)) = queue.pop() {
        if slot >= horizon_slot {
            break;
        }
        events += 1;
        if let Some(t) = telem.as_deref_mut() {
            t.events += 1;
            match &ev {
                Ev::Beacon => t.ev_beacon += 1,
                Ev::Arrival { .. } => t.ev_arrival += 1,
                Ev::Cca { .. } => t.ev_cca += 1,
                Ev::TxEnd { .. } => t.ev_tx_end += 1,
                Ev::GtsTx { .. } => t.ev_gts += 1,
                Ev::DlPoll { .. } => t.ev_dl_poll += 1,
            }
        }
        if let Some((start_slot, end_us)) = pending_air {
            if start_slot <= slot {
                busy_until_us = busy_until_us.max(end_us);
                pending_air = None;
            }
        }
        let slot_us = slot * SLOT_US;
        match ev {
            Ev::Beacon => {
                let in_warmup = slot < sf_slots;
                let mut in_outage = false;
                if faults_active {
                    // Outage draw: consumed every superframe so the fault
                    // stream's shape is independent of what the faults
                    // did; a draw during a running window is discarded.
                    if fplan.outage_rate > 0.0 {
                        let start = fault_rng.bernoulli(fplan.outage_rate);
                        if start && outage_left == 0 {
                            outage_left = fplan.outage_superframes;
                        }
                    }
                    in_outage = outage_left > 0;
                    if in_outage {
                        outage_left -= 1;
                    }
                    // Death draws: one per node per superframe in node
                    // order, consumed regardless of the node's state.
                    if fplan.death_rate > 0.0 {
                        for i in 0..config.nodes {
                            let dies = fault_rng.bernoulli(fplan.death_rate);
                            let f = &mut fault[i];
                            if !dies || !f.alive {
                                continue;
                            }
                            if hot[i].active {
                                // Mid-procedure: the death defers to the
                                // procedure's natural end so no queued
                                // event is ever cancelled.
                                f.death_pending = true;
                                continue;
                            }
                            f.alive = false;
                            f.down_superframes = 0;
                            f.join_retries = 0;
                            if let Some(reg) = gts_registry.as_mut() {
                                reg.deallocate(i as u16);
                            }
                            if !in_warmup {
                                sink.on_fault(&FaultRecord {
                                    node: i as u32,
                                    kind: FaultKind::Death,
                                });
                            }
                        }
                    }
                    // Beacon bookkeeping: missed beacons, orphan scans
                    // and bounded-retry re-association.
                    for i in 0..config.nodes {
                        let f = &mut fault[i];
                        if f.alive {
                            if in_outage && !in_warmup {
                                // Idle nodes wake and listen the beacon
                                // window in vain (an orphan-scan cost);
                                // mid-procedure nodes never woke for it.
                                sink.on_fault(&FaultRecord {
                                    node: i as u32,
                                    kind: FaultKind::MissedBeacon {
                                        listened: !hot[i].active,
                                    },
                                });
                            }
                            continue;
                        }
                        // Radio off (dead or dormant): the beacon goes
                        // unheard — and its tracking cost unpaid.
                        if !in_warmup {
                            sink.on_fault(&FaultRecord {
                                node: i as u32,
                                kind: FaultKind::MissedBeacon { listened: false },
                            });
                        }
                        if f.dormant {
                            continue;
                        }
                        f.down_superframes += 1;
                        if in_outage
                            || f.down_superframes <= fplan.rejoin_delay
                            || f.join_retries >= fplan.max_join_retries
                        {
                            // Still backing off, no coordinator to join,
                            // or a zero-budget plan (permanent death).
                            continue;
                        }
                        // Re-association exchange: the response gets
                        // through iff the channel does not corrupt it.
                        let success = !corrupt(i as u32);
                        if !in_warmup {
                            sink.on_fault(&FaultRecord {
                                node: i as u32,
                                kind: FaultKind::JoinAttempt { success },
                            });
                        }
                        if success {
                            f.alive = true;
                            let latency_superframes = f.down_superframes;
                            f.join_retries = 0;
                            hot[i].carry_packet = false;
                            hot[i].superframes_waited = 0;
                            if !in_warmup {
                                sink.on_fault(&FaultRecord {
                                    node: i as u32,
                                    kind: FaultKind::Reassociated {
                                        latency_superframes,
                                    },
                                });
                            }
                            if (i as u32) < gts_nodes {
                                if let Some(reg) = gts_registry.as_mut() {
                                    // A former holder reclaims a
                                    // descriptor; the envelope it left
                                    // always has room (only original
                                    // holders ever allocate).
                                    let _ = reg.allocate(i as u16, plan.slots_per_gts);
                                }
                            }
                        } else {
                            f.join_retries += 1;
                            if f.join_retries >= fplan.max_join_retries {
                                f.dormant = true;
                                if !in_warmup {
                                    sink.on_fault(&FaultRecord {
                                        node: i as u32,
                                        kind: FaultKind::Dormant,
                                    });
                                }
                            }
                        }
                    }
                }
                if !in_outage {
                    busy_until_us = busy_until_us.max(slot_us + beacon_us);
                    // Lazy scheduling: this superframe's arrivals (in node
                    // order, preserving the FIFO tie-break of the eager
                    // pre-push) and the next beacon. GTS holders skip CSMA
                    // entirely: their packet transmits in their dedicated
                    // CFP slot instead. Under churn the holder set is the
                    // live registry's (re-resolved each superframe); dead
                    // and dormant nodes schedule nothing.
                    for (i, &off) in offsets.iter().enumerate() {
                        if faults_active && !fault[i].alive {
                            // The application's per-superframe reading
                            // still exists; with the radio down the
                            // offered packet is lost. Recording it as an
                            // undelivered transaction is what makes the
                            // delivery ratio degrade with churn instead
                            // of silently shrinking the denominator.
                            if !in_warmup {
                                sink.on_transaction(&TransactionRecord {
                                    node: i as u32,
                                    attempts: 0,
                                    delivered: false,
                                    access_failure: false,
                                    superframes_waited: 0,
                                });
                            }
                            continue;
                        }
                        let gts_slot = if let Some(reg) = gts_registry.as_ref() {
                            reg.allocations()
                                .iter()
                                .find(|d| d.short_address == i as u16)
                                .map(|d| d.starting_slot)
                        } else if (i as u32) < gts_nodes {
                            Some(plan.gts_start_slot(i as u32))
                        } else {
                            None
                        };
                        if let Some(start) = gts_slot {
                            let gts_off = start as u64 * timings.mac_slot_backoffs;
                            queue.push(slot + gts_off, PRIO_CFP, Ev::GtsTx { node: i as u32 });
                        } else {
                            queue.push(slot + off, PRIO_ARRIVAL, Ev::Arrival { node: i as u32 });
                        }
                    }
                    if polling {
                        // One independent pending draw per node per
                        // superframe (drawn for every node, whether or not
                        // it fires — and whether or not it is alive — so
                        // the stream shape is load-independent).
                        for (i, &off) in dl_offsets.iter().enumerate() {
                            let fire = dl_rng.bernoulli(plan.downlink_rate);
                            if fire && !(faults_active && !fault[i].alive) {
                                queue.push(slot + off, PRIO_ARRIVAL, Ev::DlPoll { node: i as u32 });
                            }
                        }
                    }
                } else if !in_warmup {
                    // Coordinator silent: no CAP, no CFP — every node's
                    // offered packet for this superframe is lost. Nodes
                    // still mid-procedure carry theirs across the outage
                    // (the skipped arrival counts as an overrun, exactly
                    // as a busy node's arrival would).
                    for (i, h) in hot.iter().enumerate() {
                        if h.active {
                            sink.on_overrun();
                        } else {
                            sink.on_transaction(&TransactionRecord {
                                node: i as u32,
                                attempts: 0,
                                delivered: false,
                                access_failure: false,
                                superframes_waited: 0,
                            });
                        }
                    }
                }
                if beacons_left > 0 {
                    beacons_left -= 1;
                    queue.push(slot + sf_slots, PRIO_BEACON, Ev::Beacon);
                }
            }
            Ev::Arrival { node } => {
                let in_warmup = slot < sf_slots;
                if faults_active && !fault[node as usize].alive {
                    // Scheduled at the beacon, but a deferred death
                    // resolved since: the node is gone.
                    continue;
                }
                let h = &mut hot[node as usize];
                if h.active {
                    if !in_warmup {
                        sink.on_overrun();
                    }
                    continue;
                }
                if h.carry_packet {
                    h.superframes_waited += 1;
                } else {
                    h.superframes_waited = 0;
                }
                h.active = true;
                h.kind = CsmaKind::Uplink;
                h.recording = !in_warmup;
                h.attempt = 1;
                h.cont_start_slot = slot;
                let machine = SlottedCsmaCa::start(config.csma, &mut rngs[node as usize]);
                let CsmaAction::BackoffThenCca { periods } = machine.current_action() else {
                    unreachable!("CSMA always begins with a backoff");
                };
                csma[node as usize] = Some(machine);
                queue.push(slot + periods as u64, PRIO_CCA, Ev::Cca { node });
            }
            Ev::Cca { node } => {
                let i = node as usize;
                let busy = slot_us < busy_until_us;
                let machine = csma[i].as_mut().expect("CCA without active CSMA");
                match machine.on_cca(busy, &mut rngs[i]) {
                    CsmaAction::CcaAgain => {
                        queue.push(slot + 1, PRIO_CCA, Ev::Cca { node });
                    }
                    CsmaAction::BackoffThenCca { periods } => {
                        queue.push(slot + 1 + periods as u64, PRIO_CCA, Ev::Cca { node });
                    }
                    CsmaAction::Transmit => {
                        let machine = csma[i].take().expect("machine present");
                        let h = &mut hot[i];
                        let start_slot = slot + 1;
                        let airtime_us = match h.kind {
                            CsmaKind::Uplink => packet_us,
                            CsmaKind::DataRequest => timings.data_request_us,
                        };
                        let end_us = start_slot * SLOT_US + airtime_us;
                        match h.kind {
                            CsmaKind::Uplink => {
                                if h.recording {
                                    pending_attempts[i] = Some(AttemptRecord {
                                        node,
                                        contention_slots: start_slot - h.cont_start_slot,
                                        ccas: machine.ccas_performed(),
                                        outcome: AttemptOutcome::Delivered, // finalized at TxEnd
                                    });
                                }
                            }
                            CsmaKind::DataRequest => {
                                pending_dls[i] = Some((
                                    start_slot - h.cont_start_slot,
                                    machine.ccas_performed(),
                                ));
                            }
                        }
                        // Same-slot starters collide with each other:
                        // joining the current cohort (or opening a new
                        // one) is the whole collision bookkeeping.
                        if cohort_slot == start_slot {
                            cohort_size += 1;
                        } else {
                            if let Some(t) = telem.as_deref_mut() {
                                if cohort_size > 0 {
                                    t.cohort_size.record(cohort_size as u64);
                                }
                            }
                            cohort_slot = start_slot;
                            cohort_size = 1;
                        }
                        h.tx_start_slot = start_slot;
                        debug_assert!(
                            pending_air.map_or(true, |(s, _)| s == start_slot),
                            "at most one undecided cohort can be pending"
                        );
                        // A cohort mixing packet and data-request airtimes
                        // has several endings; the pending horizon is the
                        // latest (identical to the single end when all
                        // airtimes agree, so the CAP-only fold is
                        // unchanged).
                        let merged_end = match pending_air {
                            Some((s, e)) if s == start_slot => e.max(end_us),
                            _ => end_us,
                        };
                        pending_air = Some((start_slot, merged_end));
                        queue.push(
                            end_us.div_ceil(SLOT_US),
                            PRIO_TXEND,
                            Ev::TxEnd { node, end_us },
                        );
                    }
                    CsmaAction::Failure => {
                        let machine = csma[i].take().expect("machine present");
                        let h = &mut hot[i];
                        match h.kind {
                            CsmaKind::Uplink => {
                                if h.recording {
                                    sink.on_attempt(&AttemptRecord {
                                        node,
                                        contention_slots: slot - h.cont_start_slot,
                                        ccas: machine.ccas_performed(),
                                        outcome: AttemptOutcome::AccessFailure,
                                    });
                                    sink.on_transaction(&TransactionRecord {
                                        node,
                                        attempts: h.attempt - 1,
                                        delivered: false,
                                        access_failure: true,
                                        superframes_waited: h.superframes_waited,
                                    });
                                    if let Some(t) = telem.as_deref_mut() {
                                        t.attempts_access_failure += 1;
                                        t.ccas_per_attempt.record(machine.ccas_performed() as u64);
                                        t.contention_slots.record(slot - h.cont_start_slot);
                                        t.transactions += 1;
                                        t.attempts_per_transaction.record((h.attempt - 1) as u64);
                                    }
                                }
                                h.active = false;
                                h.carry_packet = true;
                            }
                            CsmaKind::DataRequest => {
                                if h.recording {
                                    sink.on_downlink(&DownlinkRecord {
                                        node,
                                        contention_slots: slot - h.cont_start_slot,
                                        ccas: machine.ccas_performed(),
                                        outcome: DownlinkOutcome::AccessFailure,
                                    });
                                }
                                h.active = false;
                                h.kind = CsmaKind::Uplink;
                            }
                        }
                        resolve_pending_death(
                            &mut fault[i],
                            node,
                            slot < sf_slots,
                            &mut gts_registry,
                            sink,
                        );
                    }
                }
            }
            Ev::TxEnd { node, end_us } => {
                // The transmission itself kept the channel busy.
                busy_until_us = busy_until_us.max(end_us);
                let i = node as usize;
                debug_assert_eq!(
                    hot[i].tx_start_slot, cohort_slot,
                    "TxEnd must belong to the current cohort"
                );
                if hot[i].kind == CsmaKind::DataRequest {
                    // A data request's ending: the coordinator answers a
                    // clean request with an acknowledgement and (promptly)
                    // the downlink frame, both of which occupy the CAP
                    // channel; the node's frame acknowledgement closes the
                    // exchange. One procedure per poll — an undelivered
                    // frame stays pending at the coordinator.
                    let outcome = if cohort_size >= 2 {
                        DownlinkOutcome::Collided
                    } else if corrupt(node) {
                        DownlinkOutcome::Corrupted
                    } else {
                        DownlinkOutcome::Delivered
                    };
                    let mut hold_us = 0;
                    if outcome != DownlinkOutcome::Collided {
                        // Request ACK, turnaround, downlink frame …
                        hold_us = ack_hold_us + 192 + packet_us;
                        if outcome == DownlinkOutcome::Delivered {
                            // … and the node's frame acknowledgement.
                            hold_us += ack_hold_us;
                        }
                    }
                    busy_until_us = busy_until_us.max(end_us + hold_us);
                    if let Some((contention_slots, ccas)) = pending_dls[i].take() {
                        if hot[i].recording {
                            sink.on_downlink(&DownlinkRecord {
                                node,
                                contention_slots,
                                ccas,
                                outcome,
                            });
                        }
                    }
                    hot[i].active = false;
                    hot[i].kind = CsmaKind::Uplink;
                    resolve_pending_death(
                        &mut fault[i],
                        node,
                        slot < sf_slots,
                        &mut gts_registry,
                        sink,
                    );
                    continue;
                }
                let outcome = if cohort_size >= 2 {
                    AttemptOutcome::Collided
                } else if corrupt(node) {
                    AttemptOutcome::Corrupted
                } else {
                    AttemptOutcome::Delivered
                };

                if let Some(mut pending) = pending_attempts[i].take() {
                    pending.outcome = outcome;
                    if let Some(t) = telem.as_deref_mut() {
                        match outcome {
                            AttemptOutcome::Delivered => t.attempts_delivered += 1,
                            AttemptOutcome::Collided => t.attempts_collided += 1,
                            AttemptOutcome::Corrupted => t.attempts_corrupted += 1,
                            AttemptOutcome::AccessFailure => t.attempts_access_failure += 1,
                        }
                        t.ccas_per_attempt.record(pending.ccas as u64);
                        t.contention_slots.record(pending.contention_slots as u64);
                    }
                    sink.on_attempt(&pending);
                }

                let h = &mut hot[i];
                if outcome == AttemptOutcome::Delivered {
                    // The acknowledgement occupies the channel too.
                    busy_until_us = busy_until_us.max(end_us + ack_hold_us);
                    if h.recording {
                        sink.on_transaction(&TransactionRecord {
                            node,
                            attempts: h.attempt,
                            delivered: true,
                            access_failure: false,
                            superframes_waited: h.superframes_waited,
                        });
                        if let Some(t) = telem.as_deref_mut() {
                            t.transactions += 1;
                            t.transactions_delivered += 1;
                            t.attempts_per_transaction.record(h.attempt as u64);
                        }
                    }
                    h.active = false;
                    h.carry_packet = false;
                    resolve_pending_death(
                        &mut fault[i],
                        node,
                        slot < sf_slots,
                        &mut gts_registry,
                        sink,
                    );
                } else if h.attempt < config.retries.n_max() {
                    // Wait out t_ack⁺, then contend again.
                    h.attempt += 1;
                    let retry_slot = (end_us + ack_timeout_us).div_ceil(SLOT_US);
                    h.cont_start_slot = retry_slot;
                    let machine = SlottedCsmaCa::start(config.csma, &mut rngs[i]);
                    let CsmaAction::BackoffThenCca { periods } = machine.current_action() else {
                        unreachable!("CSMA always begins with a backoff");
                    };
                    csma[i] = Some(machine);
                    queue.push(retry_slot + periods as u64, PRIO_CCA, Ev::Cca { node });
                } else {
                    if h.recording {
                        sink.on_transaction(&TransactionRecord {
                            node,
                            attempts: h.attempt,
                            delivered: false,
                            access_failure: false,
                            superframes_waited: h.superframes_waited,
                        });
                        if let Some(t) = telem.as_deref_mut() {
                            t.transactions += 1;
                            t.attempts_per_transaction.record(h.attempt as u64);
                        }
                    }
                    h.active = false;
                    h.carry_packet = true;
                    resolve_pending_death(
                        &mut fault[i],
                        node,
                        slot < sf_slots,
                        &mut gts_registry,
                        sink,
                    );
                }
            }
            Ev::GtsTx { node } => {
                // Contention-free uplink: no CSMA, no cohort, no CAP
                // channel interaction — the dedicated slot carries exactly
                // this node. Channel noise still applies; a corrupted
                // packet is carried to the holder's slot in the next
                // superframe (persistence costs no contention, so N_max
                // does not apply).
                let in_warmup = slot < sf_slots;
                let i = node as usize;
                if faults_active && !fault[i].alive {
                    // The holder died mid-superframe (deferred death)
                    // after this slot was scheduled.
                    continue;
                }
                let h = &mut hot[i];
                if h.carry_packet {
                    h.superframes_waited += 1;
                } else {
                    h.superframes_waited = 0;
                }
                let delivered = !corrupt(node);
                if !in_warmup {
                    sink.on_gts(&GtsRecord {
                        node,
                        delivered,
                        superframes_waited: h.superframes_waited,
                    });
                }
                h.carry_packet = !delivered;
            }
            Ev::DlPoll { node } => {
                // The beacon listed this node's address: contend in the
                // CAP with a data request, unless the node is mid-uplink
                // (the frame then stays pending — a deferral).
                let in_warmup = slot < sf_slots;
                let i = node as usize;
                if faults_active && !fault[i].alive {
                    // The node died mid-superframe after the poll was
                    // scheduled; the frame stays pending upstream.
                    continue;
                }
                let h = &mut hot[i];
                if h.active {
                    if !in_warmup {
                        sink.on_downlink(&DownlinkRecord {
                            node,
                            contention_slots: 0,
                            ccas: 0,
                            outcome: DownlinkOutcome::Deferred,
                        });
                    }
                    continue;
                }
                h.active = true;
                h.kind = CsmaKind::DataRequest;
                h.recording = !in_warmup;
                h.cont_start_slot = slot;
                let machine = SlottedCsmaCa::start(config.csma, &mut rngs[i]);
                let CsmaAction::BackoffThenCca { periods } = machine.current_action() else {
                    unreachable!("CSMA always begins with a backoff");
                };
                csma[i] = Some(machine);
                queue.push(slot + periods as u64, PRIO_CCA, Ev::Cca { node });
            }
        }
    }
    if let Some(mut t) = telem {
        t.runs = 1;
        if cohort_size > 0 {
            t.cohort_size.record(cohort_size as u64);
        }
        let mut window_growths = 0;
        if let Some(qs) = queue.stats() {
            t.queue_pushes = qs.pushes;
            t.queue_pops = qs.pops;
            window_growths = qs.window_growths;
            t.queue_skip_slots.merge(&qs.skip_slots);
        }
        crate::telemetry::merge_engine(&t, window_growths);
    }
    events
}

/// Runs the channel simulation with a per-attempt corruption oracle and
/// collects the full [`SimTrace`].
///
/// `corrupt(node)` is consulted for every collision-free transmission; when
/// it returns `true` the packet is treated as FCS-corrupted (no
/// acknowledgement, retry). [`simulate_contention`] instead reduces online
/// with a constant `false` oracle — the pure-MAC setting of Figure 6.
pub fn run_channel_sim<F>(config: &ChannelSimConfig, corrupt: F) -> SimTrace
where
    F: FnMut(u32) -> bool,
{
    let timings = config.timings();
    let mut collector = TraceCollector::new(timings.superframe_slots);
    run_channel_sim_into(config, &timings, corrupt, &mut collector);
    collector.into_trace()
}

/// Runs the pure-MAC contention characterization (no channel noise) and
/// reduces it to [`ContentionStats`] — one point of the paper's Figure 6.
///
/// # Examples
///
/// ```
/// use wsn_sim::{simulate_contention, ChannelSimConfig};
///
/// let mut cfg = ChannelSimConfig::figure6(50, 0.3, 42);
/// cfg.superframes = 10; // keep the doctest quick
/// let stats = simulate_contention(&cfg);
/// assert!(stats.mean_ccas >= 2.0);
/// assert!(stats.pr_access_failure.value() < 0.5);
/// ```
pub fn simulate_contention(config: &ChannelSimConfig) -> ContentionStats {
    let timings = config.timings();
    let mut sink = StatsSink::new();
    run_channel_sim_into(config, &timings, |_| false, &mut sink);
    sink.contention_stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(payload: usize, load: f64, seed: u64) -> ChannelSimConfig {
        let mut c = ChannelSimConfig::figure6(payload, load, seed);
        c.superframes = 12;
        c
    }

    #[test]
    fn single_node_never_collides_or_fails() {
        let mut cfg = quick(50, 0.05, 1);
        cfg.nodes = 1;
        let stats = simulate_contention(&cfg);
        assert_eq!(stats.pr_collision, Probability::ZERO);
        assert_eq!(stats.pr_access_failure, Probability::ZERO);
        assert_eq!(stats.mean_ccas, 2.0);
        // Contention = initial backoff (0..=7 slots) + 2 CCA slots; mean
        // near (3.5 + 2) × 320 µs with generous tolerance.
        let mean_us = stats.mean_contention.micros();
        assert!(
            (800.0..2600.0).contains(&mean_us),
            "mean contention {mean_us} µs"
        );
    }

    #[test]
    fn stats_degrade_with_load() {
        let lo = simulate_contention(&quick(100, 0.1, 7));
        let hi = simulate_contention(&quick(100, 0.8, 7));
        assert!(
            hi.pr_access_failure.value() >= lo.pr_access_failure.value(),
            "Pr_cf should not improve with load: {lo} vs {hi}"
        );
        assert!(
            hi.mean_contention > lo.mean_contention,
            "contention time should grow with load"
        );
        assert!(hi.mean_ccas > lo.mean_ccas);
        assert!(hi.pr_collision.value() >= lo.pr_collision.value());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_channel_sim(&quick(50, 0.4, 99), |_| false);
        let b = run_channel_sim(&quick(50, 0.4, 99), |_| false);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.transactions, b.transactions);
        let c = run_channel_sim(&quick(50, 0.4, 100), |_| false);
        assert_ne!(a.attempts, c.attempts, "different seeds should differ");
    }

    #[test]
    fn corruption_forces_retries() {
        let cfg = quick(50, 0.2, 5);
        let clean = run_channel_sim(&cfg, |_| false);
        let noisy = run_channel_sim(&cfg, |_| true); // every packet corrupted
        assert!(noisy.mean_attempts() > clean.mean_attempts());
        // All transactions fail when every packet is corrupted.
        assert!((noisy.transaction_failure_ratio().value() - 1.0).abs() < 1e-12);
        assert!(clean.transaction_failure_ratio().value() < 0.2);
    }

    #[test]
    fn transactions_account_for_all_nodes() {
        let cfg = quick(50, 0.3, 11);
        let trace = run_channel_sim(&cfg, |_| false);
        // 100 nodes × (superframes − warmup − tail losses): at least half
        // the nominal count must be recorded.
        let nominal = cfg.nodes as u64 * (cfg.superframes as u64 - 1);
        assert!(
            trace.transactions.len() as u64 > nominal / 2,
            "only {} of {} transactions recorded",
            trace.transactions.len(),
            nominal
        );
    }

    #[test]
    fn synchronized_arrivals_are_much_worse() {
        let mut staggered = quick(100, 0.42, 3);
        staggered.nodes = 100;
        let mut synced = staggered.clone();
        synced.synchronized_arrivals = true;
        let s1 = simulate_contention(&staggered);
        let s2 = simulate_contention(&synced);
        assert!(
            s2.pr_access_failure.value() > 2.0 * s1.pr_access_failure.value(),
            "beacon-synchronized contention should collapse: {s1} vs {s2}"
        );
    }

    #[test]
    fn delivery_delay_at_low_load_is_one_superframe() {
        let cfg = quick(20, 0.05, 13);
        let trace = run_channel_sim(&cfg, |_| false);
        let mean = trace.mean_delivery_superframes();
        assert!(
            (mean - 1.0).abs() < 0.05,
            "mean delivery superframes {mean}"
        );
    }

    #[test]
    #[should_panic(expected = "load must be in (0,1)")]
    fn absurd_load_rejected() {
        let _ = ChannelSimConfig::figure6(50, 1.5, 0);
    }

    #[test]
    fn validate_mirrors_engine_preconditions() {
        let good = quick(20, 0.3, 1);
        assert_eq!(good.validate(), Ok(()));

        let mut cfg = good.clone();
        cfg.nodes = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoNodes));

        let mut cfg = good.clone();
        cfg.load = 1.0;
        assert_eq!(cfg.validate(), Err(ConfigError::BadLoad(1.0)));
        cfg.load = f64::NAN;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadLoad(_))));

        let mut cfg = good.clone();
        cfg.superframes = 1;
        assert_eq!(cfg.validate(), Err(ConfigError::TooFewSuperframes(1)));

        // A superframe long enough to overflow the calendar ceiling: huge
        // node count at vanishing load explodes T_ib = N·T_packet/λ.
        let mut cfg = good;
        cfg.nodes = 50_000_000;
        cfg.load = 1e-4;
        match cfg.validate() {
            Err(ConfigError::Window(err)) => {
                assert!(err.requested > crate::events::MAX_WINDOW);
            }
            other => panic!("expected window overflow, got {other:?}"),
        }
        // Error text matches the engine's panic messages (pinned by the
        // `should_panic(expected = ...)` substring tests).
        assert_eq!(
            ConfigError::NoNodes.to_string(),
            "at least one node required"
        );
        assert!(ConfigError::BadLoad(1.5)
            .to_string()
            .starts_with("load must be in (0,1)"));
        assert!(ConfigError::TooFewSuperframes(1)
            .to_string()
            .starts_with("need at least two superframes"));
    }

    // --- CFP engine ------------------------------------------------------

    use crate::cfp::{plan_channel_cfp, DownlinkOutcome};

    fn cfp_cfg(gts_demand: u32, downlink_rate: f64, seed: u64) -> ChannelSimConfig {
        let mut c = quick(50, 0.3, seed);
        c.nodes = 20;
        c.cfp = plan_channel_cfp(c.nodes as u32, gts_demand, 1, 8, downlink_rate);
        c
    }

    #[test]
    fn inert_plans_are_interchangeable_and_schedule_nothing() {
        // Cross-version inertness (an inert plan reproduces the PR 4
        // CAP-only engine bit-for-bit) is pinned by golden-diffing the
        // figure binaries; what a unit test *can* pin is that every
        // inert-plan construction behaves identically and that no CFP
        // record ever reaches the sink.
        let base = quick(80, 0.4, 0xCF9);
        let mut planned = base.clone();
        // A registry-resolved plan with zero demand and zero rate is
        // inert by a different construction path than `inert()`.
        planned.cfp = plan_channel_cfp(base.nodes as u32, 0, 1, 8, 0.0);
        assert!(planned.cfp.is_inert());
        let a = run_channel_sim(&base, |_| false);
        let b = run_channel_sim(&planned, |_| false);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.transactions, b.transactions);
        assert!(a.gts.is_empty() && a.downlinks.is_empty());
        // Nothing in the CFP machinery consumed engine RNG: a third run
        // with the default-constructed plan agrees too.
        let c = run_channel_sim(&quick(80, 0.4, 0xCF9), |_| false);
        assert_eq!(a.attempts, c.attempts);
    }

    #[test]
    fn gts_holders_never_contend_and_never_collide() {
        let cfg = cfp_cfg(7, 0.0, 0x61);
        let trace = run_channel_sim(&cfg, |_| false);
        // Seven holders × (superframes − warmup), minus at most the
        // horizon tail.
        assert!(
            trace.gts.len() as u32 >= 7 * (cfg.superframes - 2),
            "only {} GTS records",
            trace.gts.len()
        );
        assert!(trace.gts.iter().all(|g| g.node < 7));
        assert!(trace.gts.iter().all(|g| g.delivered), "GTS cannot collide");
        // CAP records never name a GTS holder.
        assert!(trace.attempts.iter().all(|a| a.node >= 7));
        assert!(trace.transactions.iter().all(|t| t.node >= 7));
    }

    #[test]
    fn gts_offload_relieves_cap_contention() {
        let cap_only = simulate_contention(&cfp_cfg(0, 0.0, 0x62));
        let offloaded = simulate_contention(&cfp_cfg(7, 0.0, 0x62));
        assert!(
            offloaded.mean_contention <= cap_only.mean_contention,
            "7 of 20 nodes moved to the CFP must not worsen CAP contention: \
             {cap_only} vs {offloaded}"
        );
    }

    #[test]
    fn corrupted_gts_packets_carry_to_the_next_superframe() {
        let cfg = cfp_cfg(7, 0.0, 0x63);
        let trace = run_channel_sim(&cfg, |_| true); // every packet corrupted
        assert!(trace.gts.iter().all(|g| !g.delivered));
        // The carried packet's wait grows monotonically per holder.
        let waits: Vec<u32> = trace
            .gts
            .iter()
            .filter(|g| g.node == 0)
            .map(|g| g.superframes_waited)
            .collect();
        assert!(
            waits.windows(2).all(|w| w[1] == w[0] + 1),
            "waits {waits:?}"
        );
    }

    #[test]
    fn downlink_polls_record_every_outcome_class() {
        let cfg = cfp_cfg(0, 1.0, 0x64);
        let trace = run_channel_sim(&cfg, |_| false);
        // One poll per node per recorded superframe (rate 1.0), minus the
        // horizon tail.
        assert!(
            trace.downlinks.len() as u32 >= cfg.nodes as u32 * (cfg.superframes - 2),
            "only {} downlink records",
            trace.downlinks.len()
        );
        let delivered = trace
            .downlinks
            .iter()
            .filter(|d| d.outcome == DownlinkOutcome::Delivered)
            .count();
        assert!(delivered > trace.downlinks.len() / 2);
        // Deferred polls exist (uplink transactions overlap the polls)
        // and carry no contention measurements.
        assert!(trace
            .downlinks
            .iter()
            .filter(|d| d.outcome == DownlinkOutcome::Deferred)
            .all(|d| d.contention_slots == 0 && d.ccas == 0));
        // Non-deferred polls contended: they performed CCAs.
        assert!(trace
            .downlinks
            .iter()
            .filter(|d| d.outcome != DownlinkOutcome::Deferred)
            .all(|d| d.ccas >= 2));
    }

    #[test]
    fn downlink_rate_scales_poll_volume() {
        let light = run_channel_sim(&cfp_cfg(0, 0.1, 0x65), |_| false);
        let heavy = run_channel_sim(&cfp_cfg(0, 0.9, 0x65), |_| false);
        assert!(heavy.downlinks.len() > 4 * light.downlinks.len());
    }

    #[test]
    fn downlink_contention_pressures_the_cap() {
        // Data requests contend like any packet, so polling every
        // superframe must raise the CAP's observed contention.
        let quiet = simulate_contention(&cfp_cfg(0, 0.0, 0x66));
        let polled = simulate_contention(&cfp_cfg(0, 1.0, 0x66));
        assert!(
            polled.mean_contention > quiet.mean_contention,
            "polling must load the CAP: {quiet} vs {polled}"
        );
    }

    #[test]
    fn cfp_runs_are_deterministic_per_seed() {
        let cfg = cfp_cfg(5, 0.5, 0x67);
        let a = run_channel_sim(&cfg, |_| false);
        let b = run_channel_sim(&cfg, |_| false);
        assert_eq!(a.gts, b.gts);
        assert_eq!(a.downlinks, b.downlinks);
        assert_eq!(a.attempts, b.attempts);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_packet_for_gts_rejected() {
        // A high-load configuration shrinks the superframe (and with it
        // the MAC slots) until a 123-byte packet cannot fit one slot.
        let mut c = quick(123, 0.9, 1);
        c.nodes = 4;
        c.cfp = plan_channel_cfp(4, 4, 1, 8, 0.0);
        let _ = run_channel_sim(&c, |_| false);
    }
}
