//! Batch simulation service: run a directory of saved scenarios as one
//! deterministic job grid.
//!
//! [`crate::persist`] makes scenarios data; this module makes them a
//! workload. A [`BatchSet`] loads every scenario file in a directory
//! ([`BatchSet::load_dir`]) or the files a manifest lists
//! ([`BatchSet::load_manifest`]), validates **all** of them up front
//! (one bad file fails the batch before any simulation starts), and
//! [`BatchSet::run`] executes the whole set through one [`Runner`]:
//!
//! * **One shared worker pool.** Every open-loop scenario's
//!   channels × replications jobs flatten into a single job list on one
//!   [`Runner::map`] call — a 10 000-scenario directory saturates every
//!   core for the entire batch instead of draining one small grid at a
//!   time. Each job reproduces exactly what [`Scenario::run`] computes
//!   for that (channel, replication), and each scenario reduces through
//!   [`ScenarioOutcome::reduce`] in fixed order, so every per-scenario
//!   summary is **bit-identical** to running that scenario alone — for
//!   any thread count and any file ordering (results are keyed by
//!   scenario, not by position). Scenarios carrying a
//!   [`PolicyChoice`](crate::persist::PolicyChoice) are closed-loop and
//!   sequential by nature; they run after the grid, one
//!   [`PolicyEngine`] each, on the same runner.
//! * **Deterministic seeds.** By default every scenario runs with the
//!   master seed saved in its file. A manifest may instead set a batch
//!   seed: each scenario then runs with
//!   [`scenario_master_seed`]`(batch_seed, name)` — a pure function of
//!   the manifest seed and the scenario *name*, so reordering or adding
//!   files never changes any scenario's stream.
//! * **Streamed results.** Each finished scenario emits one compact JSON
//!   record (JSON-lines) with the full [`NetworkSummary`] surface —
//!   CAP/CFP split, fault counters and standard errors included — and
//!   the batch ends with one aggregate record, all through a caller
//!   `Write` sink.

use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::network::{NetworkAccumulator, NetworkConfig, NetworkSimulator, NetworkSummary};
use crate::persist::{
    self, load_scenario, render_compact, Node, ParseError, PolicyChoice, SavedScenario, Value,
};
use crate::policy::PolicyEngine;
use crate::runner::{replication_seed, Runner};
use crate::scenario::{ResolvedBer, Scenario, ScenarioOutcome};

/// The per-scenario master seed under a manifest batch seed: a pure
/// function of `(batch_seed, name)` (FNV-1a over the name, fed through
/// the runner's SplitMix64 derivation), so a scenario's streams do not
/// depend on its position in the manifest or directory.
///
/// # Examples
///
/// ```
/// use wsn_sim::batch::scenario_master_seed;
///
/// assert_eq!(
///     scenario_master_seed(7, "churn"),
///     scenario_master_seed(7, "churn"),
/// );
/// assert_ne!(
///     scenario_master_seed(7, "churn"),
///     scenario_master_seed(7, "case-study"),
/// );
/// ```
pub fn scenario_master_seed(batch_seed: u64, name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    replication_seed(batch_seed, hash)
}

/// Why a batch failed to load or validate. Everything is diagnosed up
/// front: no simulation starts while any entry is bad.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error text.
        error: String,
    },
    /// A scenario (or manifest) file failed to parse or decode.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The typed position-carrying diagnostic.
        error: ParseError,
    },
    /// A scenario parsed but is structurally inconsistent
    /// ([`Scenario::validate`]).
    Invalid {
        /// The offending file.
        path: PathBuf,
        /// The first violated invariant.
        error: String,
    },
    /// Two entries share a scenario name — results are keyed by name, so
    /// names must be unique.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// The directory or manifest listed no scenarios.
    Empty,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            BatchError::Parse { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            BatchError::Invalid { path, error } => {
                write!(f, "{}: invalid scenario: {error}", path.display())
            }
            BatchError::DuplicateName { name } => {
                write!(f, "duplicate scenario name `{name}`")
            }
            BatchError::Empty => write!(f, "no scenario files to run"),
        }
    }
}

impl std::error::Error for BatchError {}

/// One loaded batch entry: a saved scenario plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// The scenario's name (unique within the batch).
    pub name: String,
    /// The file it was loaded from.
    pub path: PathBuf,
    /// The decoded scenario + optional policy choice.
    pub saved: SavedScenario,
}

/// A validated set of scenarios ready to run as one job grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSet {
    entries: Vec<BatchEntry>,
    batch_seed: Option<u64>,
}

/// One scenario's results within a batch run.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The scenario's name.
    pub name: String,
    /// The master seed it effectively ran with.
    pub seed: u64,
    /// The reduced outcome — bit-identical to [`Scenario::run`] of the
    /// same (seed-adjusted) scenario for open-loop entries; for policy
    /// entries, the final round's outcome.
    pub outcome: ScenarioOutcome,
    /// The policy that closed the loop, if any, with the rounds it ran.
    pub policy: Option<(PolicyChoice, usize)>,
    /// Summed per-job wall-clock in milliseconds (CPU cost, not elapsed
    /// time, under parallelism).
    pub job_ms: f64,
}

/// A completed batch: per-scenario records plus batch-level timing.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One record per scenario, in entry order.
    pub records: Vec<ScenarioRecord>,
    /// Elapsed wall-clock of the whole batch in milliseconds.
    pub wall_ms: f64,
    /// Jobs executed on the shared pool (open-loop channels ×
    /// replications; policy rounds are counted per round grid).
    pub jobs: usize,
}

impl BatchReport {
    /// Scenarios completed per second of batch wall-clock.
    pub fn scenarios_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / (self.wall_ms / 1e3)
    }
}

/// One open-loop scenario prepared for the shared grid.
struct PlainPrep {
    entry: usize,
    configs: Vec<NetworkConfig>,
    bers: Vec<ResolvedBer>,
    replications: u32,
    shards: usize,
}

impl BatchSet {
    /// Wraps already-loaded entries (the test seam). Validates like the
    /// file loaders.
    ///
    /// # Errors
    ///
    /// Returns the first [`BatchError`] among the entries.
    pub fn from_entries(
        entries: Vec<BatchEntry>,
        batch_seed: Option<u64>,
    ) -> Result<Self, BatchError> {
        if entries.is_empty() {
            return Err(BatchError::Empty);
        }
        for (i, entry) in entries.iter().enumerate() {
            entry
                .saved
                .scenario
                .validate()
                .map_err(|error| BatchError::Invalid {
                    path: entry.path.clone(),
                    error,
                })?;
            if entries[..i].iter().any(|e| e.name == entry.name) {
                return Err(BatchError::DuplicateName {
                    name: entry.name.clone(),
                });
            }
        }
        Ok(BatchSet {
            entries,
            batch_seed,
        })
    }

    /// Loads every `*.json` scenario file in `dir` (sorted by file name;
    /// `manifest.json` is skipped), each running with its saved seed.
    ///
    /// # Errors
    ///
    /// Returns the first I/O, parse, validation or duplicate-name
    /// failure — nothing runs until the whole directory is good.
    pub fn load_dir(dir: &Path) -> Result<Self, BatchError> {
        let read = std::fs::read_dir(dir).map_err(|e| BatchError::Io {
            path: dir.to_path_buf(),
            error: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for dirent in read {
            let dirent = dirent.map_err(|e| BatchError::Io {
                path: dir.to_path_buf(),
                error: e.to_string(),
            })?;
            let path = dirent.path();
            let is_scenario = path.extension().is_some_and(|x| x == "json")
                && path.file_name().is_some_and(|f| f != "manifest.json");
            if is_scenario {
                paths.push(path);
            }
        }
        paths.sort();
        let entries = paths
            .into_iter()
            .map(load_entry)
            .collect::<Result<_, _>>()?;
        BatchSet::from_entries(entries, None)
    }

    /// Loads the scenarios a manifest lists. The manifest is itself
    /// format-1 JSON:
    ///
    /// ```json
    /// {
    ///   "format": 1,
    ///   "seed": null,
    ///   "scenarios": ["case_study_s5.json", "churn_outage.json"]
    /// }
    /// ```
    ///
    /// Paths are relative to the manifest's directory. A non-null `seed`
    /// overrides every scenario's saved master seed via
    /// [`scenario_master_seed`]; `null` keeps the saved seeds (so the
    /// batch reproduces each in-code study bit for bit).
    ///
    /// # Errors
    ///
    /// Returns the first I/O, parse, validation or duplicate-name
    /// failure.
    pub fn load_manifest(path: &Path) -> Result<Self, BatchError> {
        let text = std::fs::read_to_string(path).map_err(|e| BatchError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        })?;
        let root = persist::parse_document(&text).map_err(|error| BatchError::Parse {
            path: path.to_path_buf(),
            error,
        })?;
        let parse_err = |error: ParseError| BatchError::Parse {
            path: path.to_path_buf(),
            error,
        };
        let (batch_seed, files) = decode_manifest(&root).map_err(parse_err)?;
        let base = path.parent().unwrap_or(Path::new("."));
        let entries = files
            .into_iter()
            .map(|f| load_entry(base.join(f)))
            .collect::<Result<_, _>>()?;
        BatchSet::from_entries(entries, batch_seed)
    }

    /// The validated entries, in load order.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// The manifest batch seed, if one overrides the saved seeds.
    pub fn batch_seed(&self) -> Option<u64> {
        self.batch_seed
    }

    /// The scenario an entry effectively runs: the saved scenario, with
    /// its master seed re-derived when the batch carries a manifest seed.
    pub fn effective_scenario(&self, entry: &BatchEntry) -> Scenario {
        let mut scenario = entry.saved.scenario.clone();
        if let Some(batch_seed) = self.batch_seed {
            scenario.seed = scenario_master_seed(batch_seed, &entry.name);
        }
        scenario
    }

    /// Runs the whole batch on `runner`, streaming one compact JSON
    /// record per scenario (plus a final aggregate record) into `sink`.
    ///
    /// Open-loop scenarios execute as one flat job grid on the shared
    /// pool; policy-bearing scenarios follow sequentially, each through a
    /// [`PolicyEngine`] on the same runner. Records stream in entry
    /// order. Per-scenario summaries are bit-identical to running each
    /// scenario alone, for every thread count and entry ordering.
    ///
    /// # Errors
    ///
    /// Propagates `sink` write failures; simulation itself is
    /// infallible once the set validated.
    ///
    /// # Panics
    ///
    /// Panics only on invariants [`Scenario::validate`] already ruled
    /// out.
    pub fn run(&self, runner: &Runner, sink: &mut dyn Write) -> io::Result<BatchReport> {
        let t0 = Instant::now();

        let scenarios: Vec<Scenario> = self
            .entries
            .iter()
            .map(|e| self.effective_scenario(e))
            .collect();

        // Compile every open-loop scenario up front; the grid borrows the
        // prepared configs/BER models by index.
        let mut preps: Vec<PlainPrep> = Vec::new();
        for (i, (entry, scenario)) in self.entries.iter().zip(&scenarios).enumerate() {
            if entry.saved.policy.is_some() {
                continue;
            }
            let configs = scenario.compile();
            let bers: Vec<ResolvedBer> = (0..configs.len())
                .map(|c| scenario.channel_ber(c).model())
                .collect();
            preps.push(PlainPrep {
                entry: i,
                configs,
                bers,
                replications: scenario.replications.max(1),
                shards: scenario.shards.max(1),
            });
        }

        // The shared grid: every (scenario, channel, replication) triple
        // is one job on one pool. Each job reproduces Scenario::run_grid's
        // per-job computation exactly — pure in (prep, channel, rep) — so
        // the per-scenario reductions below are bit-identical to running
        // each scenario alone.
        let jobs: Vec<(usize, usize, u64)> = preps
            .iter()
            .enumerate()
            .flat_map(|(p, prep)| {
                (0..prep.configs.len()).flat_map(move |c| {
                    (0..prep.replications as u64).map(move |r| (p, c, r))
                })
            })
            .collect();
        let results: Vec<(NetworkAccumulator, f64)> = runner.map(&jobs, |_, &(p, c, r)| {
            let prep = &preps[p];
            let t = Instant::now();
            let mut cfg = prep.configs[c].clone();
            cfg.channel.seed = replication_seed(cfg.channel.seed, r);
            let sim = NetworkSimulator::new(cfg);
            let acc = if prep.shards > 1 {
                sim.run_accumulate_sharded(&prep.bers[c], prep.shards)
            } else {
                sim.run_accumulate(&prep.bers[c])
            };
            (acc, t.elapsed().as_secs_f64() * 1e3)
        });

        // Reduce per scenario in fixed order, then lay the records out in
        // entry order (policy slots filled below).
        let mut records: Vec<Option<ScenarioRecord>> = (0..self.entries.len()).map(|_| None).collect();
        let mut cursor = results.into_iter();
        let mut jobs_run = jobs.len();
        for prep in &preps {
            let scenario = &scenarios[prep.entry];
            let mut accs: Vec<Vec<NetworkAccumulator>> = Vec::with_capacity(prep.configs.len());
            let mut job_ms = 0.0;
            for _ in 0..prep.configs.len() {
                let mut reps = Vec::with_capacity(prep.replications as usize);
                for _ in 0..prep.replications {
                    let (acc, ms) = cursor.next().expect("one result per grid job");
                    reps.push(acc);
                    job_ms += ms;
                }
                accs.push(reps);
            }
            let mut outcome = ScenarioOutcome::reduce(scenario.name.clone(), &accs);
            outcome.gts_denied = prep
                .configs
                .iter()
                .map(|c| c.channel.cfp.gts_denied)
                .collect();
            records[prep.entry] = Some(ScenarioRecord {
                name: self.entries[prep.entry].name.clone(),
                seed: scenario.seed,
                outcome,
                policy: None,
                job_ms,
            });
        }

        // Closed-loop entries: inherently sequential round loops, run on
        // the same pool after the grid drains.
        for (i, (entry, scenario)) in self.entries.iter().zip(&scenarios).enumerate() {
            let Some(choice) = entry.saved.policy else {
                continue;
            };
            let t = Instant::now();
            let mut policy = choice.build();
            let trace = PolicyEngine::new(scenario.clone())
                .with_rounds(choice.rounds() as usize)
                .run(runner, &mut *policy);
            let rounds_run = trace.rounds.len();
            jobs_run += rounds_run * scenario.channels * scenario.replications.max(1) as usize;
            let outcome = trace
                .rounds
                .into_iter()
                .last()
                .map(|round| round.outcome)
                .expect("a policy loop runs at least one round");
            records[i] = Some(ScenarioRecord {
                name: entry.name.clone(),
                seed: scenario.seed,
                outcome,
                policy: Some((choice, rounds_run)),
                job_ms: t.elapsed().as_secs_f64() * 1e3,
            });
        }

        let records: Vec<ScenarioRecord> = records
            .into_iter()
            .map(|r| r.expect("every entry produces a record"))
            .collect();
        for record in &records {
            writeln!(sink, "{}", render_compact(&record.to_json()))?;
        }

        let report = BatchReport {
            records,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            jobs: jobs_run,
        };
        writeln!(sink, "{}", render_compact(&report.aggregate_json()))?;
        Ok(report)
    }
}

fn load_entry(path: PathBuf) -> Result<BatchEntry, BatchError> {
    let text = std::fs::read_to_string(&path).map_err(|e| BatchError::Io {
        path: path.clone(),
        error: e.to_string(),
    })?;
    let saved = load_scenario(&text).map_err(|error| BatchError::Parse {
        path: path.clone(),
        error,
    })?;
    Ok(BatchEntry {
        name: saved.scenario.name.clone(),
        path,
        saved,
    })
}

fn decode_manifest(root: &Node) -> Result<(Option<u64>, Vec<String>), ParseError> {
    let pairs = match &root.value {
        Value::Obj(pairs) => pairs,
        _ => {
            return Err(ParseError {
                line: root.line,
                col: root.col,
                expected: "a manifest object".into(),
            })
        }
    };
    let mut seed: Option<u64> = None;
    let mut files: Option<Vec<String>> = None;
    let mut format_seen = false;
    for (key, node) in pairs {
        match key.name.as_str() {
            "format" => {
                format_seen = true;
                match node.value {
                    Value::UInt(v) if v == persist::FORMAT_VERSION => {}
                    _ => {
                        return Err(ParseError {
                            line: node.line,
                            col: node.col,
                            expected: format!("format {}", persist::FORMAT_VERSION),
                        })
                    }
                }
            }
            "seed" => match node.value {
                Value::Null => {}
                Value::UInt(v) => seed = Some(v),
                _ => {
                    return Err(ParseError {
                        line: node.line,
                        col: node.col,
                        expected: "a seed (unsigned integer) or null".into(),
                    })
                }
            },
            "scenarios" => {
                let items = match &node.value {
                    Value::Arr(items) => items,
                    _ => {
                        return Err(ParseError {
                            line: node.line,
                            col: node.col,
                            expected: "an array of scenario file paths".into(),
                        })
                    }
                };
                let mut list = Vec::with_capacity(items.len());
                for item in items {
                    match &item.value {
                        Value::Str(s) => list.push(s.clone()),
                        _ => {
                            return Err(ParseError {
                                line: item.line,
                                col: item.col,
                                expected: "a scenario file path string".into(),
                            })
                        }
                    }
                }
                files = Some(list);
            }
            other => {
                return Err(ParseError {
                    line: key.line,
                    col: key.col,
                    expected: format!("no field `{other}` in the manifest"),
                })
            }
        }
    }
    if !format_seen {
        return Err(ParseError {
            line: root.line,
            col: root.col,
            expected: "field `format` in the manifest".into(),
        });
    }
    let files = files.ok_or_else(|| ParseError {
        line: root.line,
        col: root.col,
        expected: "field `scenarios` in the manifest".into(),
    })?;
    Ok((seed, files))
}

// ---------------------------------------------------------------------------
// Record rendering
// ---------------------------------------------------------------------------

fn jkey(name: &str) -> persist::Key {
    persist::Key {
        name: name.to_string(),
        line: 0,
        col: 0,
    }
}

fn jobj(pairs: Vec<(&str, Node)>) -> Node {
    Node {
        line: 0,
        col: 0,
        value: Value::Obj(pairs.into_iter().map(|(k, v)| (jkey(k), v)).collect()),
    }
}

fn jval(value: Value) -> Node {
    Node {
        line: 0,
        col: 0,
        value,
    }
}

fn jnum(x: f64) -> Node {
    // Result records are data, not fixtures: map the non-finite
    // energy-per-packet sentinel to null rather than refusing to stream.
    if x.is_finite() {
        jval(Value::Float(x))
    } else {
        jval(Value::Null)
    }
}

fn juint(u: u64) -> Node {
    jval(Value::UInt(u))
}

fn summary_json(s: &NetworkSummary) -> Node {
    jobj(vec![
        ("power_uw", jnum(s.mean_node_power.microwatts())),
        ("power_se_uw", jnum(s.power_standard_error.microwatts())),
        ("cap_power_uw", jnum(s.cap_power.microwatts())),
        ("cap_power_se_uw", jnum(s.cap_power_standard_error.microwatts())),
        ("cfp_power_uw", jnum(s.cfp_power.microwatts())),
        ("cfp_power_se_uw", jnum(s.cfp_power_standard_error.microwatts())),
        ("pr_fail", jnum(s.failure_ratio.value())),
        ("pr_fail_se", jnum(s.failure_standard_error)),
        ("delay_s", jnum(s.mean_delay.secs())),
        ("delay_se_s", jnum(s.delay_standard_error.secs())),
        ("attempts", jnum(s.mean_attempts)),
        ("transactions", juint(s.transactions)),
        ("energy_per_bit_nj", jnum(s.energy_per_bit_nj)),
        ("energy_per_packet_uj", jnum(s.energy_per_delivered_packet_uj)),
        ("replications", juint(s.replications as u64)),
        ("gts_transactions", juint(s.gts_transactions)),
        ("gts_failure_ratio", jnum(s.gts_failure_ratio.value())),
        ("gts_denied", juint(s.gts_denied)),
        ("downlink_polls", juint(s.downlink_polls)),
        ("downlink_failure_ratio", jnum(s.downlink_failure_ratio.value())),
        ("downlink_deferred", juint(s.downlink_deferred)),
        ("deaths", juint(s.deaths)),
        ("orphan_scans", juint(s.orphan_scans)),
        ("join_attempts", juint(s.join_attempts)),
        ("join_failure_ratio", jnum(s.join_failure_ratio.value())),
        ("reassociation_delay_s", jnum(s.mean_reassociation_delay.secs())),
        ("dormant_nodes", juint(s.dormant_nodes)),
    ])
}

impl ScenarioRecord {
    /// The streamed record: identity, seed, timing, the overall summary
    /// and the per-channel breakdown.
    pub fn to_json(&self) -> Node {
        let policy = match &self.policy {
            None => jval(Value::Null),
            Some((choice, rounds_run)) => jobj(vec![
                ("name", jval(Value::Str(choice.name().to_string()))),
                ("rounds_run", juint(*rounds_run as u64)),
            ]),
        };
        jobj(vec![
            ("scenario", jval(Value::Str(self.name.clone()))),
            ("seed", juint(self.seed)),
            ("channels", juint(self.outcome.per_channel.len() as u64)),
            ("job_ms", jnum(self.job_ms)),
            ("policy", policy),
            ("overall", summary_json(&self.outcome.overall)),
            (
                "per_channel",
                jval(Value::Arr(
                    self.outcome.per_channel.iter().map(summary_json).collect(),
                )),
            ),
            (
                "gts_denied_per_channel",
                jval(Value::Arr(
                    self.outcome
                        .gts_denied
                        .iter()
                        .map(|&d| juint(d as u64))
                        .collect(),
                )),
            ),
        ])
    }
}

impl BatchReport {
    /// The final aggregate record: batch-level counts, timing and pooled
    /// transaction totals.
    pub fn aggregate_json(&self) -> Node {
        let total_transactions: u64 = self
            .records
            .iter()
            .map(|r| r.outcome.overall.transactions)
            .sum();
        let total_failures: f64 = self
            .records
            .iter()
            .map(|r| {
                r.outcome.overall.failure_ratio.value() * r.outcome.overall.transactions as f64
            })
            .sum();
        let pooled_failure = if total_transactions > 0 {
            total_failures / total_transactions as f64
        } else {
            0.0
        };
        let total_deaths: u64 = self.records.iter().map(|r| r.outcome.overall.deaths).sum();
        let mean_power = if self.records.is_empty() {
            0.0
        } else {
            self.records
                .iter()
                .map(|r| r.outcome.overall.mean_node_power.microwatts())
                .sum::<f64>()
                / self.records.len() as f64
        };
        jobj(vec![
            ("aggregate", jval(Value::Bool(true))),
            ("scenarios", juint(self.records.len() as u64)),
            ("jobs", juint(self.jobs as u64)),
            ("wall_ms", jnum(self.wall_ms)),
            ("scenarios_per_sec", jnum(self.scenarios_per_sec())),
            ("total_transactions", juint(total_transactions)),
            ("pooled_failure_ratio", jnum(pooled_failure)),
            ("total_deaths", juint(total_deaths)),
            ("mean_scenario_power_uw", jnum(mean_power)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DeploymentSpec;

    fn tiny(name: &str, seed: u64) -> SavedScenario {
        SavedScenario::open_loop(
            Scenario::new(
                name,
                2,
                8,
                DeploymentSpec::UniformLossGrid {
                    min_db: 60.0,
                    max_db: 85.0,
                },
            )
            .with_superframes(3)
            .with_replications(2)
            .with_seed(seed),
        )
    }

    fn entry(name: &str, seed: u64) -> BatchEntry {
        BatchEntry {
            name: name.to_string(),
            path: PathBuf::from(format!("{name}.json")),
            saved: tiny(name, seed),
        }
    }

    #[test]
    fn batch_matches_standalone_runs_bit_for_bit() {
        let set =
            BatchSet::from_entries(vec![entry("a", 11), entry("b", 22)], None).unwrap();
        let runner = Runner::serial();
        let mut sink = Vec::new();
        let report = set.run(&runner, &mut sink).unwrap();
        for record in &report.records {
            let alone = set
                .entries()
                .iter()
                .find(|e| e.name == record.name)
                .map(|e| set.effective_scenario(e).run(&runner))
                .unwrap();
            assert_eq!(
                record.outcome.overall.mean_node_power,
                alone.overall.mean_node_power
            );
            assert_eq!(record.outcome.overall.failure_ratio, alone.overall.failure_ratio);
            assert_eq!(
                record.outcome.overall.power_standard_error,
                alone.overall.power_standard_error
            );
        }
        // One JSONL line per scenario plus the aggregate.
        let text = String::from_utf8(sink).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().last().unwrap().contains("\"aggregate\":true"));
    }

    #[test]
    fn manifest_seed_overrides_saved_seeds_by_name() {
        let set = BatchSet::from_entries(vec![entry("a", 11), entry("b", 22)], Some(99)).unwrap();
        let a = set.effective_scenario(&set.entries()[0]);
        let b = set.effective_scenario(&set.entries()[1]);
        assert_eq!(a.seed, scenario_master_seed(99, "a"));
        assert_eq!(b.seed, scenario_master_seed(99, "b"));
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn validation_runs_before_anything_else() {
        let mut bad = entry("bad", 1);
        bad.saved.scenario.channels = 0;
        let err = BatchSet::from_entries(vec![entry("ok", 2), bad], None).unwrap_err();
        assert!(matches!(err, BatchError::Invalid { .. }), "{err}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err =
            BatchSet::from_entries(vec![entry("same", 1), entry("same", 2)], None).unwrap_err();
        assert_eq!(
            err,
            BatchError::DuplicateName {
                name: "same".into()
            }
        );
    }

    #[test]
    fn empty_batches_are_rejected() {
        assert_eq!(
            BatchSet::from_entries(Vec::new(), None).unwrap_err(),
            BatchError::Empty
        );
    }

    #[test]
    fn policy_entries_run_closed_loop() {
        let mut e = entry("looped", 5);
        e.saved.policy = Some(PolicyChoice::Static { rounds: 2 });
        let set = BatchSet::from_entries(vec![e], None).unwrap();
        let mut sink = Vec::new();
        let report = set.run(&Runner::serial(), &mut sink).unwrap();
        let (choice, rounds_run) = report.records[0].policy.unwrap();
        assert_eq!(choice.name(), "static");
        assert!(rounds_run >= 1);
        assert!(report.records[0].outcome.overall.transactions > 0);
    }
}
