//! Batch simulation service: run a directory of saved scenarios as one
//! deterministic job grid.
//!
//! [`crate::persist`] makes scenarios data; this module makes them a
//! workload. A [`BatchSet`] loads every scenario file in a directory
//! ([`BatchSet::load_dir`]) or the files a manifest lists
//! ([`BatchSet::load_manifest`]), validates **all** of them up front
//! (one bad file fails the batch before any simulation starts), and
//! [`BatchSet::run`] executes the whole set through one [`Runner`]:
//!
//! * **One shared worker pool.** Every open-loop scenario's
//!   channels × replications jobs flatten into a single job list on one
//!   [`Runner::map`] call — a 10 000-scenario directory saturates every
//!   core for the entire batch instead of draining one small grid at a
//!   time. Each job reproduces exactly what [`Scenario::run`] computes
//!   for that (channel, replication), and each scenario reduces through
//!   [`ScenarioOutcome::reduce`] in fixed order, so every per-scenario
//!   summary is **bit-identical** to running that scenario alone — for
//!   any thread count and any file ordering (results are keyed by
//!   scenario, not by position). Scenarios carrying a
//!   [`PolicyChoice`](crate::persist::PolicyChoice) are closed-loop and
//!   sequential by nature; they run after the grid, one
//!   [`PolicyEngine`] each, on the same runner.
//! * **Deterministic seeds.** By default every scenario runs with the
//!   master seed saved in its file. A manifest may instead set a batch
//!   seed: each scenario then runs with
//!   [`scenario_master_seed`]`(batch_seed, name)` — a pure function of
//!   the manifest seed and the scenario *name*, so reordering or adding
//!   files never changes any scenario's stream.
//! * **Streamed results.** Each finished scenario emits one compact JSON
//!   record (JSON-lines) with the full [`NetworkSummary`] surface —
//!   CAP/CFP split, fault counters and standard errors included — and
//!   the batch ends with one aggregate record, all through a
//!   [`ResultSink`] (any `Write` via [`WriteSink`], or a retrying
//!   [`TcpSink`](crate::sink::TcpSink)).
//! * **Fault tolerance.** [`BatchSet::run_with`] takes a [`RunConfig`]:
//!   an fsync'd progress [journal](crate::journal) makes a killed farm
//!   resumable ([`RunConfig::resume`] skips scenarios whose
//!   [config fingerprint](crate::persist::fingerprint_scenario) already
//!   completed, and re-runs ones whose file changed — resumed records are
//!   bit-identical to an uninterrupted run), a panicking scenario is
//!   isolated into a typed `"status":"failed"` record (with a retry
//!   budget) while the rest of the farm keeps running, and a per-scenario
//!   wall-clock watchdog turns runaway configs into `"timeout"` records.

use std::fmt;
use std::io::{self, Write};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::journal::{load_journal, JournalError, JournalRecord, JournalWriter};
use crate::network::{NetworkAccumulator, NetworkConfig, NetworkSimulator, NetworkSummary};
use crate::persist::{
    self, fingerprint_scenario, load_scenario, render_compact, Node, ParseError, PolicyChoice,
    SavedScenario, Value,
};
use crate::policy::PolicyEngine;
use crate::runner::{panic_message, replication_seed, JobPanic, Runner};
use crate::scenario::{ResolvedBer, Scenario, ScenarioOutcome};
use crate::sink::{ResultSink, WriteSink};

/// The per-scenario master seed under a manifest batch seed: a pure
/// function of `(batch_seed, name)` (FNV-1a over the name, fed through
/// the runner's SplitMix64 derivation), so a scenario's streams do not
/// depend on its position in the manifest or directory.
///
/// # Examples
///
/// ```
/// use wsn_sim::batch::scenario_master_seed;
///
/// assert_eq!(
///     scenario_master_seed(7, "churn"),
///     scenario_master_seed(7, "churn"),
/// );
/// assert_ne!(
///     scenario_master_seed(7, "churn"),
///     scenario_master_seed(7, "case-study"),
/// );
/// ```
pub fn scenario_master_seed(batch_seed: u64, name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    replication_seed(batch_seed, hash)
}

/// Why a batch failed to load or validate. Everything is diagnosed up
/// front: no simulation starts while any entry is bad.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error text.
        error: String,
    },
    /// A scenario (or manifest) file failed to parse or decode.
    Parse {
        /// The offending file.
        path: PathBuf,
        /// The typed position-carrying diagnostic.
        error: ParseError,
    },
    /// A scenario parsed but is structurally inconsistent
    /// ([`Scenario::validate`]).
    Invalid {
        /// The offending file.
        path: PathBuf,
        /// The first violated invariant.
        error: String,
    },
    /// Two entries share a scenario name — results are keyed by name, so
    /// names must be unique.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// The directory or manifest listed no scenarios.
    Empty,
    /// The progress journal could not be loaded or appended.
    Journal {
        /// The typed journal diagnostic.
        error: JournalError,
    },
    /// The result sink failed — the record could be neither delivered nor
    /// durably queued, so continuing would silently drop results.
    Sink {
        /// The I/O error text.
        error: String,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            BatchError::Parse { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            BatchError::Invalid { path, error } => {
                write!(f, "{}: invalid scenario: {error}", path.display())
            }
            BatchError::DuplicateName { name } => {
                write!(f, "duplicate scenario name `{name}`")
            }
            BatchError::Empty => write!(f, "no scenario files to run"),
            BatchError::Journal { error } => write!(f, "journal: {error}"),
            BatchError::Sink { error } => write!(f, "result sink: {error}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// One loaded batch entry: a saved scenario plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// The scenario's name (unique within the batch).
    pub name: String,
    /// The file it was loaded from.
    pub path: PathBuf,
    /// The decoded scenario + optional policy choice.
    pub saved: SavedScenario,
}

/// A validated set of scenarios ready to run as one job grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSet {
    entries: Vec<BatchEntry>,
    batch_seed: Option<u64>,
}

/// How the farm runs a batch: journaling, resume, isolation and
/// watchdog knobs. [`Default`] reproduces the original always-run-everything
/// behaviour (no journal, no retries, no watchdog).
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Progress journal path. Every completed scenario appends one
    /// fsync'd [`JournalRecord`] *after* its result record was emitted
    /// (emit-then-journal: a crash between the two duplicates at most one
    /// record on resume — identifiable by fingerprint — and never loses
    /// one).
    pub journal: Option<PathBuf>,
    /// With a journal: skip scenarios whose config fingerprint already
    /// completed `ok` in the journal, append to the journal instead of
    /// truncating it, and tolerate the torn final journal line a kill
    /// leaves behind. Scenarios whose file changed (different
    /// fingerprint) or that previously failed or timed out re-run.
    pub resume: bool,
    /// Stop after emitting the first `failed`/`timeout` record instead of
    /// completing the rest of the farm.
    pub strict: bool,
    /// Per-scenario wall-clock watchdog. Cooperative: the deadline is
    /// checked before each grid job (open-loop) or before the entry
    /// starts (closed-loop), so a scenario that blows its budget becomes
    /// a `"timeout"` record instead of hanging the farm. `Some(ZERO)`
    /// times every scenario out deterministically (the test hook). When
    /// set, scenarios run one wave each so the clock measures a single
    /// scenario. Timed-out scenarios are not retried.
    pub timeout: Option<Duration>,
    /// Extra attempts for a scenario whose jobs panicked (0 = one
    /// attempt). Simulation is deterministic, so this matters for panics
    /// from the *environment* (allocation failure, filesystem pressure
    /// under a custom sink) rather than from the config itself.
    pub retries: u32,
    /// Telemetry snapshot stream: after every wave (and once at the end)
    /// append one deterministic and one timing JSONL record
    /// ([`crate::telemetry::snapshot_lines`], `SCHEMA.md`
    /// § OBSERVABILITY) to this path — `"-"` means stdout. Setting this
    /// enables telemetry collection process-wide for the run; telemetry
    /// is provably inert, so the simulation records are unaffected.
    pub metrics: Option<PathBuf>,
    /// Print a single-line `# heartbeat:` progress report to stderr after
    /// each wave (rate-limited) and once at the end: `done/total, failed,
    /// ETA, events/s` (events/s requires telemetry, i.e. `metrics`;
    /// printed as `-` otherwise). Stderr only — the record stream stays
    /// byte-identical.
    pub heartbeat: bool,
}

/// How a scenario ended within a batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Ran to completion; the record carries the outcome.
    Ok,
    /// Every attempt panicked; the record carries the panic text.
    Failed {
        /// The (first) panic payload of the final attempt.
        panic: String,
    },
    /// The wall-clock watchdog fired before the jobs finished.
    Timeout,
}

impl ScenarioStatus {
    /// The JSONL `status` field value: `ok`, `failed` or `timeout`.
    pub fn as_str(&self) -> &'static str {
        match self {
            ScenarioStatus::Ok => "ok",
            ScenarioStatus::Failed { .. } => "failed",
            ScenarioStatus::Timeout => "timeout",
        }
    }

    /// True for [`ScenarioStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ScenarioStatus::Ok)
    }
}

/// One scenario's results within a batch run.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The scenario's name.
    pub name: String,
    /// The master seed it effectively ran with.
    pub seed: u64,
    /// [`fingerprint_scenario`] of the effective saved scenario (seed
    /// adjustments and policy choice included) — the resume key.
    pub fingerprint: String,
    /// How the scenario ended.
    pub status: ScenarioStatus,
    /// Attempts consumed (1 + retries used).
    pub attempts: u32,
    /// Channels the scenario spans (available even when it failed).
    pub channels: usize,
    /// The reduced outcome — bit-identical to [`Scenario::run`] of the
    /// same (seed-adjusted) scenario for open-loop entries; for policy
    /// entries, the final round's outcome. `None` unless
    /// [`status`](Self::status) is `Ok`.
    pub outcome: Option<ScenarioOutcome>,
    /// The policy that closed the loop, if any, with the rounds it ran.
    pub policy: Option<(PolicyChoice, usize)>,
    /// Summed per-job wall-clock in milliseconds (CPU cost, not elapsed
    /// time, under parallelism).
    pub job_ms: f64,
}

/// A completed batch: per-scenario records plus batch-level timing.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One record per scenario that *ran*, in entry order (resume-skipped
    /// scenarios have no record; a strict abort stops the list early).
    pub records: Vec<ScenarioRecord>,
    /// Scenarios skipped by resume (journaled `ok` with a matching
    /// fingerprint).
    pub skipped: usize,
    /// True when [`RunConfig::strict`] stopped the batch at the first
    /// non-`ok` record.
    pub strict_aborted: bool,
    /// Elapsed wall-clock of the whole batch in milliseconds.
    pub wall_ms: f64,
    /// Jobs executed on the shared pool (open-loop channels ×
    /// replications; policy rounds are counted per round grid).
    pub jobs: usize,
}

impl BatchReport {
    /// Scenarios completed per second of batch wall-clock.
    pub fn scenarios_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / (self.wall_ms / 1e3)
    }

    /// Records that ended `failed`.
    pub fn failed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.status, ScenarioStatus::Failed { .. }))
            .count()
    }

    /// Records that ended `timeout`.
    pub fn timed_out(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.status == ScenarioStatus::Timeout)
            .count()
    }

    /// True when every record is `ok` and nothing was aborted (skipped
    /// scenarios count as ok — they completed in a previous run).
    pub fn all_ok(&self) -> bool {
        !self.strict_aborted && self.records.iter().all(|r| r.status.is_ok())
    }
}

/// One open-loop scenario prepared for the shared grid.
struct PlainPrep {
    configs: Vec<NetworkConfig>,
    bers: Vec<ResolvedBer>,
    replications: u32,
    shards: usize,
}

/// One job's result on the shared grid: the accumulator and its wall
/// clock, `None` when the watchdog deadline had already passed.
type GridJobResult = Result<Option<(NetworkAccumulator, f64)>, JobPanic>;

/// One attempt over a scenario's jobs, classified.
enum AttemptResult {
    /// Every job ran: the accumulators in (channel, replication) order.
    Done(Vec<(NetworkAccumulator, f64)>),
    /// At least one job panicked (the first message, in job order —
    /// deterministic because results are indexed, not raced).
    Panicked(String),
    /// At least one job was skipped by the watchdog deadline.
    TimedOut,
}

fn classify_attempt(attempt: Vec<GridJobResult>) -> AttemptResult {
    let mut done = Vec::with_capacity(attempt.len());
    let mut timed_out = false;
    let mut panic: Option<String> = None;
    for result in attempt {
        match result {
            Err(p) => {
                if panic.is_none() {
                    panic = Some(p.message);
                }
            }
            Ok(None) => timed_out = true,
            Ok(Some(job)) => done.push(job),
        }
    }
    if let Some(panic) = panic {
        AttemptResult::Panicked(panic)
    } else if timed_out {
        AttemptResult::TimedOut
    } else {
        AttemptResult::Done(done)
    }
}

impl BatchSet {
    /// Wraps already-loaded entries (the test seam). Validates like the
    /// file loaders.
    ///
    /// # Errors
    ///
    /// Returns the first [`BatchError`] among the entries.
    pub fn from_entries(
        entries: Vec<BatchEntry>,
        batch_seed: Option<u64>,
    ) -> Result<Self, BatchError> {
        if entries.is_empty() {
            return Err(BatchError::Empty);
        }
        for (i, entry) in entries.iter().enumerate() {
            entry
                .saved
                .scenario
                .validate()
                .map_err(|error| BatchError::Invalid {
                    path: entry.path.clone(),
                    error,
                })?;
            if entries[..i].iter().any(|e| e.name == entry.name) {
                return Err(BatchError::DuplicateName {
                    name: entry.name.clone(),
                });
            }
        }
        Ok(BatchSet {
            entries,
            batch_seed,
        })
    }

    /// Loads every `*.json` scenario file in `dir` (sorted by file name;
    /// `manifest.json` is skipped), each running with its saved seed.
    ///
    /// # Errors
    ///
    /// Returns the first I/O, parse, validation or duplicate-name
    /// failure — nothing runs until the whole directory is good.
    pub fn load_dir(dir: &Path) -> Result<Self, BatchError> {
        let read = std::fs::read_dir(dir).map_err(|e| BatchError::Io {
            path: dir.to_path_buf(),
            error: e.to_string(),
        })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for dirent in read {
            let dirent = dirent.map_err(|e| BatchError::Io {
                path: dir.to_path_buf(),
                error: e.to_string(),
            })?;
            let path = dirent.path();
            let is_scenario = path.extension().is_some_and(|x| x == "json")
                && path.file_name().is_some_and(|f| f != "manifest.json");
            if is_scenario {
                paths.push(path);
            }
        }
        paths.sort();
        let entries = paths
            .into_iter()
            .map(load_entry)
            .collect::<Result<_, _>>()?;
        BatchSet::from_entries(entries, None)
    }

    /// Loads the scenarios a manifest lists. The manifest is itself
    /// format-1 JSON:
    ///
    /// ```json
    /// {
    ///   "format": 1,
    ///   "seed": null,
    ///   "scenarios": ["case_study_s5.json", "churn_outage.json"]
    /// }
    /// ```
    ///
    /// Paths are relative to the manifest's directory. A non-null `seed`
    /// overrides every scenario's saved master seed via
    /// [`scenario_master_seed`]; `null` keeps the saved seeds (so the
    /// batch reproduces each in-code study bit for bit).
    ///
    /// # Errors
    ///
    /// Returns the first I/O, parse, validation or duplicate-name
    /// failure.
    pub fn load_manifest(path: &Path) -> Result<Self, BatchError> {
        let text = std::fs::read_to_string(path).map_err(|e| BatchError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        })?;
        let root = persist::parse_document(&text).map_err(|error| BatchError::Parse {
            path: path.to_path_buf(),
            error,
        })?;
        let parse_err = |error: ParseError| BatchError::Parse {
            path: path.to_path_buf(),
            error,
        };
        let (batch_seed, files) = decode_manifest(&root).map_err(parse_err)?;
        let base = path.parent().unwrap_or(Path::new("."));
        let entries = files
            .into_iter()
            .map(|f| load_entry(base.join(f)))
            .collect::<Result<_, _>>()?;
        BatchSet::from_entries(entries, batch_seed)
    }

    /// The validated entries, in load order.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// The manifest batch seed, if one overrides the saved seeds.
    pub fn batch_seed(&self) -> Option<u64> {
        self.batch_seed
    }

    /// The scenario an entry effectively runs: the saved scenario, with
    /// its master seed re-derived when the batch carries a manifest seed.
    pub fn effective_scenario(&self, entry: &BatchEntry) -> Scenario {
        let mut scenario = entry.saved.scenario.clone();
        if let Some(batch_seed) = self.batch_seed {
            scenario.seed = scenario_master_seed(batch_seed, &entry.name);
        }
        scenario
    }

    /// Runs the whole batch with the default [`RunConfig`] (no journal,
    /// no retries, no watchdog) into any `Write` — the original entry
    /// point, kept for callers that just want the stream.
    ///
    /// # Errors
    ///
    /// Propagates `sink` write failures; simulation itself is
    /// infallible once the set validated.
    pub fn run(&self, runner: &Runner, sink: &mut dyn Write) -> io::Result<BatchReport> {
        let mut sink = WriteSink::new(sink);
        self.run_with(runner, &mut sink, &RunConfig::default())
            .map_err(|e| io::Error::other(e.to_string()))
    }

    /// Runs the whole batch on `runner`, streaming one compact JSON
    /// record per scenario (plus a final aggregate record) into `sink`,
    /// under the fault-tolerance knobs in `config`.
    ///
    /// Consecutive open-loop scenarios execute in *waves*: each wave is
    /// one flat job grid on the shared pool, sized to keep every worker
    /// busy, and its records emit (and journal) as soon as it completes —
    /// so a killed farm loses at most one wave of work. Policy-bearing
    /// scenarios run alone, each through a [`PolicyEngine`] on the same
    /// runner. Records stream in entry order. Per-scenario summaries are
    /// bit-identical to running each scenario alone, for every thread
    /// count, entry ordering, wave split and resume point.
    ///
    /// A panicking scenario — in `compile` or in any job — becomes a
    /// `"status":"failed"` record (after [`RunConfig::retries`] extra
    /// attempts) and the rest of the farm keeps running; the
    /// [`RunConfig::timeout`] watchdog likewise yields `"timeout"`
    /// records. With [`RunConfig::strict`], the batch stops after the
    /// first non-`ok` record.
    ///
    /// # Errors
    ///
    /// [`BatchError::Sink`] when a record can be neither delivered nor
    /// durably queued; [`BatchError::Journal`] when the progress journal
    /// cannot be read, repaired or appended. Simulation failures are
    /// *not* errors — they are typed records.
    pub fn run_with(
        &self,
        runner: &Runner,
        sink: &mut dyn ResultSink,
        config: &RunConfig,
    ) -> Result<BatchReport, BatchError> {
        let t0 = Instant::now();

        let scenarios: Vec<Scenario> = self
            .entries
            .iter()
            .map(|e| self.effective_scenario(e))
            .collect();
        let fingerprints: Vec<String> = self
            .entries
            .iter()
            .zip(&scenarios)
            .map(|(entry, scenario)| {
                fingerprint_scenario(&SavedScenario {
                    scenario: scenario.clone(),
                    policy: entry.saved.policy,
                })
            })
            .collect();

        // Resume: decide what to skip before anything runs. Only an `ok`
        // journal entry with a matching fingerprint skips — a changed
        // file, a failure or a timeout re-runs.
        let mut skip = vec![false; self.entries.len()];
        let mut skipped = 0usize;
        if config.resume {
            if let Some(path) = &config.journal {
                let prior = load_journal(path).map_err(|error| BatchError::Journal { error })?;
                for (i, entry) in self.entries.iter().enumerate() {
                    if prior
                        .latest(&entry.name)
                        .is_some_and(|r| r.skippable(&fingerprints[i]))
                    {
                        skip[i] = true;
                        skipped += 1;
                    }
                }
            }
        }

        let mut journal = match &config.journal {
            Some(path) => {
                let writer = if config.resume {
                    // Drop the torn final line a kill left behind, so
                    // appended records concatenate cleanly.
                    crate::journal::repair_jsonl_tail(path).map_err(|e| BatchError::Journal {
                        error: JournalError::Io {
                            path: path.clone(),
                            error: e.to_string(),
                        },
                    })?;
                    JournalWriter::resume(path)
                } else {
                    JournalWriter::create(path)
                };
                Some(writer.map_err(|error| BatchError::Journal { error })?)
            }
            None => None,
        };

        // Telemetry / progress plumbing. Requesting a metrics stream
        // enables collection process-wide; telemetry is provably inert,
        // so the simulation record stream stays byte-identical to a
        // metrics-off run (`telemetry_inert` pins this).
        if config.metrics.is_some() {
            crate::telemetry::set_enabled(true);
        }
        let mut metrics_out: Option<Box<dyn Write>> = match &config.metrics {
            Some(path) if path.as_os_str() == "-" => Some(Box::new(io::stdout())),
            Some(path) => {
                let file = std::fs::File::create(path).map_err(|e| BatchError::Sink {
                    error: format!("metrics stream {}: {e}", path.display()),
                })?;
                Some(Box::new(file))
            }
            None => None,
        };
        let telem = crate::telemetry::enabled();
        if telem {
            crate::telemetry::note_farm_start(self.entries.len() as u64, skipped as u64);
        }
        let events_at_start = telem
            .then(|| crate::telemetry::snapshot().engine.events)
            .unwrap_or(0);
        let batch_span = telem.then(|| {
            crate::telemetry::Span::enter(crate::telemetry::Phase::Batch)
        });
        let mut last_heartbeat = Instant::now();

        let mut records: Vec<ScenarioRecord> = Vec::new();
        let mut jobs_run = 0usize;
        let mut strict_aborted = false;

        // Wave sizing: chunk consecutive open-loop entries until a wave
        // carries enough jobs to saturate the pool, so incremental
        // journalable emission costs almost no parallelism. A watchdog
        // forces one scenario per wave so the clock measures a single
        // scenario.
        let wave_target = runner.threads().max(1) * 4;

        let mut i = 0usize;
        'entries: while i < self.entries.len() {
            if skip[i] {
                i += 1;
                continue;
            }
            let policy_entry = self.entries[i].saved.policy.is_some();
            let wave: Vec<usize> = if policy_entry {
                let idx = i;
                i += 1;
                vec![idx]
            } else {
                let mut wave = Vec::new();
                let mut wave_jobs = 0usize;
                while i < self.entries.len() && self.entries[i].saved.policy.is_none() {
                    if skip[i] {
                        i += 1;
                        continue;
                    }
                    let s = &scenarios[i];
                    wave.push(i);
                    wave_jobs += s.channels * s.replications.max(1) as usize;
                    i += 1;
                    if wave_jobs >= wave_target || config.timeout.is_some() {
                        break;
                    }
                }
                wave
            };

            let wave_t0 = Instant::now();
            let wave_records = if policy_entry {
                vec![self.run_policy_entry(
                    runner,
                    wave[0],
                    &scenarios[wave[0]],
                    &fingerprints[wave[0]],
                    config,
                    &mut jobs_run,
                )]
            } else {
                self.run_wave(runner, &wave, &scenarios, &fingerprints, config, &mut jobs_run)
            };
            if telem {
                crate::telemetry::note_wave(wave_t0.elapsed().as_secs_f64() * 1e3);
            }

            for record in wave_records {
                let line = render_compact(&record.to_json());
                sink.emit(&line).map_err(|e| BatchError::Sink {
                    error: e.to_string(),
                })?;
                if let Some(journal) = journal.as_mut() {
                    journal
                        .append(&JournalRecord {
                            scenario: record.name.clone(),
                            fingerprint: record.fingerprint.clone(),
                            status: record.status.as_str().to_string(),
                            attempts: u64::from(record.attempts),
                            elapsed_ms: record.job_ms,
                        })
                        .map_err(|error| BatchError::Journal { error })?;
                }
                if telem {
                    let outcome = match &record.status {
                        ScenarioStatus::Ok => crate::telemetry::FarmOutcome::Ok,
                        ScenarioStatus::Failed { .. } => crate::telemetry::FarmOutcome::Failed,
                        ScenarioStatus::Timeout => crate::telemetry::FarmOutcome::Timeout,
                    };
                    crate::telemetry::note_farm_record(
                        outcome,
                        u64::from(record.attempts.saturating_sub(1)),
                    );
                }
                let ok = record.status.is_ok();
                records.push(record);
                if !ok && config.strict {
                    strict_aborted = true;
                    break 'entries;
                }
            }

            if let Some(out) = metrics_out.as_mut() {
                write_metrics_snapshot(out.as_mut(), false)?;
            }
            if config.heartbeat && last_heartbeat.elapsed() >= Duration::from_millis(500) {
                emit_heartbeat(
                    skipped + records.len(),
                    self.entries.len(),
                    records.iter().filter(|r| !r.status.is_ok()).count(),
                    t0.elapsed().as_secs_f64(),
                    telem.then(|| crate::telemetry::snapshot().engine.events - events_at_start),
                );
                last_heartbeat = Instant::now();
            }
        }

        if telem {
            let c = sink.counters();
            crate::telemetry::note_sink_counters(
                c.connect_retries as u64,
                c.reconnects as u64,
                c.spilled_lines as u64,
                c.drained_lines as u64,
            );
        }
        // Close the batch span before the final snapshot so the timing
        // record includes the whole-batch wall.
        drop(batch_span);
        if let Some(out) = metrics_out.as_mut() {
            write_metrics_snapshot(out.as_mut(), true)?;
        }
        if config.heartbeat {
            emit_heartbeat(
                skipped + records.len(),
                self.entries.len(),
                records.iter().filter(|r| !r.status.is_ok()).count(),
                t0.elapsed().as_secs_f64(),
                telem.then(|| crate::telemetry::snapshot().engine.events - events_at_start),
            );
        }

        let report = BatchReport {
            records,
            skipped,
            strict_aborted,
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            jobs: jobs_run,
        };
        sink.emit(&render_compact(&report.aggregate_json()))
            .map_err(|e| BatchError::Sink {
                error: e.to_string(),
            })?;
        sink.done().map_err(|e| BatchError::Sink {
            error: e.to_string(),
        })?;
        Ok(report)
    }

    /// Runs one wave of open-loop entries as a shared grid with panic
    /// isolation, the watchdog and the retry budget. Records come back in
    /// wave (= entry) order.
    fn run_wave(
        &self,
        runner: &Runner,
        wave: &[usize],
        scenarios: &[Scenario],
        fingerprints: &[String],
        config: &RunConfig,
        jobs_run: &mut usize,
    ) -> Vec<ScenarioRecord> {
        // Compile with panic isolation: a config that blows up in
        // `compile` (main-thread work) must poison only itself. Compile
        // panics are deterministic, so they are not retried.
        let preps: Vec<Result<PlainPrep, String>> = wave
            .iter()
            .map(|&idx| {
                let scenario = &scenarios[idx];
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let configs = scenario.compile();
                    let bers: Vec<ResolvedBer> = (0..configs.len())
                        .map(|c| scenario.channel_ber(c).model())
                        .collect();
                    PlainPrep {
                        configs,
                        bers,
                        replications: scenario.replications.max(1),
                        shards: scenario.shards.max(1),
                    }
                }))
                .map_err(panic_message)
            })
            .collect();

        let timeout_zero = config.timeout == Some(Duration::ZERO);
        let deadline = config.timeout.map(|t| Instant::now() + t);

        // One job, pure in (prep, channel, replication) — reproduces
        // Scenario::run_grid's per-job computation exactly, so reductions
        // stay bit-identical to standalone runs (and to any retry).
        let run_job = |prep: &PlainPrep, c: usize, r: u64| -> (NetworkAccumulator, f64) {
            let t = Instant::now();
            let mut cfg = prep.configs[c].clone();
            cfg.channel.seed = replication_seed(cfg.channel.seed, r);
            let sim = NetworkSimulator::new(cfg);
            let acc = if prep.shards > 1 {
                sim.run_accumulate_sharded(&prep.bers[c], prep.shards)
            } else {
                sim.run_accumulate(&prep.bers[c])
            };
            (acc, t.elapsed().as_secs_f64() * 1e3)
        };

        // Attempt 1: every compiled prep's jobs on one shared grid.
        let grid_jobs: Vec<(usize, usize, u64)> = preps
            .iter()
            .enumerate()
            .filter_map(|(p, prep)| prep.as_ref().ok().map(|prep| (p, prep)))
            .flat_map(|(p, prep)| {
                (0..prep.configs.len()).flat_map(move |c| {
                    (0..prep.replications as u64).map(move |r| (p, c, r))
                })
            })
            .collect();
        let results: Vec<GridJobResult> = runner.map_catching(&grid_jobs, |_, &(p, c, r)| {
            if timeout_zero || deadline.is_some_and(|d| Instant::now() >= d) {
                return None;
            }
            let prep = preps[p].as_ref().expect("only compiled preps enqueue jobs");
            Some(run_job(prep, c, r))
        });
        *jobs_run += grid_jobs.len();

        let mut records = Vec::with_capacity(wave.len());
        let mut cursor = results.into_iter();
        for (p, prep) in preps.iter().enumerate() {
            let idx = wave[p];
            let scenario = &scenarios[idx];
            let base = ScenarioRecord {
                name: self.entries[idx].name.clone(),
                seed: scenario.seed,
                fingerprint: fingerprints[idx].clone(),
                status: ScenarioStatus::Ok,
                attempts: 1,
                channels: scenario.channels,
                outcome: None,
                policy: None,
                job_ms: 0.0,
            };
            let prep = match prep {
                Err(panic) => {
                    records.push(ScenarioRecord {
                        status: ScenarioStatus::Failed {
                            panic: panic.clone(),
                        },
                        ..base
                    });
                    continue;
                }
                Ok(prep) => prep,
            };
            let njobs = prep.configs.len() * prep.replications as usize;
            let mut attempt = classify_attempt(cursor.by_ref().take(njobs).collect());
            let mut attempts = 1u32;

            // Retry budget: only panicked attempts retry (timeouts would
            // just burn another budget on the same runaway config).
            while matches!(attempt, AttemptResult::Panicked(_)) && attempts <= config.retries {
                attempts += 1;
                let retry_jobs: Vec<(usize, u64)> = (0..prep.configs.len())
                    .flat_map(|c| (0..prep.replications as u64).map(move |r| (c, r)))
                    .collect();
                let retry_deadline = config.timeout.map(|t| Instant::now() + t);
                let retry: Vec<GridJobResult> =
                    runner.map_catching(&retry_jobs, |_, &(c, r)| {
                        if timeout_zero || retry_deadline.is_some_and(|d| Instant::now() >= d) {
                            return None;
                        }
                        Some(run_job(prep, c, r))
                    });
                *jobs_run += retry_jobs.len();
                attempt = classify_attempt(retry);
            }

            records.push(match attempt {
                AttemptResult::Panicked(panic) => ScenarioRecord {
                    status: ScenarioStatus::Failed { panic },
                    attempts,
                    ..base
                },
                AttemptResult::TimedOut => ScenarioRecord {
                    status: ScenarioStatus::Timeout,
                    attempts,
                    ..base
                },
                AttemptResult::Done(done) => {
                    let mut accs: Vec<Vec<NetworkAccumulator>> =
                        Vec::with_capacity(prep.configs.len());
                    let mut job_ms = 0.0;
                    let mut it = done.into_iter();
                    for _ in 0..prep.configs.len() {
                        let mut reps = Vec::with_capacity(prep.replications as usize);
                        for _ in 0..prep.replications {
                            let (acc, ms) = it.next().expect("one result per grid job");
                            reps.push(acc);
                            job_ms += ms;
                        }
                        accs.push(reps);
                    }
                    let mut outcome = ScenarioOutcome::reduce(scenario.name.clone(), &accs);
                    outcome.gts_denied = prep
                        .configs
                        .iter()
                        .map(|c| c.channel.cfp.gts_denied)
                        .collect();
                    ScenarioRecord {
                        attempts,
                        outcome: Some(outcome),
                        job_ms,
                        ..base
                    }
                }
            });
        }
        records
    }

    /// Runs one closed-loop (policy) entry with panic isolation and the
    /// retry budget. The watchdog is checked before the entry starts (a
    /// policy loop is inherently sequential; only the `Some(ZERO)`
    /// deterministic hook can interrupt it).
    fn run_policy_entry(
        &self,
        runner: &Runner,
        idx: usize,
        scenario: &Scenario,
        fingerprint: &str,
        config: &RunConfig,
        jobs_run: &mut usize,
    ) -> ScenarioRecord {
        let entry = &self.entries[idx];
        let choice = entry.saved.policy.expect("policy entry");
        let base = ScenarioRecord {
            name: entry.name.clone(),
            seed: scenario.seed,
            fingerprint: fingerprint.to_string(),
            status: ScenarioStatus::Ok,
            attempts: 1,
            channels: scenario.channels,
            outcome: None,
            policy: None,
            job_ms: 0.0,
        };
        if config.timeout == Some(Duration::ZERO) {
            return ScenarioRecord {
                status: ScenarioStatus::Timeout,
                ..base
            };
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let t = Instant::now();
            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut policy = choice.build();
                PolicyEngine::new(scenario.clone())
                    .with_rounds(choice.rounds() as usize)
                    .run(runner, &mut *policy)
            }));
            match run {
                Ok(trace) => {
                    let rounds_run = trace.rounds.len();
                    *jobs_run +=
                        rounds_run * scenario.channels * scenario.replications.max(1) as usize;
                    let outcome = trace
                        .rounds
                        .into_iter()
                        .last()
                        .map(|round| round.outcome)
                        .expect("a policy loop runs at least one round");
                    return ScenarioRecord {
                        attempts,
                        outcome: Some(outcome),
                        policy: Some((choice, rounds_run)),
                        job_ms: t.elapsed().as_secs_f64() * 1e3,
                        ..base.clone()
                    };
                }
                Err(payload) => {
                    if attempts > config.retries {
                        return ScenarioRecord {
                            status: ScenarioStatus::Failed {
                                panic: panic_message(payload),
                            },
                            attempts,
                            ..base.clone()
                        };
                    }
                }
            }
        }
    }
}

fn load_entry(path: PathBuf) -> Result<BatchEntry, BatchError> {
    let text = std::fs::read_to_string(&path).map_err(|e| BatchError::Io {
        path: path.clone(),
        error: e.to_string(),
    })?;
    let saved = load_scenario(&text).map_err(|error| BatchError::Parse {
        path: path.clone(),
        error,
    })?;
    Ok(BatchEntry {
        name: saved.scenario.name.clone(),
        path,
        saved,
    })
}

fn decode_manifest(root: &Node) -> Result<(Option<u64>, Vec<String>), ParseError> {
    let pairs = match &root.value {
        Value::Obj(pairs) => pairs,
        _ => {
            return Err(ParseError {
                line: root.line,
                col: root.col,
                expected: "a manifest object".into(),
            })
        }
    };
    let mut seed: Option<u64> = None;
    let mut files: Option<Vec<String>> = None;
    let mut format_seen = false;
    for (key, node) in pairs {
        match key.name.as_str() {
            "format" => {
                format_seen = true;
                match node.value {
                    Value::UInt(v) if v == persist::FORMAT_VERSION => {}
                    _ => {
                        return Err(ParseError {
                            line: node.line,
                            col: node.col,
                            expected: format!("format {}", persist::FORMAT_VERSION),
                        })
                    }
                }
            }
            "seed" => match node.value {
                Value::Null => {}
                Value::UInt(v) => seed = Some(v),
                _ => {
                    return Err(ParseError {
                        line: node.line,
                        col: node.col,
                        expected: "a seed (unsigned integer) or null".into(),
                    })
                }
            },
            "scenarios" => {
                let items = match &node.value {
                    Value::Arr(items) => items,
                    _ => {
                        return Err(ParseError {
                            line: node.line,
                            col: node.col,
                            expected: "an array of scenario file paths".into(),
                        })
                    }
                };
                let mut list = Vec::with_capacity(items.len());
                for item in items {
                    match &item.value {
                        Value::Str(s) => list.push(s.clone()),
                        _ => {
                            return Err(ParseError {
                                line: item.line,
                                col: item.col,
                                expected: "a scenario file path string".into(),
                            })
                        }
                    }
                }
                files = Some(list);
            }
            other => {
                return Err(ParseError {
                    line: key.line,
                    col: key.col,
                    expected: format!("no field `{other}` in the manifest"),
                })
            }
        }
    }
    if !format_seen {
        return Err(ParseError {
            line: root.line,
            col: root.col,
            expected: "field `format` in the manifest".into(),
        });
    }
    let files = files.ok_or_else(|| ParseError {
        line: root.line,
        col: root.col,
        expected: "field `scenarios` in the manifest".into(),
    })?;
    Ok((seed, files))
}

// ---------------------------------------------------------------------------
// Record rendering
// ---------------------------------------------------------------------------

use persist::json;

/// Writes one deterministic + one timing snapshot record to the metrics
/// stream ([`RunConfig::metrics`]).
fn write_metrics_snapshot(out: &mut dyn Write, last: bool) -> Result<(), BatchError> {
    let (det, timing) = crate::telemetry::snapshot_lines(last);
    writeln!(out, "{det}")
        .and_then(|_| writeln!(out, "{timing}"))
        .and_then(|_| out.flush())
        .map_err(|e| BatchError::Sink {
            error: format!("metrics stream: {e}"),
        })
}

/// The single-line stderr progress report ([`RunConfig::heartbeat`]).
/// `events` is the engine event count accumulated since the farm
/// started, when telemetry is on.
fn emit_heartbeat(done: usize, total: usize, failed: usize, elapsed_s: f64, events: Option<u64>) {
    let remaining = total.saturating_sub(done);
    let eta = if done > 0 && remaining > 0 {
        format!("{:.1}s", elapsed_s / done as f64 * remaining as f64)
    } else if remaining > 0 {
        "?".to_string()
    } else {
        "0.0s".to_string()
    };
    let rate = match events {
        Some(n) if elapsed_s > 0.0 => format!("{:.0}", n as f64 / elapsed_s),
        _ => "-".to_string(),
    };
    eprintln!("# heartbeat: {done}/{total} done, {failed} failed, eta {eta}, {rate} events/s");
}

fn summary_json(s: &NetworkSummary) -> Node {
    json::obj(vec![
        ("power_uw", json::num(s.mean_node_power.microwatts())),
        ("power_se_uw", json::num(s.power_standard_error.microwatts())),
        ("cap_power_uw", json::num(s.cap_power.microwatts())),
        (
            "cap_power_se_uw",
            json::num(s.cap_power_standard_error.microwatts()),
        ),
        ("cfp_power_uw", json::num(s.cfp_power.microwatts())),
        (
            "cfp_power_se_uw",
            json::num(s.cfp_power_standard_error.microwatts()),
        ),
        ("pr_fail", json::num(s.failure_ratio.value())),
        ("pr_fail_se", json::num(s.failure_standard_error)),
        ("delay_s", json::num(s.mean_delay.secs())),
        ("delay_se_s", json::num(s.delay_standard_error.secs())),
        ("attempts", json::num(s.mean_attempts)),
        ("transactions", json::uint(s.transactions)),
        ("energy_per_bit_nj", json::num(s.energy_per_bit_nj)),
        (
            "energy_per_packet_uj",
            json::num(s.energy_per_delivered_packet_uj),
        ),
        ("replications", json::uint(s.replications as u64)),
        ("gts_transactions", json::uint(s.gts_transactions)),
        ("gts_failure_ratio", json::num(s.gts_failure_ratio.value())),
        ("gts_denied", json::uint(s.gts_denied)),
        ("downlink_polls", json::uint(s.downlink_polls)),
        (
            "downlink_failure_ratio",
            json::num(s.downlink_failure_ratio.value()),
        ),
        ("downlink_deferred", json::uint(s.downlink_deferred)),
        ("deaths", json::uint(s.deaths)),
        ("orphan_scans", json::uint(s.orphan_scans)),
        ("join_attempts", json::uint(s.join_attempts)),
        ("join_failure_ratio", json::num(s.join_failure_ratio.value())),
        (
            "reassociation_delay_s",
            json::num(s.mean_reassociation_delay.secs()),
        ),
        ("dormant_nodes", json::uint(s.dormant_nodes)),
    ])
}

impl ScenarioRecord {
    /// The streamed record: identity, seed, resume fingerprint, status,
    /// timing, the overall summary and the per-channel breakdown. A
    /// non-`ok` record carries `"overall":null`, empty per-channel
    /// arrays and (for failures) the panic text under `"panic"`.
    pub fn to_json(&self) -> Node {
        let policy = match &self.policy {
            None => json::null(),
            Some((choice, rounds_run)) => json::obj(vec![
                ("name", json::string(choice.name())),
                ("rounds_run", json::uint(*rounds_run as u64)),
            ]),
        };
        let panic = match &self.status {
            ScenarioStatus::Failed { panic } => json::string(panic),
            _ => json::null(),
        };
        let (overall, per_channel, gts_denied) = match &self.outcome {
            Some(outcome) => (
                summary_json(&outcome.overall),
                json::arr(outcome.per_channel.iter().map(summary_json).collect()),
                json::arr(
                    outcome
                        .gts_denied
                        .iter()
                        .map(|&d| json::uint(d as u64))
                        .collect(),
                ),
            ),
            None => (json::null(), json::arr(Vec::new()), json::arr(Vec::new())),
        };
        json::obj(vec![
            ("scenario", json::string(&self.name)),
            ("seed", json::uint(self.seed)),
            ("fingerprint", json::string(&self.fingerprint)),
            ("status", json::string(self.status.as_str())),
            ("attempts", json::uint(u64::from(self.attempts))),
            ("channels", json::uint(self.channels as u64)),
            ("job_ms", json::num(self.job_ms)),
            ("policy", policy),
            ("panic", panic),
            ("overall", overall),
            ("per_channel", per_channel),
            ("gts_denied_per_channel", gts_denied),
        ])
    }
}

impl BatchReport {
    /// The final aggregate record: batch-level counts (including the
    /// skipped/failed/timed-out tallies resume and isolation produce),
    /// timing and pooled transaction totals over the `ok` records.
    pub fn aggregate_json(&self) -> Node {
        let outcomes: Vec<&ScenarioOutcome> =
            self.records.iter().filter_map(|r| r.outcome.as_ref()).collect();
        let total_transactions: u64 = outcomes.iter().map(|o| o.overall.transactions).sum();
        let total_failures: f64 = outcomes
            .iter()
            .map(|o| o.overall.failure_ratio.value() * o.overall.transactions as f64)
            .sum();
        let pooled_failure = if total_transactions > 0 {
            total_failures / total_transactions as f64
        } else {
            0.0
        };
        let total_deaths: u64 = outcomes.iter().map(|o| o.overall.deaths).sum();
        let mean_power = if outcomes.is_empty() {
            0.0
        } else {
            outcomes
                .iter()
                .map(|o| o.overall.mean_node_power.microwatts())
                .sum::<f64>()
                / outcomes.len() as f64
        };
        json::obj(vec![
            ("aggregate", json::boolean(true)),
            ("scenarios", json::uint(self.records.len() as u64)),
            ("skipped", json::uint(self.skipped as u64)),
            ("failed", json::uint(self.failed() as u64)),
            ("timed_out", json::uint(self.timed_out() as u64)),
            ("strict_aborted", json::boolean(self.strict_aborted)),
            ("jobs", json::uint(self.jobs as u64)),
            ("wall_ms", json::num(self.wall_ms)),
            ("scenarios_per_sec", json::num(self.scenarios_per_sec())),
            ("total_transactions", json::uint(total_transactions)),
            ("pooled_failure_ratio", json::num(pooled_failure)),
            ("total_deaths", json::uint(total_deaths)),
            ("mean_scenario_power_uw", json::num(mean_power)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DeploymentSpec;

    fn tiny(name: &str, seed: u64) -> SavedScenario {
        SavedScenario::open_loop(
            Scenario::new(
                name,
                2,
                8,
                DeploymentSpec::UniformLossGrid {
                    min_db: 60.0,
                    max_db: 85.0,
                },
            )
            .with_superframes(3)
            .with_replications(2)
            .with_seed(seed),
        )
    }

    fn entry(name: &str, seed: u64) -> BatchEntry {
        BatchEntry {
            name: name.to_string(),
            path: PathBuf::from(format!("{name}.json")),
            saved: tiny(name, seed),
        }
    }

    #[test]
    fn batch_matches_standalone_runs_bit_for_bit() {
        let set =
            BatchSet::from_entries(vec![entry("a", 11), entry("b", 22)], None).unwrap();
        let runner = Runner::serial();
        let mut sink = Vec::new();
        let report = set.run(&runner, &mut sink).unwrap();
        assert!(report.all_ok());
        for record in &report.records {
            let alone = set
                .entries()
                .iter()
                .find(|e| e.name == record.name)
                .map(|e| set.effective_scenario(e).run(&runner))
                .unwrap();
            let outcome = record.outcome.as_ref().unwrap();
            assert_eq!(outcome.overall.mean_node_power, alone.overall.mean_node_power);
            assert_eq!(outcome.overall.failure_ratio, alone.overall.failure_ratio);
            assert_eq!(
                outcome.overall.power_standard_error,
                alone.overall.power_standard_error
            );
        }
        // One JSONL line per scenario plus the aggregate.
        let text = String::from_utf8(sink).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().last().unwrap().contains("\"aggregate\":true"));
    }

    #[test]
    fn manifest_seed_overrides_saved_seeds_by_name() {
        let set = BatchSet::from_entries(vec![entry("a", 11), entry("b", 22)], Some(99)).unwrap();
        let a = set.effective_scenario(&set.entries()[0]);
        let b = set.effective_scenario(&set.entries()[1]);
        assert_eq!(a.seed, scenario_master_seed(99, "a"));
        assert_eq!(b.seed, scenario_master_seed(99, "b"));
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn validation_runs_before_anything_else() {
        let mut bad = entry("bad", 1);
        bad.saved.scenario.channels = 0;
        let err = BatchSet::from_entries(vec![entry("ok", 2), bad], None).unwrap_err();
        assert!(matches!(err, BatchError::Invalid { .. }), "{err}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err =
            BatchSet::from_entries(vec![entry("same", 1), entry("same", 2)], None).unwrap_err();
        assert_eq!(
            err,
            BatchError::DuplicateName {
                name: "same".into()
            }
        );
    }

    #[test]
    fn empty_batches_are_rejected() {
        assert_eq!(
            BatchSet::from_entries(Vec::new(), None).unwrap_err(),
            BatchError::Empty
        );
    }

    #[test]
    fn policy_entries_run_closed_loop() {
        let mut e = entry("looped", 5);
        e.saved.policy = Some(PolicyChoice::Static { rounds: 2 });
        let set = BatchSet::from_entries(vec![e], None).unwrap();
        let mut sink = Vec::new();
        let report = set.run(&Runner::serial(), &mut sink).unwrap();
        let (choice, rounds_run) = report.records[0].policy.unwrap();
        assert_eq!(choice.name(), "static");
        assert!(rounds_run >= 1);
        assert!(report.records[0].outcome.as_ref().unwrap().overall.transactions > 0);
    }

    /// A scenario that passes [`Scenario::validate`] but panics in
    /// `compile` (the deliberate poison used by the resilience suite):
    /// `validate` does not check the disc radius sign, and
    /// `uniform_disc` asserts it is positive.
    fn poisoned(name: &str) -> BatchEntry {
        let mut e = entry(name, 3);
        e.saved.scenario.deployment = DeploymentSpec::Disc {
            radius_m: -1.0,
            exponent: 3.0,
            shadowing_db: 0.0,
        };
        e
    }

    #[test]
    fn a_panicking_scenario_poisons_only_itself() {
        let set = BatchSet::from_entries(
            vec![entry("a", 11), poisoned("boom"), entry("b", 22)],
            None,
        )
        .unwrap();
        let mut sink = WriteSink::new(Vec::new());
        let report = set
            .run_with(&Runner::serial(), &mut sink, &RunConfig::default())
            .unwrap();
        assert_eq!(report.records.len(), 3);
        assert!(!report.all_ok());
        assert_eq!(report.failed(), 1);
        let bad = report.records.iter().find(|r| r.name == "boom").unwrap();
        assert_eq!(bad.attempts, 1);
        match &bad.status {
            ScenarioStatus::Failed { panic } => {
                assert!(panic.contains("radius"), "panic text: {panic}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(bad.outcome.is_none());
        for name in ["a", "b"] {
            let good = report.records.iter().find(|r| r.name == name).unwrap();
            assert!(good.status.is_ok());
            assert!(good.outcome.is_some());
        }
        // The failed record is typed JSONL with a panic field.
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let line = text.lines().find(|l| l.contains("\"boom\"")).unwrap();
        assert!(line.contains("\"status\":\"failed\""), "{line}");
        assert!(line.contains("\"panic\":\""), "{line}");
        assert!(line.contains("\"overall\":null"), "{line}");
    }

    #[test]
    fn strict_mode_stops_at_the_first_failure() {
        let set = BatchSet::from_entries(
            vec![entry("a", 11), poisoned("boom"), entry("b", 22)],
            None,
        )
        .unwrap();
        let mut sink = WriteSink::new(Vec::new());
        let config = RunConfig {
            strict: true,
            ..RunConfig::default()
        };
        let report = set.run_with(&Runner::serial(), &mut sink, &config).unwrap();
        assert!(report.strict_aborted);
        assert!(!report.all_ok());
        // `a` may share the failing wave, but `b` never runs.
        assert!(report.records.iter().all(|r| r.name != "b"));
        assert!(report
            .records
            .iter()
            .any(|r| matches!(r.status, ScenarioStatus::Failed { .. })));
    }

    #[test]
    fn zero_timeout_times_every_scenario_out_deterministically() {
        let mut policy_entry = entry("looped", 5);
        policy_entry.saved.policy = Some(PolicyChoice::Static { rounds: 2 });
        let set = BatchSet::from_entries(vec![entry("a", 11), policy_entry], None).unwrap();
        let mut sink = WriteSink::new(Vec::new());
        let config = RunConfig {
            timeout: Some(Duration::ZERO),
            ..RunConfig::default()
        };
        let report = set.run_with(&Runner::serial(), &mut sink, &config).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.timed_out(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            text.lines()
                .filter(|l| l.contains("\"status\":\"timeout\""))
                .count(),
            2
        );
    }

    #[test]
    fn journal_resume_skips_completed_scenarios_and_reruns_changed_ones() {
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("wsn_batch_resume_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal);

        let runner = Runner::serial();
        let config = RunConfig {
            journal: Some(journal.clone()),
            ..RunConfig::default()
        };
        let set = BatchSet::from_entries(vec![entry("a", 11), entry("b", 22)], None).unwrap();
        let mut sink = WriteSink::new(Vec::new());
        let first = set.run_with(&runner, &mut sink, &config).unwrap();
        assert!(first.all_ok());

        // Resume with nothing changed: everything skips, nothing re-runs.
        let resume = RunConfig {
            resume: true,
            ..config.clone()
        };
        let mut sink = WriteSink::new(Vec::new());
        let second = set.run_with(&runner, &mut sink, &resume).unwrap();
        assert_eq!(second.skipped, 2);
        assert_eq!(second.records.len(), 0);
        assert_eq!(second.jobs, 0);

        // Change one scenario's config: only it re-runs, bit-identical to
        // a fresh standalone run.
        let changed = BatchSet::from_entries(vec![entry("a", 11), entry("b", 23)], None).unwrap();
        let mut sink = WriteSink::new(Vec::new());
        let third = changed.run_with(&runner, &mut sink, &resume).unwrap();
        assert_eq!(third.skipped, 1);
        assert_eq!(third.records.len(), 1);
        assert_eq!(third.records[0].name, "b");
        let alone = changed.effective_scenario(&changed.entries()[1]).run(&runner);
        assert_eq!(
            third.records[0].outcome.as_ref().unwrap().overall.mean_node_power,
            alone.overall.mean_node_power
        );
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn resume_reruns_previously_failed_scenarios() {
        let dir = std::env::temp_dir();
        let journal = dir.join(format!("wsn_batch_refail_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&journal);

        let runner = Runner::serial();
        let config = RunConfig {
            journal: Some(journal.clone()),
            ..RunConfig::default()
        };
        let set = BatchSet::from_entries(vec![poisoned("boom")], None).unwrap();
        let mut sink = WriteSink::new(Vec::new());
        let first = set.run_with(&runner, &mut sink, &config).unwrap();
        assert_eq!(first.failed(), 1);

        // A failed record is never skippable: the same scenario re-runs.
        let resume = RunConfig {
            resume: true,
            ..config
        };
        let mut sink = WriteSink::new(Vec::new());
        let second = set.run_with(&runner, &mut sink, &resume).unwrap();
        assert_eq!(second.skipped, 0);
        assert_eq!(second.records.len(), 1);
        assert_eq!(second.failed(), 1);
        std::fs::remove_file(&journal).unwrap();
    }
}
