//! Closed-loop adaptive channel assignment: the policy layer.
//!
//! The scenario pipeline (scenario → config → runner → accumulator) is
//! open-loop: an experiment is described once, executed once, reduced
//! once. This module closes the loop. A [`PolicyEngine`] runs a
//! [`Scenario`] in **rounds**: each round
//!
//! 1. compiles the current node→channel assignment into per-channel
//!    configs ([`Scenario::compile_assignment`], with per-round contention
//!    seeds and any per-channel BER/loss asymmetry),
//! 2. executes the full channels × replications grid on the deterministic
//!    parallel [`Runner`] and reduces it into a [`ScenarioOutcome`],
//! 3. feeds the per-channel [`NetworkSummary`]s (failure rate, mean node
//!    power, delay, transaction counts) to a pluggable
//!    [`AllocationPolicy`], which emits the assignment for the next round.
//!
//! The loop records every round in a [`PolicyTrace`] — assignment, moved
//! nodes, the full outcome, wall-clock — so convergence (rounds to
//! stabilize, per-round worst-channel failure, the total-energy
//! trajectory) is a first-class result. Traces from independent engine
//! runs (different master seeds) reduce exactly through
//! [`PolicyTraceAccumulator`], the same merge algebra as every other
//! accumulator in this crate.
//!
//! ## Determinism
//!
//! Every policy decision is a pure function of the round's summaries, and
//! every summary is bit-identical for every thread count (the runner's
//! guarantee), so the whole closed loop — assignments, moved counts,
//! summaries, convergence round — is **bit-identical for 1, 2 and 4+
//! worker threads**. `runner_determinism` pins this.
//!
//! ## Shipped policies
//!
//! * [`StaticAllocation`] — the open-loop baseline: never moves a node.
//! * [`GreedyRebalance`] — moves nodes off the worst-failure channel onto
//!   the best one, a bounded number per round. On the ring-stratified
//!   scenarios (where outer channels saturate first, exactly as the
//!   paper's dense-network analysis predicts) this strictly lowers the
//!   worst channel's failure rate by relieving its contention load.
//! * [`ProportionalFair`] — re-targets every channel's node count
//!   proportionally to the inverse of its observed failure rate, subject
//!   to each channel's load capacity.
//!
//! Policies reassign whole nodes between channels; they never see node
//! identities beyond indices (link-level adaptation stays the transmit
//! power policy's job), which keeps them implementable on a real
//! coordinator from per-channel statistics alone.

use crate::network::NetworkSummary;
use crate::runner::Runner;
use crate::scenario::{AssignmentCache, Scenario, ScenarioOutcome};
use crate::stats::{Accumulator, Counter, Extrema};

/// What a policy sees at the end of a round.
#[derive(Debug)]
pub struct RoundObservation<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Number of channels.
    pub channels: usize,
    /// The node→channel assignment this round ran with.
    pub assignment: &'a [usize],
    /// Per-channel capacity: the most nodes each channel can hold while
    /// keeping its load under the engine's cap, floored at the initial
    /// allocation (a channel that *started* over the cap is not the
    /// policy's fault, but policies may not grow it further). Policies
    /// must respect it.
    pub capacity: &'a [usize],
    /// Per-channel summaries of this round, in channel order.
    pub per_channel: &'a [NetworkSummary],
}

impl RoundObservation<'_> {
    /// Nodes currently assigned to each channel.
    pub fn counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.channels];
        for &c in self.assignment {
            counts[c] += 1;
        }
        counts
    }

    /// Observed failure ratio of channel `c`.
    pub fn failure(&self, c: usize) -> f64 {
        self.per_channel[c].failure_ratio.value()
    }

    /// Mean per-node power channel `c` spent on contention-free traffic
    /// (GTS + downlink), in µW — the CFP load signal energy-aware
    /// policies can react to.
    pub fn cfp_power_uw(&self, c: usize) -> f64 {
        self.per_channel[c].cfp_power.microwatts()
    }

    /// Mean per-node power channel `c` spent on CAP traffic, in µW.
    pub fn cap_power_uw(&self, c: usize) -> f64 {
        self.per_channel[c].cap_power.microwatts()
    }

    /// Fraction of channel `c`'s traffic power that is contention-free —
    /// 0 for CAP-only channels, approaching 1 when GTS and downlink
    /// dominate.
    pub fn cfp_share(&self, c: usize) -> f64 {
        let cap = self.cap_power_uw(c);
        let cfp = self.cfp_power_uw(c);
        if cap + cfp > 0.0 {
            cfp / (cap + cfp)
        } else {
            0.0
        }
    }

    /// GTS requests channel `c` denied at compile time (nodes that fell
    /// back to CAP), summed over the round's merged runs.
    pub fn gts_denied(&self, c: usize) -> u64 {
        self.per_channel[c].gts_denied
    }

    /// Node deaths channel `c` suffered this round (fault churn) — the
    /// churn signal: a channel bleeding nodes delivers fewer packets at
    /// the same compiled load.
    pub fn deaths(&self, c: usize) -> u64 {
        self.per_channel[c].deaths
    }

    /// Orphan-scan windows channel `c` logged this round — the outage
    /// signal: alive nodes waking into missing beacons.
    pub fn orphan_scans(&self, c: usize) -> u64 {
        self.per_channel[c].orphan_scans
    }

    /// Fraction of channel `c`'s re-association exchanges that failed.
    pub fn join_failure(&self, c: usize) -> f64 {
        self.per_channel[c].join_failure_ratio.value()
    }

    /// Nodes of channel `c` that exhausted their join-retry budget and
    /// stayed dormant.
    pub fn dormant_nodes(&self, c: usize) -> u64 {
        self.per_channel[c].dormant_nodes
    }

    /// Deaths summed over all channels this round.
    pub fn total_deaths(&self) -> u64 {
        self.per_channel.iter().map(|s| s.deaths).sum()
    }

    /// Channel with the highest failure ratio (lowest index on ties).
    pub fn worst_channel(&self) -> usize {
        (0..self.channels)
            .max_by(|&a, &b| self.failure(a).total_cmp(&self.failure(b)).then(b.cmp(&a)))
            .expect("at least one channel")
    }

    /// Channel with the lowest failure ratio (lowest index on ties).
    pub fn best_channel(&self) -> usize {
        (0..self.channels)
            .min_by(|&a, &b| self.failure(a).total_cmp(&self.failure(b)).then(a.cmp(&b)))
            .expect("at least one channel")
    }
}

/// A channel-assignment feedback policy: observes one round, emits the
/// next round's node→channel assignment.
///
/// Implementations must be deterministic functions of the observation (and
/// their own state): the engine's bit-identical-across-threads guarantee
/// is only as good as the policy's determinism.
pub trait AllocationPolicy {
    /// Short policy name, for traces and experiment logs.
    fn name(&self) -> &str;

    /// The assignment for the next round. Return the current assignment
    /// (e.g. `obs.assignment.to_vec()`) to signal stability.
    fn next_assignment(&mut self, obs: &RoundObservation<'_>) -> Vec<usize>;
}

/// The open-loop baseline: the initial allocation, forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAllocation;

impl AllocationPolicy for StaticAllocation {
    fn name(&self) -> &str {
        "static"
    }

    fn next_assignment(&mut self, obs: &RoundObservation<'_>) -> Vec<usize> {
        obs.assignment.to_vec()
    }
}

/// Moves up to `max_moves` nodes per round from the worst-failure channel
/// to the best-failure channel, while the failure gap exceeds
/// `tolerance`. Node choice is by index (highest first) — deterministic,
/// and all a coordinator could do from channel-level statistics.
#[derive(Debug, Clone, Copy)]
pub struct GreedyRebalance {
    /// Most nodes moved per round.
    pub max_moves: usize,
    /// Minimum worst-to-best failure gap that still triggers a move;
    /// below it the policy declares itself stable.
    pub tolerance: f64,
    /// Hysteresis cost per executed move: every round the policy moves
    /// nodes, the acting tolerance grows by `move_cost`, so late, noisy
    /// worst↔best churn needs an ever-larger failure gap to keep going —
    /// the ε-damping that makes greedy settle near convergence instead
    /// of trading nodes between the two best channels forever. Zero (the
    /// default) reproduces the undamped policy exactly.
    pub move_cost: f64,
    /// Accumulated hysteresis (`move_cost` × executed move rounds).
    damping: f64,
}

impl GreedyRebalance {
    /// A rebalancer moving up to `max_moves` nodes per round at the
    /// default 2 % failure-gap tolerance.
    pub fn new(max_moves: usize) -> Self {
        GreedyRebalance {
            max_moves,
            tolerance: 0.02,
            move_cost: 0.0,
            damping: 0.0,
        }
    }

    /// Overrides the failure-gap tolerance below which the policy
    /// declares itself stable.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Adds a per-move hysteresis cost: after `k` rounds that moved
    /// nodes, a further move must beat `tolerance + k·move_cost`. Early
    /// rounds (large failure gaps) rebalance freely; the growing margin
    /// then damps the residual worst↔best oscillation driven by
    /// round-to-round contention noise, so the loop actually stabilizes
    /// (the `tolerance` seam, ε-damped).
    pub fn with_move_cost(mut self, move_cost: f64) -> Self {
        self.move_cost = move_cost;
        self
    }
}

impl Default for GreedyRebalance {
    fn default() -> Self {
        GreedyRebalance::new(4)
    }
}

impl AllocationPolicy for GreedyRebalance {
    fn name(&self) -> &str {
        "greedy-rebalance"
    }

    fn next_assignment(&mut self, obs: &RoundObservation<'_>) -> Vec<usize> {
        let mut next = obs.assignment.to_vec();
        let worst = obs.worst_channel();
        let best = obs.best_channel();
        // Every executed move raised the bar: near convergence the
        // worst/best gap is contention noise, and without the growing
        // margin greedy trades the same nodes back and forth forever.
        let threshold = self.tolerance + self.damping;
        if worst == best || obs.failure(worst) - obs.failure(best) <= threshold {
            return next;
        }
        let counts = obs.counts();
        // Keep the donor populated and the recipient under capacity.
        let moves = self
            .max_moves
            .min(counts[worst].saturating_sub(1))
            .min(obs.capacity[best].saturating_sub(counts[best]));
        let mut remaining = moves;
        for c in next.iter_mut().rev() {
            if remaining == 0 {
                break;
            }
            if *c == worst {
                *c = best;
                remaining -= 1;
            }
        }
        if moves > 0 {
            self.damping += self.move_cost;
        }
        next
    }
}

/// Re-targets each channel's node count proportionally to the inverse of
/// its observed failure ratio (`w_c = 1 / (Pr_fail,c + ε)`), clamped to
/// `[1, capacity_c]` — channels that fail less absorb more nodes. Surplus
/// channels release their highest-index nodes; deficit channels absorb
/// them in channel order.
#[derive(Debug, Clone, Copy)]
pub struct ProportionalFair {
    /// Failure-ratio smoothing ε: bounds the weight of a zero-failure
    /// channel and damps reactions to noisy observations.
    pub epsilon: f64,
}

impl Default for ProportionalFair {
    fn default() -> Self {
        ProportionalFair { epsilon: 0.05 }
    }
}

impl ProportionalFair {
    /// Per-channel target node counts: Hamilton-rounded proportional
    /// shares, then deterministically repaired to respect `[1, capacity]`
    /// while summing to the total node count.
    fn targets(&self, obs: &RoundObservation<'_>) -> Vec<usize> {
        let total = obs.assignment.len();
        let weights: Vec<f64> = (0..obs.channels)
            .map(|c| 1.0 / (obs.failure(c) + self.epsilon))
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let ideals: Vec<f64> = weights
            .iter()
            .map(|w| total as f64 * w / weight_sum)
            .collect();

        // Hamilton (largest remainder) rounding.
        let mut targets: Vec<usize> = ideals.iter().map(|x| x.floor() as usize).collect();
        let assigned: usize = targets.iter().sum();
        let mut order: Vec<usize> = (0..obs.channels).collect();
        order.sort_by(|&a, &b| {
            let ra = ideals[a] - ideals[a].floor();
            let rb = ideals[b] - ideals[b].floor();
            rb.total_cmp(&ra).then(a.cmp(&b))
        });
        for &c in order.iter().take(total - assigned) {
            targets[c] += 1;
        }

        // Clamp, then repair the sum deterministically.
        for c in 0..obs.channels {
            targets[c] = targets[c].clamp(1, obs.capacity[c].max(1));
        }
        loop {
            let sum: usize = targets.iter().sum();
            if sum == total {
                break;
            }
            if sum > total {
                // Shrink the most-populated shrinkable channel.
                let c = (0..obs.channels)
                    .filter(|&c| targets[c] > 1)
                    .max_by(|&a, &b| targets[a].cmp(&targets[b]).then(b.cmp(&a)))
                    .expect("some channel can shrink");
                targets[c] -= 1;
            } else {
                // Grow the best-weighted channel with headroom.
                let c = (0..obs.channels)
                    .filter(|&c| targets[c] < obs.capacity[c])
                    .max_by(|&a, &b| weights[a].total_cmp(&weights[b]).then(b.cmp(&a)))
                    .expect("total node count exceeds the channels' joint capacity");
                targets[c] += 1;
            }
        }
        targets
    }
}

impl AllocationPolicy for ProportionalFair {
    fn name(&self) -> &str {
        "proportional-fair"
    }

    fn next_assignment(&mut self, obs: &RoundObservation<'_>) -> Vec<usize> {
        let targets = self.targets(obs);
        let mut counts = obs.counts();
        let mut next = obs.assignment.to_vec();

        // Surplus channels release their highest-index nodes into a pool…
        let mut pool: Vec<usize> = Vec::new();
        for (node, &c) in next.iter().enumerate().rev() {
            if counts[c] > targets[c] {
                counts[c] -= 1;
                pool.push(node);
            }
        }
        // …which deficit channels absorb in node-index order.
        pool.reverse();
        let mut pool = pool.into_iter();
        for c in 0..obs.channels {
            while counts[c] < targets[c] {
                let node = pool.next().expect("pool balances the deficits");
                next[node] = c;
                counts[c] += 1;
            }
        }
        next
    }
}

/// One recorded round of the policy loop.
#[derive(Debug, Clone)]
pub struct PolicyRound {
    /// Round index (0-based).
    pub round: usize,
    /// The assignment this round ran with.
    pub assignment: Vec<usize>,
    /// Nodes the policy moved going *into the next* round (0 = stable).
    pub moved: usize,
    /// The round's full reduced outcome.
    pub outcome: ScenarioOutcome,
    /// Per-channel wall-clock in milliseconds (summed over replications).
    pub channel_wall_ms: Vec<f64>,
    /// Total wall-clock of the round's grid in milliseconds.
    pub wall_ms: f64,
}

impl PolicyRound {
    /// The round's worst-channel failure ratio.
    pub fn worst_failure(&self) -> f64 {
        self.outcome.worst_channel().1.failure_ratio.value()
    }
}

/// The complete record of one closed-loop run.
#[derive(Debug, Clone)]
pub struct PolicyTrace {
    /// The policy's name.
    pub policy: String,
    /// Every executed round, in order.
    pub rounds: Vec<PolicyRound>,
    /// The first round whose emitted assignment equaled its input — the
    /// loop is stable from here on. `None` if it never stabilized.
    pub converged_at: Option<usize>,
}

impl PolicyTrace {
    /// Rounds until the assignment stabilized (alias of
    /// [`converged_at`](Self::converged_at), the paper-facing name).
    pub fn rounds_to_stabilize(&self) -> Option<usize> {
        self.converged_at
    }

    /// The last executed round.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn final_round(&self) -> &PolicyRound {
        self.rounds.last().expect("at least one round")
    }

    /// Worst-channel failure ratio per round.
    pub fn worst_failure_trajectory(&self) -> Vec<f64> {
        self.rounds.iter().map(PolicyRound::worst_failure).collect()
    }

    /// Network-wide mean node power per round, in µW.
    pub fn power_trajectory_uw(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .map(|r| r.outcome.overall.mean_node_power.microwatts())
            .collect()
    }

    /// Network-wide total energy per round, in joules.
    pub fn energy_trajectory_j(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .map(|r| r.outcome.overall.ledger.total_energy().joules())
            .collect()
    }

    /// Total wall-clock across all rounds, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.rounds.iter().map(|r| r.wall_ms).sum()
    }

    /// Folds this trace into a mergeable accumulator.
    pub fn accumulate_into(&self, acc: &mut PolicyTraceAccumulator) {
        acc.record(self);
    }
}

/// Mergeable sufficient statistics of one round position, across traces.
#[derive(Debug, Clone, Default)]
pub struct RoundAccumulator {
    /// Worst-channel failure ratios observed at this round index.
    pub worst_failure: Accumulator,
    /// Exact min/max of those worst-channel failures.
    pub worst_failure_extrema: Extrema,
    /// Network-wide mean node power (µW) at this round index.
    pub power_uw: Accumulator,
    /// Network-wide total energy (J) at this round index.
    pub energy_j: Accumulator,
    /// Total nodes moved out of this round, summed over traces.
    pub moved: u64,
}

impl RoundAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RoundAccumulator::default()
    }

    /// Folds one trace's round into the statistics.
    pub fn record(&mut self, round: &PolicyRound) {
        let worst = round.worst_failure();
        self.worst_failure.push(worst);
        self.worst_failure_extrema.push(worst);
        self.power_uw
            .push(round.outcome.overall.mean_node_power.microwatts());
        self.energy_j
            .push(round.outcome.overall.ledger.total_energy().joules());
        self.moved += round.moved as u64;
    }

    /// Merges another accumulator into this one. Exact, and
    /// bit-deterministic when performed in a fixed order.
    pub fn merge(&mut self, other: &RoundAccumulator) {
        self.worst_failure.merge(&other.worst_failure);
        self.worst_failure_extrema
            .merge(&other.worst_failure_extrema);
        self.power_uw.merge(&other.power_uw);
        self.energy_j.merge(&other.energy_j);
        self.moved += other.moved;
    }
}

/// Mergeable reduction of [`PolicyTrace`]s from independent engine runs
/// (e.g. different scenario master seeds, or shards of a larger study):
/// per-round-position statistics plus convergence counters. Traces of
/// different lengths align by round index.
#[derive(Debug, Clone, Default)]
pub struct PolicyTraceAccumulator {
    /// Per-round-position statistics, indexed by round.
    pub rounds: Vec<RoundAccumulator>,
    /// Traces folded in.
    pub traces: u64,
    /// How many traces converged (assignment stabilized).
    pub converged: Counter,
    /// Convergence round of the traces that converged.
    pub rounds_to_stabilize: Accumulator,
}

impl PolicyTraceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        PolicyTraceAccumulator::default()
    }

    /// Folds one trace in.
    pub fn record(&mut self, trace: &PolicyTrace) {
        if self.rounds.len() < trace.rounds.len() {
            self.rounds
                .resize_with(trace.rounds.len(), RoundAccumulator::new);
        }
        for (acc, round) in self.rounds.iter_mut().zip(&trace.rounds) {
            acc.record(round);
        }
        self.traces += 1;
        self.converged.observe(trace.converged_at.is_some());
        if let Some(round) = trace.converged_at {
            self.rounds_to_stabilize.push(round as f64);
        }
    }

    /// Merges another accumulator into this one. Exact for the counters
    /// and extrema, Chan-et-al exact for the means; bit-deterministic when
    /// performed in a fixed order.
    pub fn merge(&mut self, other: &PolicyTraceAccumulator) {
        if self.rounds.len() < other.rounds.len() {
            self.rounds
                .resize_with(other.rounds.len(), RoundAccumulator::new);
        }
        for (acc, shard) in self.rounds.iter_mut().zip(&other.rounds) {
            acc.merge(shard);
        }
        self.traces += other.traces;
        self.converged.merge(&other.converged);
        self.rounds_to_stabilize.merge(&other.rounds_to_stabilize);
    }
}

/// The closed-loop driver: runs a scenario in rounds, feeding each round's
/// per-channel summaries to an [`AllocationPolicy`].
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    /// The scenario being controlled. Its [`ChannelAllocation`]
    /// (via [`Scenario::initial_assignment`]) seeds the loop; its
    /// replication count applies per round.
    ///
    /// [`ChannelAllocation`]: crate::scenario::ChannelAllocation
    pub scenario: Scenario,
    /// Maximum rounds to execute.
    pub rounds: usize,
    /// Load cap per channel: policies may not push any channel's load
    /// beyond this (capacity = the node count reaching it).
    pub max_load: f64,
    /// Stop as soon as the policy emits an unchanged assignment.
    pub stop_when_stable: bool,
}

impl PolicyEngine {
    /// An engine over `scenario` with 8 rounds, a 0.95 load cap and
    /// early-stop on stability.
    pub fn new(scenario: Scenario) -> Self {
        PolicyEngine {
            scenario,
            rounds: 8,
            max_load: 0.95,
            stop_when_stable: true,
        }
    }

    /// Overrides the round budget.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Overrides the per-channel load cap.
    pub fn with_max_load(mut self, max_load: f64) -> Self {
        self.max_load = max_load;
        self
    }

    /// Keeps running the full round budget even after stabilizing (useful
    /// when round positions must align across policies for comparison).
    pub fn run_all_rounds(mut self) -> Self {
        self.stop_when_stable = false;
        self
    }

    /// Per-channel node capacities under the engine's load cap.
    pub fn capacities(&self) -> Vec<usize> {
        (0..self.scenario.channels)
            .map(|c| self.scenario.channel_capacity(c, self.max_load))
            .collect()
    }

    /// Runs the closed loop. Bit-identical for every thread count of
    /// `runner` (timing fields aside, which never feed back).
    ///
    /// When the scenario carries a [`FaultPlan`](crate::faults::FaultPlan)
    /// with round-level dynamics, each round is perturbed before
    /// compilation: the loss drift (a deterministic triangle wave over the
    /// drift period) shifts every node's path loss, and burst rounds raise
    /// every channel's downlink rate (clamped to 1). Round 0 is always
    /// unperturbed, and an inert plan leaves every round byte-identical to
    /// the fault-free loop.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero or the policy emits a structurally
    /// invalid assignment (wrong length, channel out of range, an emptied
    /// or over-capacity channel).
    pub fn run<P: AllocationPolicy + ?Sized>(
        &self,
        runner: &Runner,
        policy: &mut P,
    ) -> PolicyTrace {
        assert!(self.rounds > 0, "at least one round required");
        let scenario = &self.scenario;
        // The physical population and the per-channel BER models are fixed
        // across rounds; pay for the deployment geometry and the model
        // resolution once, not once per round.
        let losses = scenario.population_losses();
        let bers: Vec<_> = (0..scenario.channels)
            .map(|c| scenario.channel_ber(c).model())
            .collect();
        let mut assignment = scenario.initial_assignment();
        // Floor each capacity at the initial allocation: a scenario whose
        // static split already exceeds the load cap must still run (the
        // engine produced that assignment itself) — policies just may not
        // grow such a channel further.
        let mut capacities = self.capacities();
        let mut initial_counts = vec![0usize; scenario.channels];
        for &c in &assignment {
            initial_counts[c] += 1;
        }
        for (cap, &count) in capacities.iter_mut().zip(&initial_counts) {
            *cap = (*cap).max(count);
        }
        let mut rounds: Vec<PolicyRound> = Vec::with_capacity(self.rounds);
        let mut converged_at = None;

        let fplan = scenario.faults;
        let mut drifted: Vec<wsn_units::Db> = Vec::new();
        // Per-drift corruption caches: the BER/loss math depends only on
        // the (possibly drifted) population losses, so rounds sharing a
        // drift value — round 0 and every on-period round of the triangle
        // wave — reuse one full-population table and skip the per-node
        // packet-error derivation entirely. `None` values record that the
        // scenario's policy is uncacheable (explicit per-node levels).
        let mut corruption_caches: std::collections::HashMap<u64, Option<AssignmentCache>> =
            std::collections::HashMap::new();
        for round in 0..self.rounds {
            // Round-level fault dynamics: drift the whole population's
            // path losses, then storm the downlink on burst rounds. Both
            // are pure functions of the round index — no RNG — so the
            // loop stays bit-deterministic, and both are exact no-ops on
            // an inert plan (round 0 always drifts by zero).
            let drift_db = fplan.loss_drift_db(round as u32);
            let round_losses: &[wsn_units::Db] = if drift_db != 0.0 {
                drifted.clear();
                drifted.extend(losses.iter().map(|&l| l + wsn_units::Db::new(drift_db)));
                &drifted
            } else {
                &losses
            };
            let cache = corruption_caches
                .entry(drift_db.to_bits())
                .or_insert_with(|| scenario.assignment_cache(round_losses, &bers));
            let mut configs = scenario.compile_assignment_cached(
                round_losses,
                &assignment,
                round as u64,
                cache.as_ref(),
            );
            let boost = fplan.downlink_boost(round as u32);
            if boost > 0.0 {
                for cfg in &mut configs {
                    cfg.channel.cfp.downlink_rate =
                        (cfg.channel.cfp.downlink_rate + boost).min(1.0);
                }
            }
            let timed = scenario.run_grid(runner, &configs, &bers);
            // The last budgeted round has no successor to run a new
            // assignment in — don't consult the policy, and record no
            // (phantom) moves.
            let next = if round + 1 < self.rounds {
                policy.next_assignment(&RoundObservation {
                    round,
                    channels: scenario.channels,
                    assignment: &assignment,
                    capacity: &capacities,
                    per_channel: &timed.outcome.per_channel,
                })
            } else {
                assignment.clone()
            };
            Self::validate(&next, &assignment, &capacities, scenario.channels);
            let moved = next.iter().zip(&assignment).filter(|(a, b)| a != b).count();
            rounds.push(PolicyRound {
                round,
                assignment: assignment.clone(),
                moved,
                outcome: timed.outcome,
                channel_wall_ms: timed.channel_wall_ms,
                wall_ms: timed.wall_ms,
            });
            if crate::telemetry::enabled() {
                // Convergence signal: |Δ worst-channel failure| between
                // consecutive rounds, in permille. Derived from already-
                // deterministic outcomes, so it stays in the deterministic
                // section; only the round wall is timing data.
                let n = rounds.len();
                let delta_permille = (n >= 2).then(|| {
                    let delta =
                        (rounds[n - 1].worst_failure() - rounds[n - 2].worst_failure()).abs();
                    (delta * 1000.0).round() as u64
                });
                crate::telemetry::note_policy_round(
                    moved as u64,
                    delta_permille,
                    rounds[n - 1].wall_ms,
                );
            }
            if round + 1 >= self.rounds {
                break;
            }
            if moved == 0 {
                if converged_at.is_none() {
                    converged_at = Some(round);
                }
                if self.stop_when_stable {
                    break;
                }
            } else {
                converged_at = None;
                assignment = next;
            }
        }

        PolicyTrace {
            policy: policy.name().to_string(),
            rounds,
            converged_at,
        }
    }

    fn validate(next: &[usize], current: &[usize], capacities: &[usize], channels: usize) {
        assert_eq!(next.len(), current.len(), "policy changed the node count");
        let mut counts = vec![0usize; channels];
        for (node, &c) in next.iter().enumerate() {
            assert!(c < channels, "policy sent node {node} to channel {c}");
            counts[c] += 1;
        }
        for (c, &count) in counts.iter().enumerate() {
            assert!(count > 0, "policy emptied channel {c}");
            assert!(
                count <= capacities[c],
                "policy overloaded channel {c}: {count} nodes > capacity {}",
                capacities[c]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DeploymentSpec;
    use wsn_units::{Power, Probability, Seconds};

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::new(
            "policy probe",
            3,
            8,
            DeploymentSpec::UniformLossGrid {
                min_db: 60.0,
                max_db: 85.0,
            },
        );
        s.superframes = 4;
        s
    }

    fn summary_with_failure(failure: f64, transactions: u64) -> NetworkSummary {
        NetworkSummary {
            mean_node_power: Power::from_microwatts(200.0),
            node_powers: Vec::new(),
            ledger: Default::default(),
            failure_ratio: Probability::clamped(failure),
            transactions,
            mean_delay: Seconds::from_secs(1.0),
            mean_attempts: 1.0,
            energy_per_bit_nj: 100.0,
            replications: 1,
            power_standard_error: Power::from_microwatts(0.0),
            failure_standard_error: 0.0,
            delay_standard_error: Seconds::ZERO,
            cap_power: Power::from_microwatts(180.0),
            cfp_power: Power::from_microwatts(0.0),
            cap_power_standard_error: Power::from_microwatts(0.0),
            cfp_power_standard_error: Power::from_microwatts(0.0),
            gts_transactions: 0,
            gts_failure_ratio: Probability::ZERO,
            gts_denied: 0,
            downlink_polls: 0,
            downlink_failure_ratio: Probability::ZERO,
            downlink_deferred: 0,
            deaths: 0,
            orphan_scans: 0,
            join_attempts: 0,
            join_failure_ratio: Probability::ZERO,
            mean_reassociation_delay: Seconds::ZERO,
            dormant_nodes: 0,
            energy_per_delivered_packet_uj: 50.0,
        }
    }

    fn observation<'a>(
        assignment: &'a [usize],
        capacity: &'a [usize],
        per_channel: &'a [NetworkSummary],
    ) -> RoundObservation<'a> {
        RoundObservation {
            round: 0,
            channels: per_channel.len(),
            assignment,
            capacity,
            per_channel,
        }
    }

    #[test]
    fn static_policy_never_moves() {
        let assignment = [0, 1, 2, 0, 1, 2];
        let capacity = [10, 10, 10];
        let summaries: Vec<NetworkSummary> =
            [0.9, 0.1, 0.5].map(|f| summary_with_failure(f, 100)).into();
        let next =
            StaticAllocation.next_assignment(&observation(&assignment, &capacity, &summaries));
        assert_eq!(next, assignment);
    }

    #[test]
    fn greedy_moves_highest_index_nodes_worst_to_best() {
        let assignment = [0, 0, 0, 0, 1, 1, 2, 2];
        let capacity = [10, 10, 10];
        let summaries: Vec<NetworkSummary> = [0.8, 0.05, 0.3]
            .map(|f| summary_with_failure(f, 100))
            .into();
        let mut policy = GreedyRebalance::new(2);
        let next = policy.next_assignment(&observation(&assignment, &capacity, &summaries));
        // The two highest-index channel-0 nodes (3, 2) moved to channel 1.
        assert_eq!(next, [0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn greedy_respects_capacity_and_keeps_donor_populated() {
        let assignment = [0, 0, 1, 1];
        let capacity = [10, 3, 10];
        let summaries: Vec<NetworkSummary> =
            [0.9, 0.0, 0.5].map(|f| summary_with_failure(f, 100)).into();
        let mut policy = GreedyRebalance::new(8);
        let next = policy.next_assignment(&observation(&assignment, &capacity, &summaries));
        // Channel 1 holds 2 and caps at 3 → one move only; donor keeps one.
        assert_eq!(next, [0, 1, 1, 1]);
    }

    #[test]
    fn greedy_stabilizes_inside_tolerance() {
        let assignment = [0, 0, 1, 1, 2, 2];
        let capacity = [10, 10, 10];
        let summaries: Vec<NetworkSummary> = [0.21, 0.20, 0.21]
            .map(|f| summary_with_failure(f, 100))
            .into();
        let mut policy = GreedyRebalance::new(4);
        let next = policy.next_assignment(&observation(&assignment, &capacity, &summaries));
        assert_eq!(next, assignment, "a 1 % gap is inside the 2 % tolerance");
    }

    #[test]
    fn move_cost_damps_oscillation_near_convergence() {
        let capacity = [10, 10];
        // Round 1: channel 0 fails worse → move one node 0 → 1.
        let a1 = [0, 0, 0, 1, 1];
        let s1: Vec<NetworkSummary> = [0.30, 0.20].map(|f| summary_with_failure(f, 100)).into();
        // Round 2: the move overshot slightly — channel 1 now looks worse
        // by a small (noise-level) gap. Undamped greedy churns back;
        // damped greedy has raised its bar and holds.
        let a2 = [0, 0, 1, 1, 1];
        let s2: Vec<NetworkSummary> = [0.20, 0.24].map(|f| summary_with_failure(f, 100)).into();

        let mut undamped = GreedyRebalance::new(1).with_tolerance(0.0);
        let mut damped = undamped.with_move_cost(0.1);

        let n1 = undamped.next_assignment(&observation(&a1, &capacity, &s1));
        assert_eq!(n1, a2, "round 1 moves the highest-index donor node");
        let n1d = damped.next_assignment(&observation(&a1, &capacity, &s1));
        assert_eq!(n1d, a2, "damping never blocks the first move");

        let n2 = undamped.next_assignment(&observation(&a2, &capacity, &s2));
        assert_eq!(n2, [0, 0, 1, 1, 0], "undamped greedy churns on noise");
        let n2d = damped.next_assignment(&observation(&a2, &capacity, &s2));
        assert_eq!(n2d, a2, "a noise-level gap fails the raised bar");

        // A gap that clears tolerance + accumulated damping still moves.
        let s3: Vec<NetworkSummary> = [0.10, 0.40].map(|f| summary_with_failure(f, 100)).into();
        let n3d = damped.next_assignment(&observation(&a2, &capacity, &s3));
        assert_eq!(n3d, [0, 0, 1, 1, 0], "a real gap overrides the damping");
    }

    #[test]
    fn zero_move_cost_reproduces_the_undamped_policy() {
        let capacity = [10, 10, 10];
        let assignment = [0, 0, 0, 0, 1, 1, 2, 2];
        let summaries: Vec<NetworkSummary> = [0.8, 0.05, 0.3]
            .map(|f| summary_with_failure(f, 100))
            .into();
        let mut plain = GreedyRebalance::new(2);
        let mut zero = GreedyRebalance::new(2).with_move_cost(0.0);
        for _ in 0..3 {
            assert_eq!(
                plain.next_assignment(&observation(&assignment, &capacity, &summaries)),
                zero.next_assignment(&observation(&assignment, &capacity, &summaries))
            );
        }
    }

    #[test]
    fn proportional_fair_targets_follow_inverse_failure() {
        let assignment: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let capacity = [20, 20, 20];
        let summaries: Vec<NetworkSummary> = [0.45, 0.0, 0.45]
            .map(|f| summary_with_failure(f, 100))
            .into();
        let policy = ProportionalFair::default();
        let targets = policy.targets(&observation(&assignment, &capacity, &summaries));
        assert_eq!(targets.iter().sum::<usize>(), 12);
        // The clean channel absorbs the most nodes; the lossy pair tie.
        assert!(targets[1] > targets[0]);
        assert_eq!(targets[0], targets[2]);
    }

    #[test]
    fn proportional_fair_preserves_population_and_caps() {
        let assignment: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let capacity = [12, 12, 12];
        let summaries: Vec<NetworkSummary> = [0.9, 0.01, 0.3]
            .map(|f| summary_with_failure(f, 100))
            .into();
        let mut policy = ProportionalFair::default();
        let next = policy.next_assignment(&observation(&assignment, &capacity, &summaries));
        assert_eq!(next.len(), 30);
        let mut counts = [0usize; 3];
        for &c in &next {
            counts[c] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 30);
        for (c, &count) in counts.iter().enumerate() {
            assert!(count >= 1 && count <= capacity[c], "channel {c}: {count}");
        }
        // Best channel fills to its cap (30 nodes over 36 capacity).
        assert_eq!(counts[1], 12);
    }

    #[test]
    fn engine_static_converges_in_round_zero() {
        let engine = PolicyEngine::new(tiny_scenario()).with_rounds(4);
        let trace = engine.run(&Runner::serial(), &mut StaticAllocation);
        assert_eq!(trace.converged_at, Some(0));
        assert_eq!(trace.rounds.len(), 1, "early stop on stability");
        assert_eq!(trace.final_round().moved, 0);
    }

    #[test]
    fn engine_runs_all_rounds_when_asked() {
        let engine = PolicyEngine::new(tiny_scenario())
            .with_rounds(3)
            .run_all_rounds();
        let trace = engine.run(&Runner::serial(), &mut StaticAllocation);
        assert_eq!(trace.rounds.len(), 3);
        assert_eq!(trace.converged_at, Some(0));
        // Distinct per-round seeds → rounds are independent observations.
        assert_ne!(
            trace.rounds[0].outcome.overall.mean_node_power,
            trace.rounds[1].outcome.overall.mean_node_power
        );
    }

    #[test]
    fn engine_rounds_record_assignments_and_outcomes() {
        let engine = PolicyEngine::new(tiny_scenario()).with_rounds(4);
        let mut policy = GreedyRebalance::new(2);
        let trace = engine.run(&Runner::serial(), &mut policy);
        assert!(!trace.rounds.is_empty());
        for round in &trace.rounds {
            assert_eq!(round.assignment.len(), 24);
            assert_eq!(round.outcome.per_channel.len(), 3);
            assert_eq!(round.channel_wall_ms.len(), 3);
        }
        assert_eq!(trace.worst_failure_trajectory().len(), trace.rounds.len());
        assert_eq!(trace.energy_trajectory_j().len(), trace.rounds.len());
    }

    #[test]
    fn engine_accepts_scenarios_already_over_the_load_cap() {
        // 28 nodes at BO 3 → load ≈ 0.97: legal for the simulator but past
        // the engine's 0.95 policy cap. The engine floors capacities at
        // its own initial allocation, so the loop must run rather than
        // blame the policy for the starting point.
        let mut s = Scenario::new(
            "over-cap probe",
            2,
            28,
            DeploymentSpec::UniformLossGrid {
                min_db: 60.0,
                max_db: 80.0,
            },
        );
        s.beacon_order = wsn_mac::BeaconOrder::new(3).expect("BO 3 valid");
        s.superframes = 3;
        let engine = PolicyEngine::new(s).with_rounds(2).run_all_rounds();
        let static_trace = engine.run(&Runner::serial(), &mut StaticAllocation);
        assert_eq!(static_trace.rounds.len(), 2);
        let pf_trace = engine.run(&Runner::serial(), &mut ProportionalFair::default());
        assert_eq!(pf_trace.rounds.len(), 2);
    }

    #[test]
    fn final_round_records_no_phantom_moves() {
        // An aggressive rebalancer at a tight round budget: the last round
        // has no successor, so the policy is not consulted and its row
        // records zero moves.
        let engine = PolicyEngine::new(tiny_scenario())
            .with_rounds(2)
            .run_all_rounds();
        let trace = engine.run(&Runner::serial(), &mut GreedyRebalance::new(8));
        assert_eq!(trace.rounds.len(), 2);
        assert_eq!(trace.final_round().moved, 0);
    }

    #[test]
    fn trace_accumulator_counts_convergence() {
        let engine = PolicyEngine::new(tiny_scenario()).with_rounds(3);
        let mut acc = PolicyTraceAccumulator::new();
        for seed in [1u64, 2, 3] {
            let mut engine = engine.clone();
            engine.scenario = engine.scenario.with_seed(seed);
            engine
                .run(&Runner::serial(), &mut StaticAllocation)
                .accumulate_into(&mut acc);
        }
        assert_eq!(acc.traces, 3);
        assert_eq!(acc.converged.hits(), 3);
        assert_eq!(acc.rounds_to_stabilize.mean(), 0.0);
        assert_eq!(acc.rounds[0].worst_failure.count(), 3);
        assert!(acc.rounds[0].worst_failure_extrema.max() <= 1.0);
    }
}
