//! Deterministic discrete-event simulation of 802.15.4 channels and nodes.
//!
//! Two simulators are built on a shared deterministic core:
//!
//! * [`contention`] — a slot-grid Monte-Carlo simulation of the slotted
//!   CSMA/CA contention procedure on one channel. This regenerates the
//!   paper's Figure 6: mean contention duration `T̄_cont`, mean CCA count
//!   `N̄_CCA`, residual collision probability `Pr_col` and channel access
//!   failure probability `Pr_cf`, as functions of the network load λ and
//!   the packet duration.
//! * [`network`] — a full network energy simulation: the contention
//!   engine plus the paper's radio activation policy, per-node energy
//!   ledgers, BER-driven packet corruption and application-level retries.
//!   Used to cross-validate the analytical model (average power, Figure 9
//!   breakdowns, failure probability and delay).
//!
//! The engine models both superframe regimes: the contention access
//! period (slotted CSMA/CA) and, through [`cfp`], the contention-free
//! period — GTS holders transmitting in dedicated tail slots (allocated
//! through the real `wsn_mac` [`GtsRegistry`](wsn_mac::gts::GtsRegistry))
//! and indirect downlink traffic polled with CAP data requests. CFP
//! configuration rides on a [`CfpPlan`]; an inert plan is provably
//! invisible, and energy splits into CAP vs CFP components in every
//! [`NetworkSummary`].
//!
//! Robustness experiments ride on [`faults`]: a seed-deterministic
//! [`FaultPlan`] injects node churn (deaths, orphaning, bounded-retry
//! re-association through the `wsn_mac` association machinery),
//! coordinator outage windows, and per-round load/quality dynamics for
//! the policy loop. Like the CFP, an inert plan is provably invisible,
//! and fault event ordering is part of the determinism contract.
//!
//! Support modules: [`rng`] (seedable xoshiro256★★), [`events`] (a
//! deterministic calendar queue with O(1) push/pop and a pinned pop-order
//! contract), [`stats`] (mergeable accumulators and the
//! [`stats::ContentionStats`] exchange type), [`sink`] (streaming trace
//! reduction — the engine pushes records into a [`sink::TraceSink`]
//! instead of materializing `Vec`s), and [`runner`] (the deterministic
//! parallel replication/sweep runner). The engine's scratch — queue ring,
//! node array, corruption buffer — lives in a reusable per-thread
//! [`SimWorkspace`] ([`with_workspace`]): serial runs reuse one workspace
//! across entire sweeps and policy loops, and each parallel worker
//! allocates its scratch once per grid rather than once per job.
//!
//! ## The experiment pipeline: scenario → config → runner → accumulator
//!
//! Network experiments flow through four layers:
//!
//! 1. **[`scenario`]** — a [`scenario::Scenario`] declaratively describes
//!    the whole experiment: deployment geometry (uniform 55–95 dB
//!    population, disc, rings, per-channel clusters), node-to-channel
//!    allocation, per-channel traffic, CSMA/radio parameters, the BER
//!    model and the replication count;
//! 2. **config** — [`scenario::Scenario::compile`] lowers it into one
//!    [`NetworkConfig`] per channel, with per-channel loads and
//!    splitmix-derived seeds;
//! 3. **runner** — [`Runner`] executes the channels × replications grid
//!    on a scoped thread pool ([`Runner::sweep_network`],
//!    [`Runner::replicate_network`], [`scenario::Scenario::run`]),
//!    deriving each replication's seed from `(master, index)` only;
//! 4. **accumulator** — every run streams into a mergeable
//!    [`network::NetworkAccumulator`] (built on [`Accumulator`],
//!    [`Counter`] and `EnergyLedger::merge`); shards merge in a fixed
//!    order and finalize into [`NetworkSummary`] with replication-based
//!    standard errors.
//!
//! A fifth layer, [`policy`], closes the loop: a [`policy::PolicyEngine`]
//! re-runs a scenario in rounds, feeding each round's per-channel
//! summaries to a pluggable [`policy::AllocationPolicy`] that emits the
//! next round's node→channel assignment — adaptive channel assignment
//! evaluated entirely on the same deterministic pipeline.
//!
//! Scenarios are also **data**: [`persist`] saves and loads the full
//! [`scenario::Scenario`] surface (plus an optional policy choice) as
//! versioned, canonical JSON — the format-1 schema is documented key by
//! key in the repository's `SCHEMA.md` — and [`batch`] runs a directory
//! or manifest of saved scenarios as one deterministic job grid on a
//! shared worker pool, streaming per-scenario JSON result records.
//!
//! The batch service is a **fault-tolerant farm**: [`journal`] keeps an
//! fsync'd progress journal keyed by config fingerprint
//! ([`persist::fingerprint_scenario`]) so a killed run resumes exactly
//! where it stopped ([`batch::RunConfig::resume`]), records flow through
//! a retrying [`sink::ResultSink`] (plain writers via [`sink::WriteSink`],
//! or [`sink::TcpSink`] with bounded exponential backoff, write timeouts
//! and an on-disk overflow queue), and each scenario is isolated — a
//! panicking config or a wall-clock overrun becomes a typed
//! `"status":"failed"` / `"timeout"` record while the rest of the farm
//! keeps running ([`runner::Runner::map_catching`]). The journal and
//! record schemas — including the `status` field and the sink/backoff
//! knobs — are documented in `SCHEMA.md` alongside the scenario format.
//!
//! The whole stack is observable through [`telemetry`]: a process-wide,
//! dependency-free metrics registry (counters, gauges, log₂ histograms,
//! wall-clock spans) that the engine, runner, policy loop and farm feed
//! behind a single enable flag. Telemetry is **deterministically inert**:
//! it draws from no RNG stream, a metrics-enabled run is bit-identical on
//! every simulation output to a metrics-disabled one, and the
//! deterministic metric section itself is bit-identical across thread
//! counts (merges are commutative integer folds). Wall-clock data lives
//! in a separate timing section; the snapshot JSONL format is specified
//! in `SCHEMA.md` § OBSERVABILITY.
//!
//! Everything is reproducible: equal seeds give bit-identical traces, and
//! every parallel reduction — contention sweeps, network replications,
//! whole scenarios, closed policy loops — is bit-identical to the serial
//! path for every thread count.
//!
//! The same contract extends **within** a single huge channel:
//! [`NetworkSimulator::run_accumulate_sharded`] splits the per-node
//! energy accounting of one channel across spatial shards (contiguous
//! node-index ranges — spatial cells, since deployments lay indices out
//! by geometry). The contention physics stays on one thread (CCA couples
//! every node), each shard accrues only its own nodes' ledgers — a
//! per-node f64 sequence that is identical on any thread — and the shard
//! results are concatenated in **fixed shard order** before the single
//! serial finishing fold. Fixed shard order ⇒ the fold consumes the
//! node-ordered ledger list the serial path produces ⇒ bit-identity for
//! every shard count, exactly like the runner's thread-count contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cfp;
pub mod contention;
pub mod events;
pub mod faults;
pub mod journal;
pub mod network;
pub mod persist;
pub mod policy;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod sink;
pub mod stats;
pub mod telemetry;

pub use batch::{
    scenario_master_seed, BatchEntry, BatchError, BatchReport, BatchSet, RunConfig,
    ScenarioRecord, ScenarioStatus,
};
pub use journal::{
    load_journal, repair_jsonl_tail, JournalError, JournalLoad, JournalRecord, JournalWriter,
};
pub use persist::{
    fingerprint_scenario, load_scenario, save_scenario, ParseError, PolicyChoice, SaveError,
    SavedScenario,
};

pub use cfp::{plan_channel_cfp, CfpPlan, DownlinkOutcome, DownlinkRecord, GtsRecord};
pub use contention::{
    run_channel_sim_into, run_channel_sim_into_ws, simulate_contention, with_workspace,
    ChannelSimConfig, ConfigError, SimTrace, SimWorkspace, SlotTimings,
};
pub use events::WindowError;
pub use faults::{FaultKind, FaultPlan, FaultRecord};
pub use network::{
    NetworkAccumulator, NetworkConfig, NetworkReport, NetworkSimulator, NetworkSummary,
    TxPowerPolicy,
};
pub use policy::{
    AllocationPolicy, GreedyRebalance, PolicyEngine, PolicyTrace, PolicyTraceAccumulator,
    ProportionalFair, RoundObservation, StaticAllocation,
};
pub use rng::Xoshiro256StarStar;
pub use runner::{replication_seed, JobPanic, Runner, THREADS_ENV};
pub use scenario::{
    BerChoice, ChannelAllocation, DeploymentSpec, ResolvedBer, Scenario, ScenarioOutcome,
    TimedScenarioRun, TrafficSpec,
};
pub use sink::{
    ResultSink, SinkCounters, StatsSink, TcpSink, TraceCollector, TraceSink, WriteSink,
};
pub use stats::{Accumulator, ContentionAccumulator, ContentionStats, Counter, Extrema};
