//! Deterministic discrete-event simulation of 802.15.4 channels and nodes.
//!
//! Two simulators are built on a shared deterministic core:
//!
//! * [`contention`] — a slot-grid Monte-Carlo simulation of the slotted
//!   CSMA/CA contention procedure on one channel. This regenerates the
//!   paper's Figure 6: mean contention duration `T̄_cont`, mean CCA count
//!   `N̄_CCA`, residual collision probability `Pr_col` and channel access
//!   failure probability `Pr_cf`, as functions of the network load λ and
//!   the packet duration.
//! * [`network`] — a full uplink energy simulation: the contention engine
//!   plus the paper's radio activation policy, per-node energy ledgers,
//!   BER-driven packet corruption and application-level retries. Used to
//!   cross-validate the analytical model (average power, Figure 9
//!   breakdowns, failure probability and delay).
//!
//! Support modules: [`rng`] (seedable xoshiro256★★), [`events`] (a
//! deterministic event queue), [`stats`] (mergeable accumulators and the
//! [`stats::ContentionStats`] exchange type), [`sink`] (streaming trace
//! reduction — the engine pushes records into a [`sink::TraceSink`]
//! instead of materializing `Vec`s), and [`runner`] (the deterministic
//! parallel replication/sweep runner).
//!
//! Everything is reproducible: equal seeds give bit-identical traces, and
//! the parallel runner's merged statistics are bit-identical to the serial
//! path for every thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod events;
pub mod network;
pub mod rng;
pub mod runner;
pub mod sink;
pub mod stats;

pub use contention::{simulate_contention, ChannelSimConfig, SimTrace, SlotTimings};
pub use network::{NetworkConfig, NetworkReport, NetworkSimulator, NetworkSummary};
pub use rng::Xoshiro256StarStar;
pub use runner::{replication_seed, Runner, THREADS_ENV};
pub use sink::{StatsSink, TraceCollector, TraceSink};
pub use stats::{Accumulator, ContentionAccumulator, ContentionStats, Counter};
