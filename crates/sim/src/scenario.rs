//! Declarative network experiments: the scenario layer.
//!
//! A [`Scenario`] describes a whole multi-channel deployment — geometry,
//! node-to-channel allocation, traffic, CSMA and radio parameters, the BER
//! model, the transmit-power policy and the replication count — and
//! [compiles](Scenario::compile) into one [`NetworkConfig`] per channel.
//! [`Scenario::run`] then executes the full grid (channels ×
//! replications) on the deterministic parallel [`Runner`] and reduces the
//! per-run [`NetworkAccumulator`]s in a fixed order, so the outcome is
//! **bit-identical for every thread count**, like every other runner
//! reduction.
//!
//! The paper's §5 case study — 1600 nodes on 16 channels, path losses
//! uniform in 55–95 dB — is [`Scenario::paper_case_study`]; the other
//! deployment specs (uniform disc, concentric rings, per-channel
//! clusters) and the per-channel traffic spec open scenarios the paper
//! could not sweep, such as ring-stratified path loss and heterogeneous
//! loads.
//!
//! Pipeline: **scenario → per-channel configs → runner grid → merged
//! accumulators → per-channel + overall summaries.**

use std::sync::Arc;
use std::time::Instant;

use wsn_channel::{
    assignment_partition, shadowed_population, Deployment, LogDistance, LogNormalShadowing,
    UniformPathLossPopulation,
};
use wsn_mac::csma::CsmaParams;
use wsn_mac::{BeaconOrder, RetryPolicy};
use wsn_phy::ber::{BerModel, EmpiricalCc2420Ber, HardDecisionDsssBer, StandardOqpskBer};
use wsn_phy::frame::PacketLayout;
use wsn_phy::noise::SplitMix64;
use wsn_radio::RadioModel;
use wsn_units::{DBm, Db, Meters, Seconds};

use crate::cfp::{plan_channel_cfp, CfpPlan};
use crate::contention::ChannelSimConfig;
use crate::faults::FaultPlan;
use crate::network::{
    corruption_probability, NetworkAccumulator, NetworkConfig, NetworkSimulator, NetworkSummary,
    TxPowerPolicy,
};
use crate::runner::{replication_seed, Runner};

/// Where the nodes are, physically — compiled into per-node path losses.
#[derive(Debug, Clone, PartialEq)]
pub enum DeploymentSpec {
    /// The paper's abstract population: every channel's losses form the
    /// deterministic midpoint grid of a uniform distribution over
    /// `[min_db, max_db]`. Geometry-free; the
    /// [`ChannelAllocation`] is irrelevant for this spec.
    UniformLossGrid {
        /// Lower loss bound in dB.
        min_db: f64,
        /// Upper loss bound in dB.
        max_db: f64,
    },
    /// Nodes uniform (by area) in a disc, log-distance path loss with the
    /// 2.45 GHz free-space reference.
    Disc {
        /// Disc radius in meters.
        radius_m: f64,
        /// Path-loss exponent (2 = free space, ≈3 indoors).
        exponent: f64,
        /// Log-normal shadowing σ in dB (0 disables shadowing).
        shadowing_db: f64,
    },
    /// Nodes on concentric rings (uniform random angles), emitted
    /// ring-major. With one ring per channel and
    /// [`ChannelAllocation::Contiguous`], every channel sees a single
    /// range.
    Rings {
        /// Ring radii in meters; the total node count must be divisible
        /// by the ring count.
        radii_m: Vec<f64>,
        /// Path-loss exponent.
        exponent: f64,
        /// Log-normal shadowing σ in dB (0 disables shadowing).
        shadowing_db: f64,
    },
    /// One compact cluster per channel, centers evenly spaced on a circle
    /// inside the field. Emitted cluster-major, so
    /// [`ChannelAllocation::Contiguous`] maps cluster `c` to channel `c`.
    Clustered {
        /// Field radius in meters.
        field_radius_m: f64,
        /// Cluster radius in meters (each cluster is a small disc).
        cluster_radius_m: f64,
        /// Path-loss exponent.
        exponent: f64,
        /// Log-normal shadowing σ in dB (0 disables shadowing).
        shadowing_db: f64,
    },
}

/// How node indices map onto channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelAllocation {
    /// Round-robin interleaving ([`Deployment::channel_partition`]) — the
    /// paper's reading: every channel samples the whole population.
    RoundRobin,
    /// Contiguous index blocks ([`Deployment::contiguous_partition`]) —
    /// pairs with group-major deployments (rings, clusters).
    Contiguous,
    /// Concentric distance bands ([`Deployment::ring_partition`]) —
    /// ring-stratified: channel 0 takes the nearest nodes, the last
    /// channel the farthest.
    RingStratified,
}

/// Per-channel uplink payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadSpec {
    /// Every channel carries the same payload.
    Uniform {
        /// Uplink payload in bytes (≤ 123).
        payload_bytes: usize,
    },
    /// Heterogeneous traffic: channel `c` carries `payload_bytes[c]`.
    PerChannel {
        /// One payload per channel.
        payload_bytes: Vec<usize>,
    },
}

/// Per-channel traffic: what each node buffers and uplinks per
/// superframe, plus the channel's contention-free demand — GTS slots and
/// downlink polling ([`crate::cfp`]).
///
/// # Examples
///
/// ```
/// use wsn_sim::scenario::TrafficSpec;
///
/// // CAP-only (the default everywhere):
/// let cap = TrafficSpec::uniform(120);
/// assert!(cap.is_cap_only());
/// // Every node requests a one-slot GTS; the coordinator grants seven.
/// let gts = TrafficSpec::uniform(120).with_gts(1);
/// // Half the superframes deliver one downlink frame per node.
/// let bidi = TrafficSpec::uniform(120).with_downlink(0.5);
/// assert!(!gts.is_cap_only() && !bidi.is_cap_only());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Uplink payload per channel.
    pub payloads: PayloadSpec,
    /// GTS slots each requesting node asks for (0 = CAP-only uplink).
    /// Requests resolve through a real [`wsn_mac::gts::GtsRegistry`] at
    /// compile time: at most seven descriptors, and the CAP never
    /// shrinks below the scenario's
    /// [`min_cap_slots`](Scenario::min_cap_slots); overflow falls back
    /// to CAP and is reported as a typed count.
    pub gts_slots_per_node: u8,
    /// Nodes per channel requesting a GTS, in node order; `None` means
    /// every node asks (the paper's dense-network reading, where the
    /// seven-descriptor table is the binding constraint).
    pub gts_demand: Option<u32>,
    /// Fraction of superframes in which the coordinator holds one
    /// pending downlink frame per node.
    pub downlink_rate: f64,
}

impl TrafficSpec {
    /// Uniform CAP-only traffic: every channel carries `payload_bytes`.
    pub fn uniform(payload_bytes: usize) -> Self {
        TrafficSpec {
            payloads: PayloadSpec::Uniform { payload_bytes },
            gts_slots_per_node: 0,
            gts_demand: None,
            downlink_rate: 0.0,
        }
    }

    /// Heterogeneous CAP-only traffic: channel `c` carries
    /// `payload_bytes[c]`.
    pub fn per_channel(payload_bytes: Vec<usize>) -> Self {
        TrafficSpec {
            payloads: PayloadSpec::PerChannel { payload_bytes },
            gts_slots_per_node: 0,
            gts_demand: None,
            downlink_rate: 0.0,
        }
    }

    /// Every node requests a GTS of `slots_per_node` superframe slots.
    pub fn with_gts(mut self, slots_per_node: u8) -> Self {
        self.gts_slots_per_node = slots_per_node;
        self
    }

    /// Caps the per-channel GTS demand at `nodes` requesting nodes
    /// (combine with [`with_gts`](Self::with_gts) for the slot length).
    pub fn with_gts_demand(mut self, nodes: u32) -> Self {
        self.gts_demand = Some(nodes);
        self
    }

    /// A fraction `frames_per_superframe` of superframes delivers one
    /// pending downlink frame per node.
    pub fn with_downlink(mut self, frames_per_superframe: f64) -> Self {
        self.downlink_rate = frames_per_superframe;
        self
    }

    /// `true` when the spec schedules no contention-free traffic — the
    /// compiled channels carry a provably inert [`CfpPlan`].
    pub fn is_cap_only(&self) -> bool {
        (self.gts_slots_per_node == 0 || self.gts_demand == Some(0)) && self.downlink_rate == 0.0
    }

    /// The GTS demand for a channel holding `nodes` nodes.
    fn demand_for(&self, nodes: usize) -> u32 {
        if self.gts_slots_per_node == 0 {
            return 0;
        }
        self.gts_demand.unwrap_or(nodes as u32).min(nodes as u32)
    }
}

/// Which bit-error-rate model corrupts packets and acknowledgements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BerChoice {
    /// The paper's empirical CC2420 fit.
    EmpiricalCc2420,
    /// Hard-decision DSSS with the given receiver noise figure.
    HardDecisionDsss {
        /// Receiver noise figure in dB.
        noise_figure_db: f64,
    },
    /// Standard O-QPSK with the given receiver noise figure.
    StandardOqpsk {
        /// Receiver noise figure in dB.
        noise_figure_db: f64,
    },
}

impl BerChoice {
    /// Instantiates the chosen BER model.
    pub fn model(&self) -> ResolvedBer {
        match *self {
            BerChoice::EmpiricalCc2420 => ResolvedBer::Empirical(EmpiricalCc2420Ber::paper()),
            BerChoice::HardDecisionDsss { noise_figure_db } => {
                ResolvedBer::HardDecisionDsss(HardDecisionDsssBer::new(Db::new(noise_figure_db)))
            }
            BerChoice::StandardOqpsk { noise_figure_db } => {
                ResolvedBer::StandardOqpsk(StandardOqpskBer::new(Db::new(noise_figure_db)))
            }
        }
    }

    /// The same choice with its receiver noise figure raised by
    /// `offset_db` — the per-channel quality-asymmetry knob. The empirical
    /// CC2420 fit has no explicit noise figure, so a nonzero offset
    /// switches it to the hard-decision DSSS model at the paper's nominal
    /// 23 dB figure plus the offset.
    pub fn with_noise_offset(&self, offset_db: f64) -> BerChoice {
        if offset_db == 0.0 {
            return *self;
        }
        match *self {
            BerChoice::EmpiricalCc2420 => BerChoice::HardDecisionDsss {
                noise_figure_db: 23.0 + offset_db,
            },
            BerChoice::HardDecisionDsss { noise_figure_db } => BerChoice::HardDecisionDsss {
                noise_figure_db: noise_figure_db + offset_db,
            },
            BerChoice::StandardOqpsk { noise_figure_db } => BerChoice::StandardOqpsk {
                noise_figure_db: noise_figure_db + offset_db,
            },
        }
    }
}

/// An instantiated [`BerChoice`]: one concrete model per variant, so
/// per-channel BER choices can run side by side on the worker pool without
/// generics over the channel index.
#[derive(Debug, Clone, Copy)]
pub enum ResolvedBer {
    /// The paper's empirical CC2420 fit.
    Empirical(EmpiricalCc2420Ber),
    /// Hard-decision DSSS.
    HardDecisionDsss(HardDecisionDsssBer),
    /// Standard O-QPSK.
    StandardOqpsk(StandardOqpskBer),
}

impl BerModel for ResolvedBer {
    fn bit_error_probability(&self, p_rx: wsn_units::DBm) -> wsn_units::Probability {
        match self {
            ResolvedBer::Empirical(m) => m.bit_error_probability(p_rx),
            ResolvedBer::HardDecisionDsss(m) => m.bit_error_probability(p_rx),
            ResolvedBer::StandardOqpsk(m) => m.bit_error_probability(p_rx),
        }
    }
}

/// A declarative multi-channel network experiment.
///
/// # Examples
///
/// ```
/// use wsn_sim::scenario::Scenario;
/// use wsn_sim::Runner;
///
/// let scenario = Scenario::paper_case_study()
///     .with_superframes(4)
///     .with_replications(2);
/// let configs = scenario.compile();
/// assert_eq!(configs.len(), 16);
/// assert!(configs.iter().all(|c| c.channel.nodes == 100));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (printed by the experiment binaries).
    pub name: String,
    /// Number of independent channels.
    pub channels: usize,
    /// Nodes sharing each channel.
    pub nodes_per_channel: usize,
    /// Physical deployment / path-loss population.
    pub deployment: DeploymentSpec,
    /// Node-to-channel allocation for geometric deployments.
    pub allocation: ChannelAllocation,
    /// Traffic per channel.
    pub traffic: TrafficSpec,
    /// Beacon order (sets the inter-beacon period, hence the load).
    pub beacon_order: BeaconOrder,
    /// CSMA/CA parameters.
    pub csma: CsmaParams,
    /// Retransmission budget.
    pub retries: RetryPolicy,
    /// Simulated superframes per replication (first is warm-up).
    pub superframes: u32,
    /// Independent replications per channel.
    pub replications: u32,
    /// Master seed: deployment, per-channel and per-replication seeds all
    /// derive from it.
    pub seed: u64,
    /// Radio energy model.
    pub radio: RadioModel,
    /// Transmit power assignment (scenario-wide; swap per-channel
    /// policies onto the compiled configs for e.g. link adaptation).
    pub tx_policy: TxPowerPolicy,
    /// Coordinator transmit power (beacons, acknowledgements).
    pub coordinator_tx: DBm,
    /// Chip wake-up margin before each beacon.
    pub wakeup_margin: Seconds,
    /// BER model choice (scenario-wide default).
    pub ber: BerChoice,
    /// Per-channel BER overrides — channel `c` runs with `channel_ber[c]`
    /// when set, [`ber`](Self::ber) otherwise. The channel-quality
    /// asymmetry seam: asymmetric noise figures make physically identical
    /// channels behave differently.
    pub channel_ber: Option<Vec<BerChoice>>,
    /// Per-channel link-budget penalties in dB, added to every path loss
    /// compiled onto that channel (e.g. interference raising a channel's
    /// effective noise floor). `None` means all channels are clean.
    pub channel_loss_offsets_db: Option<Vec<f64>>,
    /// Minimum contention-access-period slots every channel's GTS
    /// allocation must preserve (the standard mandates a minimum CAP;
    /// [`GtsRegistry`](wsn_mac::gts::GtsRegistry) enforces it at compile
    /// time).
    pub min_cap_slots: u8,
    /// `true` to start all contentions at the beacon (ablation).
    pub synchronized_arrivals: bool,
    /// Fault-injection plan applied to every compiled channel
    /// ([`FaultPlan::inert`] by default — provably invisible; see
    /// [`crate::faults`]).
    pub faults: FaultPlan,
    /// Spatial shards for the per-node energy accounting of each channel
    /// job ([`NetworkSimulator::run_accumulate_sharded`]). `1` (the
    /// default) keeps the serial per-job path; any value is bit-identical
    /// to it. Raise for single huge channels, where the runner's
    /// per-channel parallelism alone would pin one core.
    pub shards: usize,
}

/// Full-population corruption table for the adaptive policy loop:
/// `probs[c][i]` is node `i`'s packet-or-ACK corruption probability as-if
/// assigned to channel `c` (channel loss offset, packet layout and BER
/// model applied). Built once per distinct loss drift by
/// [`Scenario::assignment_cache`]; each round's compile remaps it by
/// global node index instead of re-deriving the BER math per replication.
pub(crate) struct AssignmentCache {
    probs: Vec<Vec<f64>>,
}

impl Scenario {
    /// A scenario skeleton with the paper's MAC/radio defaults: BO = 6,
    /// standard 2003 CSMA, `N_max = 5`, CC2420 radio and BER, channel
    /// inversion to −88 dBm, 1 ms wake-up margin, one replication.
    pub fn new(
        name: impl Into<String>,
        channels: usize,
        nodes_per_channel: usize,
        deployment: DeploymentSpec,
    ) -> Self {
        Scenario {
            name: name.into(),
            channels,
            nodes_per_channel,
            deployment,
            allocation: ChannelAllocation::RoundRobin,
            traffic: TrafficSpec::uniform(120),
            beacon_order: BeaconOrder::new(6).expect("BO 6 valid"),
            csma: CsmaParams::standard_2003(),
            retries: RetryPolicy::paper(),
            superframes: 20,
            replications: 1,
            seed: 0x5CE7_A210,
            radio: RadioModel::cc2420(),
            tx_policy: TxPowerPolicy::ChannelInversion {
                target_rx: DBm::new(-88.0),
            },
            coordinator_tx: DBm::new(0.0),
            wakeup_margin: Seconds::from_millis(1.0),
            ber: BerChoice::EmpiricalCc2420,
            channel_ber: None,
            channel_loss_offsets_db: None,
            min_cap_slots: 8,
            synchronized_arrivals: false,
            faults: FaultPlan::inert(),
            shards: 1,
        }
    }

    /// The paper's §5 dense-network case study: 16 channels × 100 nodes,
    /// 120-byte payloads, BO = 6, path losses uniform in 55–95 dB.
    pub fn paper_case_study() -> Self {
        Scenario::new(
            "paper §5 case study",
            16,
            100,
            DeploymentSpec::UniformLossGrid {
                min_db: 55.0,
                max_db: 95.0,
            },
        )
    }

    /// Overrides the node-to-channel allocation.
    pub fn with_allocation(mut self, allocation: ChannelAllocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Overrides the traffic spec.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Overrides the beacon order.
    pub fn with_beacon_order(mut self, beacon_order: BeaconOrder) -> Self {
        self.beacon_order = beacon_order;
        self
    }

    /// Overrides the simulated superframes per replication.
    pub fn with_superframes(mut self, superframes: u32) -> Self {
        self.superframes = superframes;
        self
    }

    /// Overrides the spatial-shard count for per-channel energy
    /// accounting — bit-identical to the serial path for every value
    /// (see [`NetworkSimulator::run_accumulate_sharded`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the replication count (clamped to at least 1 at run
    /// time).
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the transmit-power policy.
    pub fn with_tx_policy(mut self, tx_policy: TxPowerPolicy) -> Self {
        self.tx_policy = tx_policy;
        self
    }

    /// Overrides the minimum CAP slots GTS allocations must preserve.
    pub fn with_min_cap_slots(mut self, min_cap_slots: u8) -> Self {
        self.min_cap_slots = min_cap_slots;
        self
    }

    /// Attaches a fault-injection plan: node churn, coordinator outages
    /// and round-level load/quality dynamics, all derived from the master
    /// seed (see [`crate::faults`]). The inert plan leaves every compiled
    /// channel bit-identical to a fault-free scenario.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the BER model choice.
    pub fn with_ber(mut self, ber: BerChoice) -> Self {
        self.ber = ber;
        self
    }

    /// Gives every channel its own BER model — the channel-quality
    /// asymmetry seam promoted from the scenario-wide
    /// [`with_ber`](Self::with_ber). One entry per channel.
    pub fn with_channel_ber(mut self, channel_ber: Vec<BerChoice>) -> Self {
        self.channel_ber = Some(channel_ber);
        self
    }

    /// Adds a per-channel link-budget penalty in dB to every path loss
    /// compiled onto that channel. One entry per channel.
    pub fn with_channel_loss_offsets(mut self, offsets_db: Vec<f64>) -> Self {
        self.channel_loss_offsets_db = Some(offsets_db);
        self
    }

    /// The BER choice governing channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if a per-channel BER list is shorter than the channel count.
    pub fn channel_ber(&self, c: usize) -> BerChoice {
        match &self.channel_ber {
            Some(bers) => {
                assert!(
                    bers.len() >= self.channels,
                    "one BER choice per channel required ({} < {})",
                    bers.len(),
                    self.channels
                );
                bers[c]
            }
            None => self.ber,
        }
    }

    /// The link-budget penalty of channel `c` in dB (0 when none is set).
    ///
    /// # Panics
    ///
    /// Panics if a per-channel offset list is shorter than the channel
    /// count.
    pub fn channel_loss_offset(&self, c: usize) -> Db {
        match &self.channel_loss_offsets_db {
            Some(offsets) => {
                assert!(
                    offsets.len() >= self.channels,
                    "one loss offset per channel required ({} < {})",
                    offsets.len(),
                    self.channels
                );
                Db::new(offsets[c])
            }
            None => Db::new(0.0),
        }
    }

    /// Total node count across all channels.
    pub fn total_nodes(&self) -> usize {
        self.channels * self.nodes_per_channel
    }

    /// The payload carried by channel `c`.
    ///
    /// # Panics
    ///
    /// Panics if a per-channel payload list is shorter than the channel
    /// count or a payload exceeds the 123-byte maximum.
    pub fn channel_packet(&self, c: usize) -> PacketLayout {
        let bytes = match &self.traffic.payloads {
            PayloadSpec::Uniform { payload_bytes } => *payload_bytes,
            PayloadSpec::PerChannel { payload_bytes } => {
                assert!(
                    payload_bytes.len() >= self.channels,
                    "one payload per channel required ({} < {})",
                    payload_bytes.len(),
                    self.channels
                );
                payload_bytes[c]
            }
        };
        PacketLayout::with_payload(bytes).expect("payload within the 123-byte maximum")
    }

    /// The contention-free plan of a channel holding `nodes` nodes: the
    /// traffic's GTS demand resolved through a real
    /// [`GtsRegistry`](wsn_mac::gts::GtsRegistry) (seven descriptors,
    /// [`min_cap_slots`](Self::min_cap_slots) preserved; overflow is
    /// counted in [`CfpPlan::gts_denied`] and falls back to CAP), plus
    /// the downlink polling rate.
    pub fn channel_cfp(&self, nodes: usize) -> CfpPlan {
        if self.traffic.is_cap_only() {
            return CfpPlan::inert();
        }
        plan_channel_cfp(
            nodes as u32,
            self.traffic.demand_for(nodes),
            self.traffic.gts_slots_per_node.max(1),
            self.min_cap_slots,
            self.traffic.downlink_rate,
        )
    }

    /// The network load λ of channel `c` implied by its traffic and the
    /// beacon order: `N·T_packet / T_ib`.
    pub fn channel_load(&self, c: usize) -> f64 {
        self.load_for(c, self.nodes_per_channel)
    }

    /// The load channel `c` would carry with `nodes` nodes assigned to it
    /// — the assignment-aware generalization of
    /// [`channel_load`](Self::channel_load).
    pub fn load_for(&self, c: usize, nodes: usize) -> f64 {
        nodes as f64 * self.channel_packet(c).duration().secs()
            / self.beacon_order.beacon_interval().secs()
    }

    /// The most nodes channel `c` can hold while keeping its load below
    /// `max_load` — the capacity bound allocation policies must respect.
    pub fn channel_capacity(&self, c: usize, max_load: f64) -> usize {
        let per_node = self.channel_packet(c).duration().secs();
        let budget = self.beacon_order.beacon_interval().secs() * max_load;
        (budget / per_node).floor() as usize
    }

    /// The geometric deployment and its per-node losses, or `None` for the
    /// geometry-free [`DeploymentSpec::UniformLossGrid`].
    ///
    /// Deterministic in the master seed: the geometry RNG stream is
    /// derived from it and independent of the per-channel contention
    /// seeds.
    fn geometry(&self) -> Option<(Vec<Db>, Deployment)> {
        let n = self.total_nodes();
        // A dedicated geometry stream, disjoint from the per-channel
        // contention seeds (which use small indices).
        let mut rng = SplitMix64::new(replication_seed(self.seed, 0xDE9_1077));
        let (losses, deployment) = match &self.deployment {
            DeploymentSpec::UniformLossGrid { .. } => return None,
            DeploymentSpec::Disc {
                radius_m,
                exponent,
                shadowing_db,
            } => {
                let d = Deployment::uniform_disc(n, Meters::new(*radius_m), &mut rng);
                let losses = Self::losses_for(&d, *exponent, *shadowing_db, &mut rng);
                (losses, d)
            }
            DeploymentSpec::Rings {
                radii_m,
                exponent,
                shadowing_db,
            } => {
                assert!(
                    !radii_m.is_empty() && n % radii_m.len() == 0,
                    "total node count {} must divide over {} rings",
                    n,
                    radii_m.len()
                );
                let radii: Vec<Meters> = radii_m.iter().map(|&r| Meters::new(r)).collect();
                let d = Deployment::rings(n / radii.len(), &radii, &mut rng);
                let losses = Self::losses_for(&d, *exponent, *shadowing_db, &mut rng);
                (losses, d)
            }
            DeploymentSpec::Clustered {
                field_radius_m,
                cluster_radius_m,
                exponent,
                shadowing_db,
            } => {
                let d = Deployment::clustered(
                    self.channels,
                    self.nodes_per_channel,
                    Meters::new(*field_radius_m),
                    Meters::new(*cluster_radius_m),
                    &mut rng,
                );
                let losses = Self::losses_for(&d, *exponent, *shadowing_db, &mut rng);
                (losses, d)
            }
        };
        Some((losses, deployment))
    }

    /// The scenario's [`ChannelAllocation`] applied to a geometric
    /// deployment — the single dispatch point shared by
    /// [`channel_losses`](Self::channel_losses) and
    /// [`initial_assignment`](Self::initial_assignment).
    fn geometric_partition(&self, deployment: &Deployment) -> Vec<Vec<usize>> {
        match self.allocation {
            ChannelAllocation::RoundRobin => deployment.channel_partition(self.channels),
            ChannelAllocation::Contiguous => deployment.contiguous_partition(self.channels),
            ChannelAllocation::RingStratified => deployment.ring_partition(self.channels),
        }
    }

    /// Per-node path losses for every channel, from the deployment spec,
    /// with any [per-channel loss offsets](Self::with_channel_loss_offsets)
    /// applied.
    ///
    /// Deterministic in the master seed: the geometry RNG stream is
    /// derived from it and independent of the per-channel contention
    /// seeds.
    pub fn channel_losses(&self) -> Vec<Vec<Db>> {
        let mut per_channel: Vec<Vec<Db>> = match self.geometry() {
            None => {
                let (min_db, max_db) = match self.deployment {
                    DeploymentSpec::UniformLossGrid { min_db, max_db } => (min_db, max_db),
                    _ => unreachable!("geometry() is None only for the uniform grid"),
                };
                let population = UniformPathLossPopulation::new(Db::new(min_db), Db::new(max_db));
                let grid = population.grid(self.nodes_per_channel);
                vec![grid; self.channels]
            }
            Some((losses, deployment)) => self
                .geometric_partition(&deployment)
                .iter()
                .map(|part| part.iter().map(|&i| losses[i]).collect())
                .collect(),
        };
        for (c, losses) in per_channel.iter_mut().enumerate() {
            let offset = self.channel_loss_offset(c);
            if offset.db() != 0.0 {
                for loss in losses.iter_mut() {
                    *loss = *loss + offset;
                }
            }
        }
        per_channel
    }

    /// The whole population's path losses in node-index order, **without**
    /// per-channel offsets (those depend on which channel a node lands on
    /// — [`compile_assignment`](Self::compile_assignment) applies them).
    ///
    /// For geometric deployments this is the same loss vector
    /// [`channel_losses`](Self::channel_losses) partitions; for the
    /// geometry-free uniform grid it is the deterministic midpoint grid
    /// over the *total* node count, so an assignment-driven experiment
    /// still spans the full 55–95 dB band.
    pub fn population_losses(&self) -> Vec<Db> {
        match self.geometry() {
            Some((losses, _)) => losses,
            None => {
                let (min_db, max_db) = match self.deployment {
                    DeploymentSpec::UniformLossGrid { min_db, max_db } => (min_db, max_db),
                    _ => unreachable!("geometry() is None only for the uniform grid"),
                };
                UniformPathLossPopulation::new(Db::new(min_db), Db::new(max_db))
                    .grid(self.total_nodes())
            }
        }
    }

    /// The node→channel assignment the scenario's [`ChannelAllocation`]
    /// implies — the starting point of every adaptive re-allocation loop.
    ///
    /// For geometric deployments the partition methods of the deployment
    /// are inverted into per-node labels. For the uniform grid (sorted
    /// ascending in loss) `RoundRobin` interleaves the band across
    /// channels while `Contiguous`/`RingStratified` both stratify it into
    /// consecutive loss bands.
    pub fn initial_assignment(&self) -> Vec<usize> {
        let n = self.total_nodes();
        let parts = match self.geometry() {
            Some((_, deployment)) => self.geometric_partition(&deployment),
            None => match self.allocation {
                ChannelAllocation::RoundRobin => {
                    let mut parts = vec![Vec::new(); self.channels];
                    for i in 0..n {
                        parts[i % self.channels].push(i);
                    }
                    parts
                }
                // The grid is sorted ascending in loss, so contiguous
                // blocks are loss bands — the stratified reading.
                ChannelAllocation::Contiguous | ChannelAllocation::RingStratified => {
                    let base = n / self.channels;
                    let extra = n % self.channels;
                    let mut parts = Vec::with_capacity(self.channels);
                    let mut next = 0usize;
                    for c in 0..self.channels {
                        let take = base + usize::from(c < extra);
                        parts.push((next..next + take).collect());
                        next += take;
                    }
                    parts
                }
            },
        };
        let mut assignment = vec![0usize; n];
        for (c, part) in parts.iter().enumerate() {
            for &i in part {
                assignment[i] = c;
            }
        }
        assignment
    }

    fn losses_for(
        deployment: &Deployment,
        exponent: f64,
        shadowing_db: f64,
        rng: &mut SplitMix64,
    ) -> Vec<Db> {
        let model = LogDistance::free_space_2450().with_exponent(exponent);
        if shadowing_db > 0.0 {
            let shadowed =
                LogNormalShadowing::new(model, Db::new(shadowing_db), deployment.len(), rng);
            shadowed_population(&shadowed, &deployment.ranges())
        } else {
            deployment.path_losses(&model)
        }
    }

    /// Checks every structural invariant [`compile`](Self::compile) and
    /// the run path would otherwise `assert!` — the non-panicking front
    /// door for scenarios that arrive as data ([`crate::persist`],
    /// [`crate::batch`]) rather than as code.
    ///
    /// Returns the first violation as a human-readable message. A
    /// scenario that validates cleanly compiles and runs without
    /// panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("at least one channel required".into());
        }
        if self.nodes_per_channel == 0 {
            return Err("at least one node per channel required".into());
        }
        if self.superframes < 2 {
            return Err(format!(
                "at least 2 superframes required (first is warm-up), got {}",
                self.superframes
            ));
        }
        if let PayloadSpec::PerChannel { payload_bytes } = &self.traffic.payloads {
            if payload_bytes.len() < self.channels {
                return Err(format!(
                    "one payload per channel required ({} < {})",
                    payload_bytes.len(),
                    self.channels
                ));
            }
        }
        let interval = self.beacon_order.beacon_interval().secs();
        for c in 0..self.channels {
            let bytes = match &self.traffic.payloads {
                PayloadSpec::Uniform { payload_bytes } => *payload_bytes,
                PayloadSpec::PerChannel { payload_bytes } => payload_bytes[c],
            };
            let packet = PacketLayout::with_payload(bytes)
                .map_err(|e| format!("channel {c} payload: {e}"))?;
            let load = self.nodes_per_channel as f64 * packet.duration().secs() / interval;
            if !(load > 0.0 && load < 1.0) {
                return Err(format!(
                    "channel {c} load {load:.3} outside (0,1) — lower the traffic or raise BO"
                ));
            }
        }
        if let Some(bers) = &self.channel_ber {
            if bers.len() < self.channels {
                return Err(format!(
                    "one BER choice per channel required ({} < {})",
                    bers.len(),
                    self.channels
                ));
            }
        }
        if let Some(offsets) = &self.channel_loss_offsets_db {
            if offsets.len() < self.channels {
                return Err(format!(
                    "one loss offset per channel required ({} < {})",
                    offsets.len(),
                    self.channels
                ));
            }
            if let Some(bad) = offsets.iter().find(|o| !o.is_finite()) {
                return Err(format!("non-finite channel loss offset {bad}"));
            }
        }
        if self.min_cap_slots > 15 {
            return Err(format!(
                "min_cap_slots must stay within the 16-slot superframe, got {}",
                self.min_cap_slots
            ));
        }
        let t = &self.traffic;
        if !(0.0..=1.0).contains(&t.downlink_rate) {
            return Err(format!(
                "downlink rate must be a fraction of superframes, got {}",
                t.downlink_rate
            ));
        }
        let demand_nonzero =
            t.gts_slots_per_node > 0 && t.gts_demand.map_or(true, |d| d > 0);
        if demand_nonzero && t.gts_slots_per_node > 15 {
            return Err(format!(
                "a GTS allocation must span 1..=15 slots, got {}",
                t.gts_slots_per_node
            ));
        }
        let f = &self.faults;
        for (field, rate) in [
            ("death_rate", f.death_rate),
            ("outage_rate", f.outage_rate),
        ] {
            if !(0.0..1.0).contains(&rate) {
                return Err(format!("fault {field} must lie in [0,1), got {rate}"));
            }
        }
        if !(0.0..=1.0).contains(&f.burst_downlink_rate) {
            return Err(format!(
                "fault burst_downlink_rate must lie in [0,1], got {}",
                f.burst_downlink_rate
            ));
        }
        if f.outage_rate > 0.0 && f.outage_superframes == 0 {
            return Err("a nonzero outage rate needs a nonzero outage window".into());
        }
        if !f.drift_amplitude_db.is_finite() || f.drift_amplitude_db < 0.0 {
            return Err(format!(
                "fault drift amplitude must be finite and non-negative, got {}",
                f.drift_amplitude_db
            ));
        }
        if let DeploymentSpec::Rings { radii_m, .. } = &self.deployment {
            if radii_m.is_empty() || self.total_nodes() % radii_m.len() != 0 {
                return Err(format!(
                    "total node count {} must divide over {} rings",
                    self.total_nodes(),
                    radii_m.len()
                ));
            }
        }
        if let TxPowerPolicy::PerNode(levels) = &self.tx_policy {
            if levels.len() != self.nodes_per_channel {
                return Err(format!(
                    "per-node level table holds {} levels for {} nodes per channel",
                    levels.len(),
                    self.nodes_per_channel
                ));
            }
        }
        Ok(())
    }

    /// Compiles the scenario into one [`NetworkConfig`] per channel.
    ///
    /// Channel `c` gets the seed `replication_seed(master, c)` (the
    /// replication layer derives further seeds from it), its traffic's
    /// load, and its slice of the deployment's path losses.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is structurally inconsistent (zero
    /// channels/nodes, payload list too short, a channel load outside
    /// `(0, 1)`).
    pub fn compile(&self) -> Vec<NetworkConfig> {
        assert!(self.channels > 0, "at least one channel required");
        assert!(self.nodes_per_channel > 0, "at least one node per channel");
        let losses: Vec<Arc<[Db]>> = self.channel_losses().into_iter().map(Arc::from).collect();
        (0..self.channels)
            .map(|c| {
                let packet = self.channel_packet(c);
                let load = self.channel_load(c);
                assert!(
                    load > 0.0 && load < 1.0,
                    "channel {c} load {load:.3} outside (0,1) — lower the traffic or raise BO"
                );
                NetworkConfig {
                    channel: ChannelSimConfig {
                        nodes: self.nodes_per_channel,
                        packet,
                        load,
                        csma: self.csma,
                        retries: self.retries,
                        superframes: self.superframes,
                        seed: replication_seed(self.seed, c as u64),
                        synchronized_arrivals: self.synchronized_arrivals,
                        cfp: self.channel_cfp(self.nodes_per_channel),
                        faults: self.faults,
                    },
                    radio: self.radio.clone(),
                    path_losses: losses[c].clone(),
                    tx_policy: self.tx_policy.clone(),
                    coordinator_tx: self.coordinator_tx,
                    wakeup_margin: self.wakeup_margin,
                    corrupt_probs: None,
                }
            })
            .collect()
    }

    /// Compiles the scenario for an explicit node→channel `assignment`
    /// over [`population_losses`](Self::population_losses) — the seam the
    /// adaptive [`policy`](crate::policy) loop re-compiles through every
    /// round. Channel `c`'s node count, path-loss slice (with its
    /// [loss offset](Self::channel_loss_offset)) and load all follow the
    /// assignment rather than the static `nodes_per_channel`.
    ///
    /// Contention seeds derive from `(master, salt, channel)`: pass a
    /// distinct `salt` per round so rounds observe independent contention
    /// noise while staying bit-deterministic. Nodes keep their identity
    /// (their path loss travels with them), so only channel membership —
    /// and hence per-channel load and BER — changes between rounds.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the total node count,
    /// any channel ends up empty, or a channel load leaves `(0, 1)`.
    pub fn compile_assignment(&self, assignment: &[usize], salt: u64) -> Vec<NetworkConfig> {
        self.compile_assignment_with_losses(&self.population_losses(), assignment, salt)
    }

    /// [`compile_assignment`](Self::compile_assignment) over precomputed
    /// [`population_losses`](Self::population_losses), so round loops pay
    /// for the deployment geometry once instead of once per round.
    ///
    /// # Panics
    ///
    /// As [`compile_assignment`](Self::compile_assignment), plus if
    /// `losses` is not one per node.
    pub fn compile_assignment_with_losses(
        &self,
        losses: &[Db],
        assignment: &[usize],
        salt: u64,
    ) -> Vec<NetworkConfig> {
        self.compile_assignment_cached(losses, assignment, salt, None)
    }

    /// Builds the policy loop's full-population corruption table: for each
    /// channel `c`, the corruption probability every node *would* have if
    /// assigned to `c` (channel loss offset, packet layout and BER model
    /// included), computed through the simulator's own
    /// [`corruption_probability`] so a cached round is bit-identical to an
    /// uncached one. The table depends only on `losses` — one build per
    /// distinct loss drift covers every round and assignment at that
    /// drift.
    ///
    /// Returns `None` for [`TxPowerPolicy::PerNode`]: explicit level
    /// tables are positional within one compiled assignment, so there is
    /// no assignment-independent per-node level to cache.
    pub(crate) fn assignment_cache(
        &self,
        losses: &[Db],
        bers: &[ResolvedBer],
    ) -> Option<AssignmentCache> {
        if matches!(self.tx_policy, TxPowerPolicy::PerNode(_)) {
            return None;
        }
        assert_eq!(bers.len(), self.channels, "one BER model per channel");
        let probs = (0..self.channels)
            .map(|c| {
                let offset = self.channel_loss_offset(c);
                let packet = self.channel_packet(c);
                let offset_losses: Vec<Db> = losses.iter().map(|&l| l + offset).collect();
                let levels = self.tx_policy.resolve(&offset_losses);
                offset_losses
                    .iter()
                    .zip(&levels)
                    .map(|(&a, &lvl)| {
                        corruption_probability(&bers[c], packet, self.coordinator_tx, a, lvl)
                    })
                    .collect()
            })
            .collect();
        Some(AssignmentCache { probs })
    }

    /// [`compile_assignment_with_losses`](Self::compile_assignment_with_losses)
    /// with an optional [`AssignmentCache`]: when present, each compiled
    /// config carries its nodes' precomputed corruption probabilities
    /// (remapped by global node index, O(nodes) per round) and the
    /// simulator skips the per-replication BER math.
    pub(crate) fn compile_assignment_cached(
        &self,
        losses: &[Db],
        assignment: &[usize],
        salt: u64,
        cache: Option<&AssignmentCache>,
    ) -> Vec<NetworkConfig> {
        assert_eq!(
            assignment.len(),
            self.total_nodes(),
            "one channel per node required"
        );
        assert_eq!(losses.len(), assignment.len(), "one path loss per node");
        let parts = assignment_partition(assignment, self.channels);
        let salted = replication_seed(self.seed, 0xAD00_0000 + salt);
        parts
            .iter()
            .enumerate()
            .map(|(c, part)| {
                assert!(
                    !part.is_empty(),
                    "channel {c} has no nodes — policies must keep every channel populated"
                );
                let offset = self.channel_loss_offset(c);
                let packet = self.channel_packet(c);
                let load = self.load_for(c, part.len());
                assert!(
                    load > 0.0 && load < 1.0,
                    "channel {c} load {load:.3} outside (0,1) — the assignment overloads it"
                );
                NetworkConfig {
                    channel: ChannelSimConfig {
                        nodes: part.len(),
                        packet,
                        load,
                        csma: self.csma,
                        retries: self.retries,
                        superframes: self.superframes,
                        seed: replication_seed(salted, c as u64),
                        synchronized_arrivals: self.synchronized_arrivals,
                        cfp: self.channel_cfp(part.len()),
                        faults: self.faults,
                    },
                    radio: self.radio.clone(),
                    path_losses: part.iter().map(|&i| losses[i] + offset).collect(),
                    tx_policy: self.tx_policy.clone(),
                    coordinator_tx: self.coordinator_tx,
                    wakeup_margin: self.wakeup_margin,
                    corrupt_probs: cache.map(|k| part.iter().map(|&i| k.probs[c][i]).collect()),
                }
            })
            .collect()
    }

    /// Compiles and runs the scenario on `runner` with the configured BER
    /// model(s).
    pub fn run(&self, runner: &Runner) -> ScenarioOutcome {
        let configs = self.compile();
        self.run_compiled(runner, &configs)
    }

    /// Runs pre-compiled (possibly caller-adjusted) channel configs with
    /// the scenario's BER choice(s) — e.g. after swapping per-node
    /// link-adapted transmit levels onto each config. Per-channel BER
    /// overrides ([`with_channel_ber`](Self::with_channel_ber)) apply
    /// here: config `c` runs against [`channel_ber(c)`](Self::channel_ber).
    pub fn run_compiled(&self, runner: &Runner, configs: &[NetworkConfig]) -> ScenarioOutcome {
        self.run_compiled_timed(runner, configs).outcome
    }

    /// [`run_compiled`](Self::run_compiled) with per-channel wall-clock
    /// instrumentation for the benchmark emitters.
    pub fn run_compiled_timed(
        &self,
        runner: &Runner,
        configs: &[NetworkConfig],
    ) -> TimedScenarioRun {
        let bers: Vec<ResolvedBer> = (0..configs.len())
            .map(|c| self.channel_ber(c).model())
            .collect();
        self.run_grid(runner, configs, &bers)
    }

    /// Runs pre-compiled configs with an explicit BER model shared by all
    /// channels.
    ///
    /// The full channels × replications grid is one flat job list on the
    /// runner, so a 16-channel study with 4 replications exposes 64-way
    /// parallelism; the reduction is
    /// [`ScenarioOutcome::reduce`]. Bit-identical for every thread count.
    pub fn run_with<B: BerModel + Sync>(
        &self,
        runner: &Runner,
        configs: &[NetworkConfig],
        ber: &B,
    ) -> ScenarioOutcome {
        self.run_with_timed(runner, configs, ber).outcome
    }

    /// [`run_with`](Self::run_with) with per-channel wall-clock
    /// instrumentation for the benchmark emitters.
    pub fn run_with_timed<B: BerModel + Sync>(
        &self,
        runner: &Runner,
        configs: &[NetworkConfig],
        ber: &B,
    ) -> TimedScenarioRun {
        let bers: Vec<&B> = (0..configs.len()).map(|_| ber).collect();
        self.run_grid(runner, configs, &bers)
    }

    /// The shared grid executor: one BER model per channel, flat
    /// channels × replications job list, fixed-order reduction, per-job
    /// timing. Timing never feeds back into results, so the statistics are
    /// bit-identical for every thread count. `pub(crate)` so the policy
    /// loop can resolve its BER models once and reuse them across rounds.
    pub(crate) fn run_grid<B: BerModel + Sync>(
        &self,
        runner: &Runner,
        configs: &[NetworkConfig],
        bers: &[B],
    ) -> TimedScenarioRun {
        assert_eq!(
            bers.len(),
            configs.len(),
            "one BER model per channel config required"
        );
        let t0 = Instant::now();
        let shards = runner.map_replicated(configs, self.replications.max(1), |i, cfg, r| {
            let t = Instant::now();
            // O(1) view, not a deep copy: `path_losses` (and any `PerNode`
            // level table) live behind `Arc`, so the only per-job state is
            // the replication seed written below.
            let mut cfg = cfg.clone();
            cfg.channel.seed = replication_seed(cfg.channel.seed, r);
            let sim = NetworkSimulator::new(cfg);
            let acc = if self.shards > 1 {
                sim.run_accumulate_sharded(&bers[i], self.shards)
            } else {
                sim.run_accumulate(&bers[i])
            };
            (acc, t.elapsed().as_secs_f64() * 1e3)
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut accs = Vec::with_capacity(shards.len());
        let mut channel_wall_ms = Vec::with_capacity(shards.len());
        for channel_reps in shards {
            let mut reps = Vec::with_capacity(channel_reps.len());
            let mut ms = 0.0;
            for (acc, shard_ms) in channel_reps {
                reps.push(acc);
                ms += shard_ms;
            }
            accs.push(reps);
            channel_wall_ms.push(ms);
        }

        let mut outcome = ScenarioOutcome::reduce(self.name.clone(), &accs);
        // Compile-time CFP bookkeeping rides on the configs, not the
        // accumulators: surface each channel's denied GTS requests as the
        // typed overflow signal.
        outcome.gts_denied = configs.iter().map(|c| c.channel.cfp.gts_denied).collect();
        TimedScenarioRun {
            outcome,
            channel_wall_ms,
            wall_ms,
        }
    }
}

/// A scenario run plus its wall-clock instrumentation, for the
/// `BENCH_network.json` emitters.
#[derive(Debug, Clone)]
pub struct TimedScenarioRun {
    /// The reduced outcome (identical to the untimed run).
    pub outcome: ScenarioOutcome,
    /// Per-channel wall-clock in milliseconds, summed over that channel's
    /// replications (CPU cost, not elapsed time, under parallelism).
    pub channel_wall_ms: Vec<f64>,
    /// Total elapsed wall-clock of the grid in milliseconds.
    pub wall_ms: f64,
}

/// Results of a scenario run: one summary per channel plus the
/// network-wide reduction.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's name (echoed for experiment logs).
    pub name: String,
    /// Per-channel summaries, in channel order.
    pub per_channel: Vec<NetworkSummary>,
    /// All channels and replications merged.
    pub overall: NetworkSummary,
    /// GTS requests denied per channel at compile time (descriptor table
    /// exhausted or minimum CAP reached) — those nodes fell back to CAP.
    /// Empty when the outcome was reduced outside the scenario run path.
    pub gts_denied: Vec<u32>,
}

impl ScenarioOutcome {
    /// Reduces a channels × replications grid of unsealed accumulators
    /// (`accs[c][r]` = channel `c`, replication `r`) into per-channel and
    /// overall summaries. Serial and fixed-order, so the result is
    /// bit-identical no matter how the grid was produced:
    ///
    /// * **per channel** — its replications merge in replication order,
    ///   each sealed, so per-channel standard errors are
    ///   replication-based;
    /// * **overall** — for each replication, all channels merge
    ///   (channel-major) into one network-wide accumulator which is then
    ///   sealed; the sealed replications merge in order, so the overall
    ///   standard errors are replication-based too.
    ///
    /// # Panics
    ///
    /// Panics if channels disagree on their replication count.
    pub fn reduce(name: impl Into<String>, accs: &[Vec<NetworkAccumulator>]) -> ScenarioOutcome {
        let reps = accs.first().map_or(0, Vec::len);
        assert!(
            accs.iter().all(|channel_reps| channel_reps.len() == reps),
            "every channel needs the same replication count"
        );

        let per_channel = accs
            .iter()
            .map(|channel_reps| {
                let mut total = NetworkAccumulator::new();
                for shard in channel_reps {
                    let mut shard = shard.clone();
                    shard.seal_replication();
                    total.merge(&shard);
                }
                total.summary()
            })
            .collect();

        let mut overall = NetworkAccumulator::new();
        for r in 0..reps {
            let mut rep_acc = NetworkAccumulator::new();
            for channel_reps in accs {
                rep_acc.merge(&channel_reps[r]);
            }
            rep_acc.seal_replication();
            overall.merge(&rep_acc);
        }

        ScenarioOutcome {
            name: name.into(),
            per_channel,
            overall: overall.summary(),
            gts_denied: Vec::new(),
        }
    }

    /// Total GTS requests denied across all channels.
    pub fn total_gts_denied(&self) -> u32 {
        self.gts_denied.iter().sum()
    }

    /// Index and summary of the channel with the highest failure ratio.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no channels.
    pub fn worst_channel(&self) -> (usize, &NetworkSummary) {
        self.per_channel
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.failure_ratio
                    .value()
                    .total_cmp(&b.1.failure_ratio.value())
            })
            .expect("at least one channel")
    }

    /// Spread of per-channel mean node powers, `(min µW, max µW)`.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has no channels.
    pub fn power_spread_uw(&self) -> (f64, f64) {
        assert!(!self.per_channel.is_empty(), "at least one channel");
        let powers: Vec<f64> = self
            .per_channel
            .iter()
            .map(|s| s.mean_node_power.microwatts())
            .collect();
        (
            powers.iter().copied().fold(f64::INFINITY, f64::min),
            powers.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(deployment: DeploymentSpec) -> Scenario {
        let mut s = Scenario::new("tiny", 4, 10, deployment);
        s.superframes = 4;
        s
    }

    #[test]
    fn paper_case_study_compiles_to_16x100() {
        let configs = Scenario::paper_case_study().compile();
        assert_eq!(configs.len(), 16);
        for cfg in &configs {
            assert_eq!(cfg.channel.nodes, 100);
            assert_eq!(cfg.path_losses.len(), 100);
            assert_eq!(cfg.channel.packet.payload_bytes(), 120);
            // BO 6 → T_ib 983.04 ms → the paper's ≈42 % load.
            assert!((cfg.channel.load - 0.433).abs() < 0.005);
            // Identical loss grid per channel, spanning 55–95 dB.
            assert!(cfg.path_losses.first().unwrap().db() > 55.0);
            assert!(cfg.path_losses.last().unwrap().db() < 95.0);
        }
        // Per-channel seeds are distinct.
        let mut seeds: Vec<u64> = configs.iter().map(|c| c.channel.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn geometric_scenarios_partition_all_nodes() {
        for (spec, allocation) in [
            (
                DeploymentSpec::Disc {
                    radius_m: 30.0,
                    exponent: 3.0,
                    shadowing_db: 0.0,
                },
                ChannelAllocation::RingStratified,
            ),
            (
                DeploymentSpec::Rings {
                    radii_m: vec![5.0, 12.0, 20.0, 28.0],
                    exponent: 3.0,
                    shadowing_db: 2.0,
                },
                ChannelAllocation::Contiguous,
            ),
            (
                DeploymentSpec::Clustered {
                    field_radius_m: 40.0,
                    cluster_radius_m: 4.0,
                    exponent: 3.0,
                    shadowing_db: 0.0,
                },
                ChannelAllocation::Contiguous,
            ),
        ] {
            let s = tiny(spec).with_allocation(allocation);
            let configs = s.compile();
            assert_eq!(configs.len(), 4);
            assert!(configs.iter().all(|c| c.path_losses.len() == 10));
        }
    }

    #[test]
    fn ring_stratified_channels_order_by_loss() {
        let s = tiny(DeploymentSpec::Disc {
            radius_m: 30.0,
            exponent: 3.0,
            shadowing_db: 0.0,
        })
        .with_allocation(ChannelAllocation::RingStratified);
        let configs = s.compile();
        let mean_loss = |cfg: &NetworkConfig| {
            cfg.path_losses.iter().map(|l| l.db()).sum::<f64>() / cfg.path_losses.len() as f64
        };
        for w in configs.windows(2) {
            assert!(mean_loss(&w[0]) <= mean_loss(&w[1]));
        }
    }

    #[test]
    fn heterogeneous_traffic_changes_per_channel_load() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 80.0,
        })
        .with_traffic(TrafficSpec::per_channel(vec![40, 80, 120, 123]));
        let configs = s.compile();
        let loads: Vec<f64> = configs.iter().map(|c| c.channel.load).collect();
        assert!(loads.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(configs[3].channel.packet.payload_bytes(), 123);
    }

    #[test]
    fn compilation_is_deterministic_in_the_seed() {
        let spec = DeploymentSpec::Disc {
            radius_m: 25.0,
            exponent: 3.0,
            shadowing_db: 4.0,
        };
        let a = tiny(spec.clone()).with_seed(7).compile();
        let b = tiny(spec.clone()).with_seed(7).compile();
        let c = tiny(spec).with_seed(8).compile();
        assert_eq!(a[0].path_losses, b[0].path_losses);
        assert_ne!(a[0].path_losses, c[0].path_losses);
    }

    #[test]
    fn scenario_run_is_bit_identical_across_thread_counts() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        })
        .with_replications(3);
        let serial = s.run(&Runner::serial());
        for threads in [2, 4] {
            let parallel = s.run(&Runner::with_threads(threads));
            assert_eq!(
                serial.overall.mean_node_power, parallel.overall.mean_node_power,
                "threads={threads}"
            );
            assert_eq!(serial.overall.failure_ratio, parallel.overall.failure_ratio);
            assert_eq!(
                serial.overall.power_standard_error,
                parallel.overall.power_standard_error
            );
            for (a, b) in serial.per_channel.iter().zip(&parallel.per_channel) {
                assert_eq!(a.mean_node_power, b.mean_node_power);
                assert_eq!(a.failure_ratio, b.failure_ratio);
            }
        }
        assert_eq!(serial.overall.replications, 3);
        assert_eq!(serial.per_channel[0].replications, 3);
    }

    #[test]
    fn cap_only_traffic_compiles_inert_plans() {
        let configs = Scenario::paper_case_study().compile();
        assert!(configs.iter().all(|c| c.channel.cfp.is_inert()));
    }

    #[test]
    fn gts_traffic_resolves_through_the_registry() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        })
        .with_traffic(TrafficSpec::uniform(80).with_gts(1).with_downlink(0.25));
        let configs = s.compile();
        for cfg in &configs {
            // All 10 nodes asked; 7 descriptors exist.
            assert_eq!(cfg.channel.cfp.gts_nodes, 7);
            assert_eq!(cfg.channel.cfp.gts_denied, 3);
            assert_eq!(cfg.channel.cfp.cfp_start_slot, 9);
            assert_eq!(cfg.channel.cfp.downlink_rate, 0.25);
        }
        let outcome = s.with_superframes(4).run(&Runner::serial());
        assert_eq!(outcome.gts_denied, vec![3, 3, 3, 3]);
        assert_eq!(outcome.total_gts_denied(), 12);
        assert!(outcome.overall.cfp_power.microwatts() > 0.0);
        assert!(outcome.overall.gts_transactions > 0);
        assert!(outcome.overall.downlink_polls > 0);
    }

    #[test]
    fn min_cap_floor_limits_gts_grants() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        })
        .with_traffic(TrafficSpec::uniform(80).with_gts(2))
        .with_min_cap_slots(10);
        // Two-slot allocations above a 10-slot CAP: only 3 fit (slots
        // 10..16).
        let configs = s.compile();
        assert_eq!(configs[0].channel.cfp.gts_nodes, 3);
        assert_eq!(configs[0].channel.cfp.gts_denied, 7);
        assert_eq!(configs[0].channel.cfp.cfp_start_slot, 10);
    }

    #[test]
    fn gts_demand_caps_the_requesting_nodes() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        })
        .with_traffic(TrafficSpec::uniform(80).with_gts(1).with_gts_demand(4));
        let configs = s.compile();
        assert_eq!(configs[0].channel.cfp.gts_nodes, 4);
        assert_eq!(configs[0].channel.cfp.gts_denied, 0);
    }

    #[test]
    fn cfp_scenario_runs_are_bit_identical_across_thread_counts() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        })
        .with_traffic(TrafficSpec::uniform(100).with_gts(1).with_downlink(0.5))
        .with_replications(2);
        let serial = s.run(&Runner::serial());
        for threads in [2, 4] {
            let parallel = s.run(&Runner::with_threads(threads));
            assert_eq!(
                serial.overall.mean_node_power,
                parallel.overall.mean_node_power
            );
            assert_eq!(serial.overall.cap_power, parallel.overall.cap_power);
            assert_eq!(serial.overall.cfp_power, parallel.overall.cfp_power);
            assert_eq!(
                serial.overall.cfp_power_standard_error,
                parallel.overall.cfp_power_standard_error
            );
            assert_eq!(serial.gts_denied, parallel.gts_denied);
            assert_eq!(
                serial.overall.downlink_failure_ratio,
                parallel.overall.downlink_failure_ratio
            );
        }
    }

    #[test]
    fn overall_pools_all_channels() {
        let s = tiny(DeploymentSpec::UniformLossGrid {
            min_db: 60.0,
            max_db: 85.0,
        });
        let outcome = s.run(&Runner::serial());
        assert_eq!(outcome.per_channel.len(), 4);
        // 4 channels × 10 nodes × 1 replication.
        assert_eq!(outcome.overall.node_powers.len(), 40);
        let (lo, hi) = outcome.power_spread_uw();
        assert!(lo <= hi);
        let (worst, summary) = outcome.worst_channel();
        assert!(worst < 4);
        assert!(summary.failure_ratio.value() <= 1.0);
    }
}
