//! Contention-free period (CFP) traffic: guaranteed time slots and
//! indirect (downlink) polling in the discrete-event simulator.
//!
//! The contention engine historically modeled the uplink CAP only. This
//! module adds the two contention-free regimes the paper's "improvement
//! perspectives" hinge on:
//!
//! * **GTS uplink** — a coordinator dedicates up to seven tail slots of
//!   the superframe to individual devices
//!   ([`wsn_mac::gts::GtsRegistry`] enforces the hard descriptor limit
//!   and the minimum CAP). A GTS holder's packet bypasses slotted CSMA/CA
//!   entirely: no backoff, no CCAs, no collision exposure — it transmits
//!   in its dedicated slot every superframe and retries there (carrying
//!   the packet) when channel noise corrupts it.
//! * **Downlink polling** — the coordinator cannot push data to sleeping
//!   nodes; a node that finds its address pending contends in the CAP
//!   with a **data request** MAC command, then keeps its receiver on for
//!   the downlink frame and acknowledges it (the indirect transmission of
//!   the standard's Figure 1b, modeled analytically by
//!   `wsn_core::downlink`). The data request contends like any uplink
//!   packet, so downlink traffic *shifts the CAP contention* the
//!   analytical model predicts — exactly the joint PHY/MAC coupling the
//!   related work motivates.
//!
//! A [`CfpPlan`] is the engine-facing résumé of a channel's
//! contention-free configuration: how many (leading) nodes hold a GTS,
//! where the CFP starts, and the per-superframe downlink rate. The
//! scenario layer resolves traffic demand into a plan through the real
//! [`GtsRegistry`] ([`plan_channel_cfp`]), so the seven-descriptor limit
//! and the minimum-CAP rule bite exactly as in the standard — overflow
//! falls back to CAP and is surfaced as a typed
//! [`gts_denied`](CfpPlan::gts_denied) count.
//!
//! ## Inertness contract
//!
//! An [inert](CfpPlan::is_inert) plan (no GTS nodes, zero downlink rate)
//! leaves the engine's event stream, RNG consumption and energy accrual
//! **bit-identical** to the CAP-only engine: every CFP branch is gated on
//! the plan, no CFP event is ever scheduled and no CFP random draw is
//! ever made. The scenario/runner determinism suites pin this.
//!
//! ## Modeling choices (documented divergences)
//!
//! * The CFP is interference-free: GTS transmissions neither observe nor
//!   extend the CAP's channel-busy horizon (the standard guarantees CSMA
//!   transactions complete before the CFP; the engine does not model the
//!   CAP-end boundary, so the two regimes are kept orthogonal instead).
//! * A GTS holder retries a corrupted packet in its own slot the next
//!   superframe, without a retry cap — persistence is free of contention
//!   cost, so `N_max` (which bounds *contention* exposure) does not apply.
//! * A data request gets one CSMA procedure per poll; a collided or
//!   access-failed request leaves the frame pending (counted, not
//!   retried within the superframe). A poll arriving while the node is
//!   busy with its uplink transaction is **deferred**.
//! * The packet/ACK corruption oracle decides downlink-frame corruption
//!   too (same link, opposite direction — the uplink corruption
//!   probability stands in for the downlink frame's).

use wsn_mac::gts::GtsRegistry;

/// MPDU + SHR/PHR bytes of the data-request MAC command with short
/// addressing (mirrors `wsn_core::downlink::DATA_REQUEST_AIR_BYTES`; the
/// dependency points the other way, so the constant lives in both crates
/// and a `wsn-core` test pins them equal).
pub const DATA_REQUEST_AIR_BYTES: usize = 6 + 10;

/// Engine-facing contention-free configuration of one channel: which
/// nodes transmit in the CFP and how often the coordinator polls.
///
/// Produced by [`plan_channel_cfp`] (through the real [`GtsRegistry`]) or
/// [`CfpPlan::inert`] for CAP-only channels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfpPlan {
    /// Number of GTS-holding nodes. The engine assigns the allocations to
    /// the **leading** node indices: node `k < gts_nodes` owns descriptor
    /// `k`, whose slots start at MAC slot `16 − (k+1)·slots_per_gts`
    /// (allocations grow the CFP downward from slot 16, as in the
    /// standard).
    pub gts_nodes: u32,
    /// MAC superframe slots per GTS allocation.
    pub slots_per_gts: u8,
    /// First MAC slot of the contention-free period (16 when empty).
    pub cfp_start_slot: u8,
    /// Fraction of superframes in which the coordinator holds one pending
    /// downlink frame per node (each node polls independently).
    pub downlink_rate: f64,
    /// GTS requests the registry denied (descriptor table exhausted or
    /// the CAP would shrink below its minimum) — these nodes fall back to
    /// CAP contention. The typed overflow signal the scenario layer
    /// surfaces.
    pub gts_denied: u32,
}

impl CfpPlan {
    /// The CAP-only plan: no GTS, no downlink. Provably inert in the
    /// engine (see the module docs).
    pub fn inert() -> Self {
        CfpPlan {
            gts_nodes: 0,
            slots_per_gts: 1,
            cfp_start_slot: 16,
            downlink_rate: 0.0,
            gts_denied: 0,
        }
    }

    /// `true` when the plan schedules no contention-free traffic at all —
    /// the engine's fast predicate for skipping every CFP branch.
    pub fn is_inert(&self) -> bool {
        self.gts_nodes == 0 && self.downlink_rate == 0.0
    }

    /// `true` when any node transmits in the CFP.
    pub fn has_gts(&self) -> bool {
        self.gts_nodes > 0
    }

    /// First MAC slot of GTS holder `k`'s allocation.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not an allocated holder.
    pub fn gts_start_slot(&self, k: u32) -> u8 {
        assert!(k < self.gts_nodes, "node {k} holds no GTS");
        16 - (k as u8 + 1) * self.slots_per_gts
    }
}

impl Default for CfpPlan {
    fn default() -> Self {
        CfpPlan::inert()
    }
}

/// Resolves one channel's contention-free demand into a [`CfpPlan`]
/// through a real [`GtsRegistry`]: the leading `gts_demand` nodes request
/// `slots_per_gts` slots each, in node order, until the descriptor table
/// (seven entries) or the minimum CAP (`min_cap_slots`) stops the
/// coordinator; every refusal is counted as denied and the node falls
/// back to CAP contention.
///
/// # Panics
///
/// Panics if `downlink_rate` is outside `[0, 1]`, `min_cap_slots > 15`,
/// or a nonzero GTS demand requests a slot length outside `1..=15`.
pub fn plan_channel_cfp(
    nodes: u32,
    gts_demand: u32,
    slots_per_gts: u8,
    min_cap_slots: u8,
    downlink_rate: f64,
) -> CfpPlan {
    assert!(
        (0.0..=1.0).contains(&downlink_rate),
        "downlink rate must be a fraction of superframes, got {downlink_rate}"
    );
    let demand = gts_demand.min(nodes);
    if demand == 0 {
        let mut plan = CfpPlan::inert();
        plan.downlink_rate = downlink_rate;
        return plan;
    }
    assert!(
        (1..=15).contains(&slots_per_gts),
        "a GTS allocation must span 1..=15 slots, got {slots_per_gts}"
    );
    let mut registry = GtsRegistry::new(min_cap_slots);
    let mut granted = 0u32;
    let mut denied = 0u32;
    for device in 0..demand {
        match registry.allocate(device as u16, slots_per_gts) {
            Ok(_) => granted += 1,
            Err(_) => denied += 1,
        }
    }
    CfpPlan {
        gts_nodes: granted,
        slots_per_gts,
        cfp_start_slot: registry.cfp_start_slot(),
        downlink_rate,
        gts_denied: denied,
    }
}

/// One GTS transmission's outcome (the CFP analogue of an uplink
/// transaction: one per holder per recorded superframe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtsRecord {
    /// Node index (a GTS holder).
    pub node: u32,
    /// `true` if the packet survived channel noise (GTS never collides).
    pub delivered: bool,
    /// Superframes this packet had already waited (0 = fresh packet).
    pub superframes_waited: u32,
}

/// How a downlink poll concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownlinkOutcome {
    /// Data request delivered and the downlink frame received intact.
    Delivered,
    /// Data request delivered but the downlink frame was corrupted.
    Corrupted,
    /// The data request collided in the CAP.
    Collided,
    /// CSMA/CA reported channel access failure for the data request.
    AccessFailure,
    /// The node was busy with its uplink transaction when polled; the
    /// frame stays pending at the coordinator.
    Deferred,
}

/// One downlink poll's measurements (one per pending frame per
/// superframe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownlinkRecord {
    /// Node index.
    pub node: u32,
    /// Data-request contention duration in backoff slots (0 when
    /// deferred).
    pub contention_slots: u64,
    /// CCAs performed for the data request (0 when deferred).
    pub ccas: u32,
    /// Outcome.
    pub outcome: DownlinkOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_mac::gts::MAX_GTS_DESCRIPTORS;

    #[test]
    fn inert_plan_is_inert() {
        let plan = CfpPlan::inert();
        assert!(plan.is_inert());
        assert!(!plan.has_gts());
        assert_eq!(plan.cfp_start_slot, 16);
        assert_eq!(plan, CfpPlan::default());
    }

    #[test]
    fn downlink_only_plan_is_not_inert() {
        let plan = plan_channel_cfp(10, 0, 1, 8, 0.5);
        assert!(!plan.is_inert());
        assert!(!plan.has_gts());
        assert_eq!(plan.downlink_rate, 0.5);
        assert_eq!(plan.gts_denied, 0);
    }

    #[test]
    fn registry_limits_grants_to_seven() {
        // 100 nodes all want a slot: 7 granted, 93 denied — the paper's
        // "7 ≪ several hundred" argument, now a typed count.
        let plan = plan_channel_cfp(100, 100, 1, 8, 0.0);
        assert_eq!(plan.gts_nodes, MAX_GTS_DESCRIPTORS as u32);
        assert_eq!(plan.gts_denied, 93);
        assert_eq!(plan.cfp_start_slot, 9);
        assert!(plan.has_gts() && !plan.is_inert());
    }

    #[test]
    fn min_cap_limits_grants_before_the_descriptor_table() {
        // 12 CAP slots minimum → only 4 single-slot GTS fit (slots 12–15).
        let plan = plan_channel_cfp(10, 10, 1, 12, 0.0);
        assert_eq!(plan.gts_nodes, 4);
        assert_eq!(plan.gts_denied, 6);
        assert_eq!(plan.cfp_start_slot, 12);
    }

    #[test]
    fn multi_slot_allocations_start_where_the_registry_says() {
        let plan = plan_channel_cfp(8, 3, 2, 8, 0.0);
        assert_eq!(plan.gts_nodes, 3);
        assert_eq!(plan.cfp_start_slot, 10);
        assert_eq!(plan.gts_start_slot(0), 14);
        assert_eq!(plan.gts_start_slot(1), 12);
        assert_eq!(plan.gts_start_slot(2), 10);
    }

    #[test]
    fn demand_is_capped_at_the_node_count() {
        let plan = plan_channel_cfp(3, 100, 1, 8, 0.0);
        assert_eq!(plan.gts_nodes, 3);
        assert_eq!(plan.gts_denied, 0);
    }

    #[test]
    #[should_panic(expected = "fraction of superframes")]
    fn silly_downlink_rate_rejected() {
        let _ = plan_channel_cfp(10, 0, 1, 8, 1.5);
    }

    #[test]
    #[should_panic(expected = "1..=15 slots")]
    fn oversized_slot_length_rejected() {
        let _ = plan_channel_cfp(10, 5, 16, 8, 0.0);
    }

    #[test]
    #[should_panic(expected = "1..=15 slots")]
    fn zero_slot_length_with_demand_rejected() {
        let _ = plan_channel_cfp(10, 5, 0, 8, 0.0);
    }

    #[test]
    #[should_panic(expected = "holds no GTS")]
    fn gts_slot_of_non_holder_rejected() {
        CfpPlan::inert().gts_start_slot(0);
    }
}
