//! Statistics accumulators and the contention-statistics exchange type.

use core::fmt;

use wsn_units::{Probability, Seconds};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use wsn_sim::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one using Chan et al.'s
    /// pairwise mean/variance combination.
    ///
    /// The result is exact (up to floating-point rounding) and independent
    /// of how the samples were split between the two halves, which is what
    /// lets sharded replications be reduced on worker threads and combined
    /// afterwards. Merging in a fixed order is bit-deterministic.
    ///
    /// # Examples
    ///
    /// ```
    /// use wsn_sim::stats::Accumulator;
    ///
    /// let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    /// let mut whole = Accumulator::new();
    /// let (mut left, mut right) = (Accumulator::new(), Accumulator::new());
    /// for (i, &x) in xs.iter().enumerate() {
    ///     whole.push(x);
    ///     if i < 3 { left.push(x) } else { right.push(x) }
    /// }
    /// left.merge(&right);
    /// assert_eq!(left.count(), whole.count());
    /// assert!((left.mean() - whole.mean()).abs() < 1e-12);
    /// assert!((left.population_variance() - whole.population_variance()).abs() < 1e-12);
    /// ```
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_a = self.n as f64;
        let n_b = other.n as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        self.mean += delta * (n_b / n);
        self.m2 += other.m2 + delta * delta * (n_a * n_b / n);
        self.n += other.n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n as f64 - 1.0) / self.n as f64).sqrt()
        }
    }

    /// The accumulator of every sample multiplied by `factor`: the count is
    /// unchanged, the mean scales by `factor` and the sum of squared
    /// deviations by `factor²`. Exact (up to floating-point rounding), so
    /// unit conversions can be applied *after* accumulation — e.g. delivery
    /// delays recorded in superframes rescaled to seconds by the
    /// inter-beacon period — without replaying the samples.
    pub fn scaled(&self, factor: f64) -> Accumulator {
        Accumulator {
            n: self.n,
            mean: self.mean * factor,
            m2: self.m2 * factor * factor,
        }
    }
}

/// Exact running extrema (min/max) of a sample stream.
///
/// Like [`Accumulator`], shards reduced independently and merged in any
/// split are **exactly** equal to a single-pass reduction — min and max are
/// associative and commutative — which makes extrema safe to carry through
/// the runner's sharded reductions (e.g. the worst per-round channel
/// failure across merged policy traces).
///
/// # Examples
///
/// ```
/// use wsn_sim::stats::Extrema;
///
/// let mut a = Extrema::new();
/// let mut b = Extrema::new();
/// a.push(3.0);
/// b.push(-1.0);
/// b.push(7.0);
/// a.merge(&b);
/// assert_eq!(a.min(), -1.0);
/// assert_eq!(a.max(), 7.0);
/// assert_eq!(a.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrema {
    n: u64,
    min: f64,
    max: f64,
}

impl Extrema {
    /// Creates an empty extrema tracker.
    pub fn new() -> Self {
        Extrema {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another tracker into this one. Exact for any split.
    pub fn merge(&mut self, other: &Extrema) {
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Smallest sample (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Default for Extrema {
    fn default() -> Self {
        Extrema::new()
    }
}

/// Ratio counter for event probabilities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    hits: u64,
    trials: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Registers a trial, counting it as a hit when `hit` is true.
    pub fn observe(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Merges another counter into this one (exact: counts simply add).
    pub fn merge(&mut self, other: &Counter) {
        self.hits += other.hits;
        self.trials += other.trials;
    }

    /// Hit ratio (0 when no trials were observed).
    pub fn ratio(&self) -> Probability {
        if self.trials == 0 {
            Probability::ZERO
        } else {
            Probability::clamped(self.hits as f64 / self.trials as f64)
        }
    }

    /// Binomial standard error of the hit ratio, `√(p̂(1−p̂)/n)` (0 with
    /// fewer than two trials).
    pub fn standard_error(&self) -> f64 {
        if self.trials < 2 {
            0.0
        } else {
            let p = self.hits as f64 / self.trials as f64;
            (p * (1.0 - p) / self.trials as f64).sqrt()
        }
    }
}

/// Online reducer for contention statistics: the exact sufficient
/// statistics behind [`ContentionStats`], kept in mergeable form.
///
/// [`crate::sink::StatsSink`] feeds one of these directly from the
/// event stream, so a replication never materializes its trace; the
/// parallel runner merges per-shard accumulators in a fixed order
/// ([`Accumulator::merge`] / [`Counter::merge`]), which makes the parallel
/// reduction bit-identical to the serial one.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContentionAccumulator {
    /// Contention duration samples in microseconds.
    pub contention_us: Accumulator,
    /// CCAs-per-procedure samples.
    pub ccas: Accumulator,
    /// Collision counter over transmissions.
    pub collisions: Counter,
    /// Access-failure counter over procedures.
    pub access_failures: Counter,
}

impl ContentionAccumulator {
    /// Creates an empty reducer.
    pub fn new() -> Self {
        ContentionAccumulator::default()
    }

    /// Merges another reducer into this one (exact; see
    /// [`Accumulator::merge`]).
    pub fn merge(&mut self, other: &ContentionAccumulator) {
        self.contention_us.merge(&other.contention_us);
        self.ccas.merge(&other.ccas);
        self.collisions.merge(&other.collisions);
        self.access_failures.merge(&other.access_failures);
    }

    /// Finalizes into the model's exchange type.
    pub fn finish(&self) -> ContentionStats {
        ContentionStats {
            mean_contention: Seconds::from_micros(self.contention_us.mean()),
            mean_ccas: self.ccas.mean(),
            pr_collision: self.collisions.ratio(),
            pr_access_failure: self.access_failures.ratio(),
            procedures: self.contention_us.count(),
            transmissions: self.collisions.trials(),
        }
    }
}

/// The four contention quantities the analytical model consumes (paper
/// Figure 6), plus sample counts for error estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContentionStats {
    /// Mean contention duration `T̄_cont` (contention start → transmission
    /// start, or → failure report).
    pub mean_contention: Seconds,
    /// Mean number of clear channel assessments per procedure `N̄_CCA`.
    pub mean_ccas: f64,
    /// Residual collision probability per transmission `Pr_col`.
    pub pr_collision: Probability,
    /// Channel access failure probability per procedure `Pr_cf`.
    pub pr_access_failure: Probability,
    /// Number of contention procedures observed.
    pub procedures: u64,
    /// Number of transmissions observed.
    pub transmissions: u64,
}

impl ContentionStats {
    /// An idealized, collision-free environment: the minimum the procedure
    /// can cost (mean initial backoff of 3.5 slots for BE = 3, two CCAs,
    /// nothing ever busy). Useful as an ablation baseline.
    pub fn ideal() -> Self {
        ContentionStats {
            // Mean backoff (2^3−1)/2 = 3.5 periods + 2 CCA slots.
            mean_contention: Seconds::from_micros(3.5 * 320.0 + 2.0 * 320.0),
            mean_ccas: 2.0,
            pr_collision: Probability::ZERO,
            pr_access_failure: Probability::ZERO,
            procedures: 0,
            transmissions: 0,
        }
    }

    /// Merges statistics from two disjoint sample populations, weighting
    /// means by procedure counts and probabilities by their respective
    /// trial counts.
    ///
    /// Prefer merging [`ContentionAccumulator`]s when the sufficient
    /// statistics are still available — this method reconstructs hit
    /// counts from the published ratios, which is exact only up to
    /// floating-point rounding.
    pub fn merge(&self, other: &ContentionStats) -> ContentionStats {
        if other.procedures == 0 && other.transmissions == 0 {
            return *self;
        }
        if self.procedures == 0 && self.transmissions == 0 {
            return *other;
        }
        let wp_a = self.procedures as f64;
        let wp_b = other.procedures as f64;
        let wp = wp_a + wp_b;
        let wt_a = self.transmissions as f64;
        let wt_b = other.transmissions as f64;
        let wt = wt_a + wt_b;
        let wavg = |a: f64, b: f64, wa: f64, wb: f64, w: f64| {
            if w == 0.0 {
                0.0
            } else {
                (a * wa + b * wb) / w
            }
        };
        ContentionStats {
            mean_contention: Seconds::from_secs(wavg(
                self.mean_contention.secs(),
                other.mean_contention.secs(),
                wp_a,
                wp_b,
                wp,
            )),
            mean_ccas: wavg(self.mean_ccas, other.mean_ccas, wp_a, wp_b, wp),
            pr_collision: Probability::clamped(wavg(
                self.pr_collision.value(),
                other.pr_collision.value(),
                wt_a,
                wt_b,
                wt,
            )),
            pr_access_failure: Probability::clamped(wavg(
                self.pr_access_failure.value(),
                other.pr_access_failure.value(),
                wp_a,
                wp_b,
                wp,
            )),
            procedures: self.procedures + other.procedures,
            transmissions: self.transmissions + other.transmissions,
        }
    }
}

impl fmt::Display for ContentionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T_cont={} N_CCA={:.2} Pr_col={:.4} Pr_cf={:.4} (n={})",
            self.mean_contention,
            self.mean_ccas,
            self.pr_collision.value(),
            self.pr_access_failure.value(),
            self.procedures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_welford_reference() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - 3.0).abs() < 1e-12);
        assert!((acc.population_variance() - 2.0).abs() < 1e-12);
        assert!(acc.standard_error() > 0.0);
    }

    #[test]
    fn accumulator_is_shift_stable() {
        // Welford should not lose precision with a large offset.
        let mut acc = Accumulator::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            acc.push(x);
        }
        assert!((acc.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((acc.population_variance() - 22.5).abs() < 1e-3);
    }

    #[test]
    fn accumulator_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 100.0 + 1e6).collect();
        let mut whole = Accumulator::new();
        for &x in &xs {
            whole.push(x);
        }
        for split in [0, 1, 28, 56, 57] {
            let (mut a, mut b) = (Accumulator::new(), Accumulator::new());
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-6, "split {split}");
            assert!(
                (a.population_variance() - whole.population_variance()).abs() < 1e-6,
                "split {split}"
            );
        }
    }

    #[test]
    fn accumulator_merge_with_empty_is_identity() {
        let mut acc = Accumulator::new();
        acc.push(3.0);
        acc.push(5.0);
        let snapshot = acc;
        acc.merge(&Accumulator::new());
        assert_eq!(acc, snapshot);
        let mut empty = Accumulator::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn accumulator_scaled_matches_scaling_the_samples() {
        let xs = [2.0, 4.0, 4.0, 5.0, 7.0, 9.0];
        let factor = 0.98304;
        let mut raw = Accumulator::new();
        let mut reference = Accumulator::new();
        for &x in &xs {
            raw.push(x);
            reference.push(x * factor);
        }
        let scaled = raw.scaled(factor);
        assert_eq!(scaled.count(), reference.count());
        assert!((scaled.mean() - reference.mean()).abs() < 1e-12);
        assert!((scaled.population_variance() - reference.population_variance()).abs() < 1e-12);
        assert!((scaled.standard_error() - reference.standard_error()).abs() < 1e-12);
    }

    #[test]
    fn counter_standard_error_is_binomial() {
        let mut c = Counter::new();
        assert_eq!(c.standard_error(), 0.0);
        for i in 0..100 {
            c.observe(i < 16);
        }
        let want = (0.16 * 0.84 / 100.0_f64).sqrt();
        assert!((c.standard_error() - want).abs() < 1e-12);
    }

    #[test]
    fn counter_merge_adds_counts() {
        let mut a = Counter::new();
        let mut b = Counter::new();
        for i in 0..7 {
            a.observe(i % 2 == 0);
        }
        for i in 0..5 {
            b.observe(i == 0);
        }
        a.merge(&b);
        assert_eq!(a.trials(), 12);
        assert_eq!(a.hits(), 5);
    }

    #[test]
    fn contention_accumulator_merge_is_exact() {
        let mut whole = ContentionAccumulator::new();
        let (mut left, mut right) = (ContentionAccumulator::new(), ContentionAccumulator::new());
        for i in 0..40u32 {
            let part = if i < 17 { &mut left } else { &mut right };
            for acc in [&mut whole, part] {
                acc.contention_us.push(320.0 * (i % 9) as f64);
                acc.ccas.push(2.0 + (i % 3) as f64);
                acc.access_failures.observe(i % 10 == 0);
                if i % 10 != 0 {
                    acc.collisions.observe(i % 7 == 0);
                }
            }
        }
        left.merge(&right);
        let merged = left.finish();
        let direct = whole.finish();
        assert_eq!(merged.procedures, direct.procedures);
        assert_eq!(merged.transmissions, direct.transmissions);
        assert_eq!(merged.pr_collision, direct.pr_collision);
        assert_eq!(merged.pr_access_failure, direct.pr_access_failure);
        assert!((merged.mean_ccas - direct.mean_ccas).abs() < 1e-12);
    }

    #[test]
    fn contention_stats_merge_weights_by_counts() {
        let a = ContentionStats {
            mean_contention: Seconds::from_micros(1000.0),
            mean_ccas: 2.0,
            pr_collision: Probability::clamped(0.1),
            pr_access_failure: Probability::clamped(0.0),
            procedures: 100,
            transmissions: 100,
        };
        let b = ContentionStats {
            mean_contention: Seconds::from_micros(3000.0),
            mean_ccas: 4.0,
            pr_collision: Probability::clamped(0.3),
            pr_access_failure: Probability::clamped(0.2),
            procedures: 300,
            transmissions: 100,
        };
        let m = a.merge(&b);
        assert_eq!(m.procedures, 400);
        assert_eq!(m.transmissions, 200);
        assert!((m.mean_contention.micros() - 2500.0).abs() < 1e-9);
        assert!((m.mean_ccas - 3.5).abs() < 1e-12);
        assert!((m.pr_collision.value() - 0.2).abs() < 1e-12);
        assert!((m.pr_access_failure.value() - 0.15).abs() < 1e-12);
        // Merging with an empty side is the identity.
        let empty = ContentionStats {
            procedures: 0,
            transmissions: 0,
            ..ContentionStats::ideal()
        };
        assert_eq!(a.merge(&empty), a);
        assert_eq!(empty.merge(&a), a);
    }

    #[test]
    fn counter_ratio() {
        let mut c = Counter::new();
        assert_eq!(c.ratio(), Probability::ZERO);
        for i in 0..10 {
            c.observe(i % 4 == 0);
        }
        assert_eq!(c.hits(), 3);
        assert_eq!(c.trials(), 10);
        assert!((c.ratio().value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ideal_stats_are_contention_free() {
        let s = ContentionStats::ideal();
        assert_eq!(s.pr_collision, Probability::ZERO);
        assert_eq!(s.pr_access_failure, Probability::ZERO);
        assert_eq!(s.mean_ccas, 2.0);
        assert!((s.mean_contention.micros() - 1760.0).abs() < 1e-9);
    }

    #[test]
    fn stats_display() {
        let s = ContentionStats::ideal();
        let txt = s.to_string();
        assert!(txt.contains("N_CCA=2.00"), "{txt}");
    }
}
