//! Statistics accumulators and the contention-statistics exchange type.

use core::fmt;

use wsn_units::{Probability, Seconds};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use wsn_sim::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert!((acc.mean() - 5.0).abs() < 1e-12);
/// assert!((acc.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than two samples).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n as f64 - 1.0) / self.n as f64).sqrt()
        }
    }
}

/// Ratio counter for event probabilities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    hits: u64,
    trials: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Registers a trial, counting it as a hit when `hit` is true.
    pub fn observe(&mut self, hit: bool) {
        self.trials += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Hit ratio (0 when no trials were observed).
    pub fn ratio(&self) -> Probability {
        if self.trials == 0 {
            Probability::ZERO
        } else {
            Probability::clamped(self.hits as f64 / self.trials as f64)
        }
    }
}

/// The four contention quantities the analytical model consumes (paper
/// Figure 6), plus sample counts for error estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContentionStats {
    /// Mean contention duration `T̄_cont` (contention start → transmission
    /// start, or → failure report).
    pub mean_contention: Seconds,
    /// Mean number of clear channel assessments per procedure `N̄_CCA`.
    pub mean_ccas: f64,
    /// Residual collision probability per transmission `Pr_col`.
    pub pr_collision: Probability,
    /// Channel access failure probability per procedure `Pr_cf`.
    pub pr_access_failure: Probability,
    /// Number of contention procedures observed.
    pub procedures: u64,
    /// Number of transmissions observed.
    pub transmissions: u64,
}

impl ContentionStats {
    /// An idealized, collision-free environment: the minimum the procedure
    /// can cost (mean initial backoff of 3.5 slots for BE = 3, two CCAs,
    /// nothing ever busy). Useful as an ablation baseline.
    pub fn ideal() -> Self {
        ContentionStats {
            // Mean backoff (2^3−1)/2 = 3.5 periods + 2 CCA slots.
            mean_contention: Seconds::from_micros(3.5 * 320.0 + 2.0 * 320.0),
            mean_ccas: 2.0,
            pr_collision: Probability::ZERO,
            pr_access_failure: Probability::ZERO,
            procedures: 0,
            transmissions: 0,
        }
    }
}

impl fmt::Display for ContentionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T_cont={} N_CCA={:.2} Pr_col={:.4} Pr_cf={:.4} (n={})",
            self.mean_contention,
            self.mean_ccas,
            self.pr_collision.value(),
            self.pr_access_failure.value(),
            self.procedures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_welford_reference() {
        let mut acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 5);
        assert!((acc.mean() - 3.0).abs() < 1e-12);
        assert!((acc.population_variance() - 2.0).abs() < 1e-12);
        assert!(acc.standard_error() > 0.0);
    }

    #[test]
    fn accumulator_is_shift_stable() {
        // Welford should not lose precision with a large offset.
        let mut acc = Accumulator::new();
        for x in [1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0] {
            acc.push(x);
        }
        assert!((acc.mean() - (1e9 + 10.0)).abs() < 1e-3);
        assert!((acc.population_variance() - 22.5).abs() < 1e-3);
    }

    #[test]
    fn counter_ratio() {
        let mut c = Counter::new();
        assert_eq!(c.ratio(), Probability::ZERO);
        for i in 0..10 {
            c.observe(i % 4 == 0);
        }
        assert_eq!(c.hits(), 3);
        assert_eq!(c.trials(), 10);
        assert!((c.ratio().value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ideal_stats_are_contention_free() {
        let s = ContentionStats::ideal();
        assert_eq!(s.pr_collision, Probability::ZERO);
        assert_eq!(s.pr_access_failure, Probability::ZERO);
        assert_eq!(s.mean_ccas, 2.0);
        assert!((s.mean_contention.micros() - 1760.0).abs() < 1e-9);
    }

    #[test]
    fn stats_display() {
        let s = ContentionStats::ideal();
        let txt = s.to_string();
        assert!(txt.contains("N_CCA=2.00"), "{txt}");
    }
}
