//! Declarative, seed-deterministic fault injection: node churn,
//! coordinator outages, and time-varying load/quality.
//!
//! Every scenario simulated so far was stationary and failure-free. A
//! [`FaultPlan`] opens the time axis: it describes *what can go wrong* —
//! node deaths and rejoins, missed-beacon (coordinator outage) windows,
//! per-round channel-quality drift and downlink burst storms — as pure
//! data attached to a [`Scenario`](crate::scenario::Scenario) and carried
//! into every [`ChannelSimConfig`](crate::contention::ChannelSimConfig).
//! The engine then *draws* the faults from a dedicated RNG stream, so a
//! faulted run is exactly as reproducible as a clean one.
//!
//! ## Determinism contract for fault event ordering
//!
//! Fault injection is part of the engine's bit-determinism contract, not
//! an exception to it:
//!
//! * **Dedicated stream.** All fault draws (deaths, outage starts) come
//!   from one RNG split off the replication's root seed
//!   (`root.split(u64::MAX - 2)`), disjoint from the per-node CSMA
//!   streams, the arrival-offset stream (`u64::MAX`) and the downlink
//!   stream (`u64::MAX - 1`). Fault draws therefore never perturb any
//!   pre-existing stream.
//! * **Fixed draw schedule.** Draws happen at one place only — the beacon
//!   event, in a fixed order: one outage draw per superframe (consumed
//!   even while an outage is already running), then one death draw per
//!   node in node-index order (consumed even for nodes already dead or
//!   dormant). The stream *shape* is thus a pure function of
//!   `(nodes, superframes)`, independent of what the faults did — which
//!   is what keeps a faulted run bit-identical across 1/2/4 runner
//!   threads: each replication's fault history depends only on its own
//!   seed, never on scheduling.
//! * **Deferred deaths.** A node drawn dead mid-procedure (its CSMA
//!   machine or transmission is in flight) finishes the procedure and
//!   dies at its natural end — no event is ever cancelled or reordered in
//!   the calendar queue, so fault injection cannot disturb the queue's
//!   `(time, priority, insertion order)` pop contract.
//! * **Inertness.** [`FaultPlan::inert`] (the `Default`) is a hard no-op:
//!   every fault branch in the engine is gated on the plan being
//!   non-inert, the fault stream is never advanced, and no fault record
//!   reaches the sink — an inert-plan run is bit-identical to one on a
//!   build without the fault subsystem. The golden-diffed figure
//!   binaries pin this across versions.
//!
//! ## What the faults do
//!
//! * **Node churn** (`death_rate`): at each beacon every node draws a
//!   Bernoulli death. A dead node's radio is off: it misses beacons,
//!   schedules no arrivals, and (if it held a GTS) releases its
//!   descriptor through the live [`GtsRegistry`](wsn_mac::gts::GtsRegistry)
//!   so the freed slots re-resolve into the CFP at the next superframe
//!   boundary. After `rejoin_delay` missed superframes the node runs the
//!   re-association exchange (success gated on the channel corruption
//!   oracle), with a bounded budget of `max_join_retries` attempts; an
//!   exhausted node goes dormant instead of spinning. Orphan-scan
//!   listening and the association exchange are charged to the ledger's
//!   `Association` phase.
//! * **Coordinator outages** (`outage_rate` × `outage_superframes`): a
//!   missed-beacon window. No beacon airs, no arrivals/GTS/polls are
//!   scheduled; every alive node wakes, listens the beacon window in
//!   vain (orphan-scan cost) and goes back to sleep.
//! * **Time-varying quality/load** (`drift_amplitude_db`,
//!   `burst_downlink_rate`): per-*round* dynamics for the policy loop —
//!   a triangle-wave path-loss drift and periodic downlink burst storms,
//!   both pure functions of the round index (no RNG at all).

use core::fmt;

/// Declarative fault-injection plan (see the [module docs](self) for the
/// determinism contract).
///
/// The `Default` is [`FaultPlan::inert`]: no churn, no outages, no
/// round dynamics — provably a no-op in the engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-node, per-superframe death probability, drawn at each beacon.
    pub death_rate: f64,
    /// Superframes a dead node stays down before its first
    /// re-association attempt.
    pub rejoin_delay: u32,
    /// Association attempts before a churned node gives up and goes
    /// dormant. `0` makes every death permanent.
    pub max_join_retries: u32,
    /// Per-superframe probability that a coordinator outage window
    /// starts (drawn at each beacon; ignored while a window is running).
    pub outage_rate: f64,
    /// Length of each outage window in superframes.
    pub outage_superframes: u32,
    /// Peak of the triangle-wave per-round path-loss drift in dB
    /// (policy-loop rounds only; `0` disables).
    pub drift_amplitude_db: f64,
    /// Period of the drift triangle wave in rounds.
    pub drift_period_rounds: u32,
    /// Every `burst_every_rounds`-th round is a burst round (the last
    /// round of each period). `0` disables bursts.
    pub burst_every_rounds: u32,
    /// Additional downlink poll rate applied on burst rounds (added to
    /// the traffic spec's rate, clamped to 1).
    pub burst_downlink_rate: f64,
}

impl FaultPlan {
    /// The no-op plan: provably leaves the engine untouched.
    pub fn inert() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing anywhere.
    pub fn is_inert(&self) -> bool {
        self.is_engine_inert() && self.is_round_inert()
    }

    /// `true` when the *event engine* has nothing to inject (churn and
    /// outages off). Round-level dynamics may still be active — they
    /// live entirely in the policy loop.
    pub fn is_engine_inert(&self) -> bool {
        self.death_rate == 0.0 && self.outage_rate == 0.0
    }

    /// `true` when the per-round dynamics (drift, bursts) are off.
    pub fn is_round_inert(&self) -> bool {
        (self.drift_amplitude_db == 0.0 || self.drift_period_rounds == 0)
            && (self.burst_downlink_rate == 0.0 || self.burst_every_rounds == 0)
    }

    /// Adds node churn: `death_rate` deaths per node per superframe,
    /// rejoin after `rejoin_delay` superframes with at most
    /// `max_join_retries` association attempts.
    ///
    /// # Panics
    ///
    /// Panics unless `death_rate` is a probability in `[0, 1)`.
    pub fn with_churn(mut self, death_rate: f64, rejoin_delay: u32, max_join_retries: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&death_rate),
            "death_rate must be in [0,1), got {death_rate}"
        );
        self.death_rate = death_rate;
        self.rejoin_delay = rejoin_delay;
        self.max_join_retries = max_join_retries;
        self
    }

    /// Adds coordinator outages: windows of `superframes` missed beacons
    /// starting with probability `rate` per superframe.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `[0, 1)`, or if `rate > 0` with a
    /// zero-length window.
    pub fn with_outages(mut self, rate: f64, superframes: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "outage_rate must be in [0,1), got {rate}"
        );
        assert!(
            rate == 0.0 || superframes > 0,
            "an outage window must span at least one superframe"
        );
        self.outage_rate = rate;
        self.outage_superframes = superframes;
        self
    }

    /// Adds a triangle-wave per-round path-loss drift peaking at
    /// `amplitude_db` over `period_rounds` rounds.
    pub fn with_drift(mut self, amplitude_db: f64, period_rounds: u32) -> Self {
        self.drift_amplitude_db = amplitude_db;
        self.drift_period_rounds = period_rounds;
        self
    }

    /// Adds downlink burst storms: every `every_rounds`-th round gains
    /// `downlink_rate` extra polling.
    ///
    /// # Panics
    ///
    /// Panics unless `downlink_rate` is in `[0, 1]`.
    pub fn with_bursts(mut self, every_rounds: u32, downlink_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&downlink_rate),
            "burst downlink rate must be in [0,1], got {downlink_rate}"
        );
        self.burst_every_rounds = every_rounds;
        self.burst_downlink_rate = downlink_rate;
        self
    }

    /// Path-loss drift for a policy round in dB: a triangle wave
    /// `0 → amplitude → 0` over [`drift_period_rounds`](Self::drift_period_rounds)
    /// rounds. Round 0 is always drift-free, so a one-round run matches
    /// the static scenario exactly. Pure function of the round index.
    pub fn loss_drift_db(&self, round: u32) -> f64 {
        if self.drift_amplitude_db == 0.0 || self.drift_period_rounds == 0 {
            return 0.0;
        }
        let phase = (round % self.drift_period_rounds) as f64 / self.drift_period_rounds as f64;
        let tri = 1.0 - (2.0 * phase - 1.0).abs();
        self.drift_amplitude_db * tri
    }

    /// Extra downlink poll rate for a policy round: the burst storm on
    /// the last round of each
    /// [`burst_every_rounds`](Self::burst_every_rounds) period, `0`
    /// otherwise. Pure function of the round index.
    pub fn downlink_boost(&self, round: u32) -> f64 {
        if self.burst_downlink_rate == 0.0 || self.burst_every_rounds == 0 {
            return 0.0;
        }
        if round % self.burst_every_rounds == self.burst_every_rounds - 1 {
            self.burst_downlink_rate
        } else {
            0.0
        }
    }
}

/// What kind of fault event a [`FaultRecord`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node's battery died (its radio is now off).
    Death,
    /// The node missed a beacon: `listened` is `true` when it was awake
    /// and spent the beacon window listening in vain (an orphan-scan
    /// cost), `false` when its radio was off (dead or dormant — no
    /// energy, but the beacon-tracking cost must not be charged either).
    MissedBeacon {
        /// Whether the node listened for the missed beacon.
        listened: bool,
    },
    /// A re-association exchange concluded.
    JoinAttempt {
        /// Whether the coordinator's response got through.
        success: bool,
    },
    /// The node re-associated after being down.
    Reassociated {
        /// Superframes from death to successful re-association.
        latency_superframes: u32,
    },
    /// The node exhausted its retry budget and went dormant.
    Dormant,
}

/// One fault event, streamed through
/// [`TraceSink::on_fault`](crate::sink::TraceSink::on_fault) in
/// deterministic engine order (like every other record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Node index.
    pub node: u32,
    /// What happened.
    pub kind: FaultKind,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Death => write!(f, "death"),
            FaultKind::MissedBeacon { listened: true } => write!(f, "missed-beacon (listened)"),
            FaultKind::MissedBeacon { listened: false } => write!(f, "missed-beacon (radio off)"),
            FaultKind::JoinAttempt { success: true } => write!(f, "join-attempt (ok)"),
            FaultKind::JoinAttempt { success: false } => write!(f, "join-attempt (failed)"),
            FaultKind::Reassociated {
                latency_superframes,
            } => write!(f, "reassociated after {latency_superframes} superframes"),
            FaultKind::Dormant => write!(f, "dormant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(p.is_inert());
        assert!(p.is_engine_inert());
        assert!(p.is_round_inert());
        assert_eq!(p, FaultPlan::inert());
        assert_eq!(p.loss_drift_db(17), 0.0);
        assert_eq!(p.downlink_boost(17), 0.0);
    }

    #[test]
    fn builders_flip_the_right_inertness_axis() {
        let churn = FaultPlan::inert().with_churn(0.05, 2, 3);
        assert!(!churn.is_engine_inert());
        assert!(churn.is_round_inert());

        let outage = FaultPlan::inert().with_outages(0.1, 4);
        assert!(!outage.is_engine_inert());

        let drift = FaultPlan::inert().with_drift(6.0, 8);
        assert!(drift.is_engine_inert());
        assert!(!drift.is_round_inert());
        assert!(!drift.is_inert());
    }

    #[test]
    fn drift_is_a_triangle_wave_starting_at_zero() {
        let p = FaultPlan::inert().with_drift(8.0, 8);
        assert_eq!(p.loss_drift_db(0), 0.0, "round 0 must match the static run");
        assert!(
            (p.loss_drift_db(4) - 8.0).abs() < 1e-12,
            "peak at mid-period"
        );
        assert!((p.loss_drift_db(2) - 4.0).abs() < 1e-12);
        assert!((p.loss_drift_db(6) - 4.0).abs() < 1e-12, "falling edge");
        assert_eq!(p.loss_drift_db(8), 0.0, "periodic");
        // Pure function: same round, same drift.
        assert_eq!(p.loss_drift_db(5), p.loss_drift_db(5));
    }

    #[test]
    fn bursts_fire_on_the_last_round_of_each_period() {
        let p = FaultPlan::inert().with_bursts(4, 0.6);
        let boosts: Vec<f64> = (0..8).map(|r| p.downlink_boost(r)).collect();
        assert_eq!(boosts, vec![0.0, 0.0, 0.0, 0.6, 0.0, 0.0, 0.0, 0.6]);
    }

    #[test]
    #[should_panic(expected = "death_rate must be in [0,1)")]
    fn certain_death_rejected() {
        let _ = FaultPlan::inert().with_churn(1.0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one superframe")]
    fn zero_length_outage_rejected() {
        let _ = FaultPlan::inert().with_outages(0.2, 0);
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Death.to_string(), "death");
        assert_eq!(
            FaultKind::Reassociated {
                latency_superframes: 3
            }
            .to_string(),
            "reassociated after 3 superframes"
        );
    }
}
