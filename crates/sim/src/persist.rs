//! Saved scenarios: a dependency-free JSON persistence layer.
//!
//! Every experiment so far was a hand-built [`Scenario`] in a compiled
//! binary. This module makes scenarios *data*: [`save_scenario`] writes a
//! [`SavedScenario`] — the full `Scenario` surface plus an optional
//! closed-loop [`PolicyChoice`] — as a canonical, versioned JSON document
//! (`"format": 1`), and [`load_scenario`] reads one back with typed,
//! position-carrying [`ParseError`] diagnostics. The format is described
//! key by key in the repository's `SCHEMA.md`.
//!
//! serde is offline-gated in this build, so the JSON layer is hand-rolled:
//! a small event-style recursive-descent parser over a [`Node`] tree that
//! records the source line/column of every value, and a canonical writer.
//! Three properties make the format safe to commit as fixtures:
//!
//! * **Canonical output.** [`save_scenario`] emits keys in one fixed
//!   order with one fixed layout, so `save → load → save` is
//!   byte-identical (the `persist_roundtrip` suite pins this for every
//!   committed fixture). Numbers render through Rust's shortest-round-trip
//!   float formatting; integers (seeds included) stay exact through a
//!   dedicated unsigned-integer token, never an `f64`.
//! * **Strictness.** Unknown fields, duplicate keys, missing fields and
//!   wrong types are all rejected with a [`ParseError`] carrying the
//!   offending line and column — a fixture cannot silently drift from the
//!   schema. The `"format"` tag must equal [`FORMAT_VERSION`]; future
//!   revisions bump it rather than reinterpreting format-1 keys.
//! * **Completeness.** The document round-trips everything
//!   [`Scenario`] carries: deployment geometry, channel allocation,
//!   per-channel traffic (payloads, GTS demand, downlink), the BER choice
//!   with per-channel noise/loss offsets, CSMA/retry/beacon parameters,
//!   the transmit-power policy, the fault plan, replications, the master
//!   seed and shard count — plus the allocation-policy choice by name.
//!
//! The batch driver ([`crate::batch`]) executes directories or manifests
//! of saved scenarios as one deterministic job grid.

use std::fmt;

use wsn_mac::csma::CsmaParams;
use wsn_mac::{BeaconOrder, RetryPolicy};
use wsn_radio::{RadioModel, TxPowerLevel};
use wsn_units::{DBm, Seconds};

use crate::faults::FaultPlan;
use crate::network::TxPowerPolicy;
use crate::policy::{AllocationPolicy, GreedyRebalance, ProportionalFair, StaticAllocation};
use crate::scenario::{BerChoice, ChannelAllocation, DeploymentSpec, PayloadSpec, Scenario};
use crate::scenario::TrafficSpec;

/// The saved-scenario format revision this build writes and accepts.
pub const FORMAT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Typed diagnostics
// ---------------------------------------------------------------------------

/// A parse or decode failure, pointing at the offending source position.
///
/// `line` and `col` are 1-based; `col` counts characters. `expected`
/// describes what the parser or schema decoder required at that position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token or value.
    pub line: u32,
    /// 1-based character column within that line.
    pub col: u32,
    /// What was required at that position (token class, type, or field).
    pub expected: String,
}

impl ParseError {
    fn at(line: u32, col: u32, expected: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            expected: expected.into(),
        }
    }

    fn node(node: &Node, expected: impl Into<String>) -> Self {
        ParseError::at(node.line, node.col, expected)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: expected {}", self.line, self.col, self.expected)
    }
}

impl std::error::Error for ParseError {}

/// A save failure: the scenario holds state format 1 cannot represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SaveError {
    /// The radio model is not the CC2420 characterization — format 1
    /// names radios rather than spelling out their power tables.
    UnsupportedRadio,
    /// A floating-point field is NaN or infinite.
    NonFinite(&'static str),
}

impl fmt::Display for SaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveError::UnsupportedRadio => {
                write!(f, "format 1 only names the cc2420 radio model")
            }
            SaveError::NonFinite(field) => {
                write!(f, "field `{field}` is not a finite number")
            }
        }
    }
}

impl std::error::Error for SaveError {}

// ---------------------------------------------------------------------------
// The JSON value model
// ---------------------------------------------------------------------------

/// An object key with its source position (for unknown-field diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Key {
    /// The key text.
    pub name: String,
    /// 1-based line of the key token.
    pub line: u32,
    /// 1-based column of the key token.
    pub col: u32,
}

/// A parsed JSON value.
///
/// Numbers split into [`Value::UInt`] (an unsigned integer token — exact
/// for 64-bit seeds) and [`Value::Float`] (everything signed, fractional
/// or exponent-bearing); decoders accept either where a float is wanted.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer token (no sign, fraction or exponent).
    UInt(u64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Node>),
    /// An object: ordered key/value pairs (duplicates rejected at parse).
    Obj(Vec<(Key, Node)>),
}

/// A [`Value`] plus the source position where it began.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// 1-based source line.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
    /// The value.
    pub value: Value,
}

impl Node {
    fn synth(value: Value) -> Node {
        Node {
            line: 0,
            col: 0,
            value,
        }
    }

    fn type_name(&self) -> &'static str {
        match self.value {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::UInt(_) | Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        }
    }
}

/// Builders for synthesized (position-less) [`Node`] trees — the shared
/// JSON-line construction util behind the batch result records
/// ([`crate::batch`]), the progress journal ([`crate::journal`]) and the
/// telemetry snapshot stream ([`crate::telemetry`]). Keys and nodes carry
/// line/column 0 (they come from no source file), and one escaping /
/// encoding path — [`render_compact`] — serves every emitter.
pub mod json {
    use super::{Key, Node, Value};

    /// A synthesized object key.
    pub fn key(name: &str) -> Key {
        Key {
            name: name.to_string(),
            line: 0,
            col: 0,
        }
    }

    /// A synthesized node wrapping `value`.
    pub fn node(value: Value) -> Node {
        Node {
            line: 0,
            col: 0,
            value,
        }
    }

    /// An object node from ordered `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Node)>) -> Node {
        node(Value::Obj(
            pairs.into_iter().map(|(k, v)| (key(k), v)).collect(),
        ))
    }

    /// An array node.
    pub fn arr(items: Vec<Node>) -> Node {
        node(Value::Arr(items))
    }

    /// A string node.
    pub fn string(s: &str) -> Node {
        node(Value::Str(s.to_string()))
    }

    /// An unsigned-integer node (exact — never routed through `f64`).
    pub fn uint(v: u64) -> Node {
        node(Value::UInt(v))
    }

    /// A number node; non-finite values become `null` (records are data
    /// streams — refuse nothing at emit time).
    pub fn num(x: f64) -> Node {
        if x.is_finite() {
            node(Value::Float(x))
        } else {
            node(Value::Null)
        }
    }

    /// A boolean node.
    pub fn boolean(b: bool) -> Node {
        node(Value::Bool(b))
    }

    /// A `null` node.
    pub fn null() -> Node {
        node(Value::Null)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Node`] tree.
///
/// Accepts the JSON grammar with two deliberate restrictions: duplicate
/// object keys are an error (they would make "last writer wins" silently
/// drop data), and non-finite numbers cannot be written, hence never read.
///
/// # Errors
///
/// Returns a [`ParseError`] at the first offending character.
pub fn parse_document(text: &str) -> Result<Node, ParseError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let node = p.value()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(ParseError::at(p.line, p.col, "end of document"));
    }
    Ok(node)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Parser {
    fn new(text: &str) -> Self {
        Parser {
            chars: text.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn err(&self, expected: impl Into<String>) -> ParseError {
        ParseError::at(self.line, self.col, expected)
    }

    fn expect(&mut self, want: char) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == want => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err(format!("`{want}`"))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        for want in word.chars() {
            match self.peek() {
                Some(c) if c == want => {
                    self.bump();
                }
                _ => return Err(self.err(format!("`{word}`"))),
            }
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Node, ParseError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let value = match self.peek() {
            None => return Err(self.err("a value")),
            Some('n') => self.literal("null", Value::Null)?,
            Some('t') => self.literal("true", Value::Bool(true))?,
            Some('f') => self.literal("false", Value::Bool(false))?,
            Some('"') => Value::Str(self.string()?),
            Some('[') => self.array()?,
            Some('{') => self.object()?,
            Some(c) if c == '-' || c.is_ascii_digit() => self.number()?,
            Some(_) => return Err(self.err("a value")),
        };
        Ok(Node { line, col, value })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("closing `\"`")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("four hex digits after `\\u`"))?;
                            code = code * 16 + d;
                        }
                        let c = char::from_u32(code)
                            .ok_or_else(|| self.err("a valid unicode escape"))?;
                        out.push(c);
                    }
                    _ => return Err(self.err("a string escape")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(self.err("no raw control characters in strings"))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let (line, col) = (self.line, self.col);
        let mut raw = String::new();
        let mut plain_uint = true;
        if self.peek() == Some('-') {
            plain_uint = false;
            raw.push(self.bump().unwrap());
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("a digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            raw.push(self.bump().unwrap());
        }
        if self.peek() == Some('.') {
            plain_uint = false;
            raw.push(self.bump().unwrap());
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                raw.push(self.bump().unwrap());
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            plain_uint = false;
            raw.push(self.bump().unwrap());
            if matches!(self.peek(), Some('+' | '-')) {
                raw.push(self.bump().unwrap());
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("a digit in the exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                raw.push(self.bump().unwrap());
            }
        }
        if plain_uint {
            if let Ok(u) = raw.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        let x: f64 = raw
            .parse()
            .map_err(|_| ParseError::at(line, col, "a number"))?;
        if !x.is_finite() {
            return Err(ParseError::at(line, col, "a finite number"));
        }
        Ok(Value::Float(x))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("`,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect('{')?;
        let mut pairs: Vec<(Key, Node)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let (kline, kcol) = (self.line, self.col);
            if self.peek() != Some('"') {
                return Err(self.err("a string object key"));
            }
            let name = self.string()?;
            if pairs.iter().any(|(k, _)| k.name == name) {
                return Err(ParseError::at(
                    kline,
                    kcol,
                    format!("no duplicate key `{name}`"),
                ));
            }
            self.skip_ws();
            self.expect(':')?;
            let node = self.value()?;
            pairs.push((
                Key {
                    name,
                    line: kline,
                    col: kcol,
                },
                node,
            ));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some('}') => {
                    self.bump();
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("`,` or `}`")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Renders a [`Node`] tree in the canonical layout: 2-space indentation,
/// one key per line, trailing newline. [`save_scenario`] renders through
/// this, so re-rendering a parsed document reproduces it byte for byte.
pub fn render_document(node: &Node) -> String {
    let mut out = String::new();
    write_node(node, &mut out, 0);
    out.push('\n');
    out
}

/// Renders a [`Node`] tree on one line (the streamed result-record form).
pub fn render_compact(node: &Node) -> String {
    let mut out = String::new();
    write_compact(node, &mut out);
    out
}

fn write_scalar(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => out.push_str(&format!("{x}")),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Arr(_) | Value::Obj(_) => unreachable!("containers handled by the caller"),
    }
}

fn write_node(node: &Node, out: &mut String, indent: usize) {
    match &node.value {
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_node(item, out, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, value)) in pairs.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_scalar(&Value::Str(key.name.clone()), out);
                out.push_str(": ");
                write_node(value, out, indent + 1);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        scalar => write_scalar(scalar, out),
    }
}

fn write_compact(node: &Node, out: &mut String) {
    match &node.value {
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_scalar(&Value::Str(key.name.clone()), out);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
        scalar => write_scalar(scalar, out),
    }
}

// ---------------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------------

/// A strict object reader: required fields, type checks, and an
/// unknown-field sweep on [`finish`](ObjReader::finish).
struct ObjReader<'a> {
    ctx: &'static str,
    line: u32,
    col: u32,
    pairs: &'a [(Key, Node)],
    used: Vec<bool>,
}

impl<'a> ObjReader<'a> {
    fn new(node: &'a Node, ctx: &'static str) -> Result<Self, ParseError> {
        match &node.value {
            Value::Obj(pairs) => Ok(ObjReader {
                ctx,
                line: node.line,
                col: node.col,
                pairs,
                used: vec![false; pairs.len()],
            }),
            _ => Err(ParseError::node(
                node,
                format!("an object ({}), found {}", ctx, node.type_name()),
            )),
        }
    }

    fn get(&mut self, key: &str) -> Result<&'a Node, ParseError> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k.name == key {
                self.used[i] = true;
                return Ok(v);
            }
        }
        Err(ParseError::at(
            self.line,
            self.col,
            format!("field `{key}` in {}", self.ctx),
        ))
    }

    fn finish(self) -> Result<(), ParseError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.used[i] {
                return Err(ParseError::at(
                    k.line,
                    k.col,
                    format!("no field `{}` in {}", k.name, self.ctx),
                ));
            }
        }
        Ok(())
    }
}

fn as_f64(node: &Node) -> Result<f64, ParseError> {
    match node.value {
        Value::Float(x) => Ok(x),
        Value::UInt(u) => Ok(u as f64),
        _ => Err(ParseError::node(
            node,
            format!("a number, found {}", node.type_name()),
        )),
    }
}

fn as_u64(node: &Node) -> Result<u64, ParseError> {
    match node.value {
        Value::UInt(u) => Ok(u),
        _ => Err(ParseError::node(
            node,
            format!("a non-negative integer, found {}", node.type_name()),
        )),
    }
}

fn as_u32(node: &Node) -> Result<u32, ParseError> {
    u32::try_from(as_u64(node)?)
        .map_err(|_| ParseError::node(node, "an integer within 32 bits"))
}

fn as_u8(node: &Node) -> Result<u8, ParseError> {
    u8::try_from(as_u64(node)?).map_err(|_| ParseError::node(node, "an integer within 8 bits"))
}

fn as_usize(node: &Node) -> Result<usize, ParseError> {
    usize::try_from(as_u64(node)?).map_err(|_| ParseError::node(node, "an unsigned integer"))
}

fn as_bool(node: &Node) -> Result<bool, ParseError> {
    match node.value {
        Value::Bool(b) => Ok(b),
        _ => Err(ParseError::node(
            node,
            format!("a boolean, found {}", node.type_name()),
        )),
    }
}

fn as_str(node: &Node) -> Result<&str, ParseError> {
    match &node.value {
        Value::Str(s) => Ok(s),
        _ => Err(ParseError::node(
            node,
            format!("a string, found {}", node.type_name()),
        )),
    }
}

fn as_arr(node: &Node) -> Result<&[Node], ParseError> {
    match &node.value {
        Value::Arr(items) => Ok(items),
        _ => Err(ParseError::node(
            node,
            format!("an array, found {}", node.type_name()),
        )),
    }
}

fn is_null(node: &Node) -> bool {
    matches!(node.value, Value::Null)
}

// ---------------------------------------------------------------------------
// The saved-scenario surface
// ---------------------------------------------------------------------------

/// The allocation policy a saved scenario asks the batch driver to run,
/// identified by name (the [`AllocationPolicy::name`] strings).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyChoice {
    /// `"static"` — the open-loop baseline, run for `rounds` rounds.
    Static {
        /// Closed-loop round budget.
        rounds: u32,
    },
    /// `"greedy-rebalance"` with its full parameter surface.
    Greedy {
        /// Closed-loop round budget.
        rounds: u32,
        /// Most nodes moved per round.
        max_moves: u32,
        /// Failure-gap stability tolerance.
        tolerance: f64,
        /// ε-damping hysteresis per executed move round.
        move_cost: f64,
    },
    /// `"proportional-fair"` with its smoothing ε.
    ProportionalFair {
        /// Closed-loop round budget.
        rounds: u32,
        /// Failure-ratio smoothing ε.
        epsilon: f64,
    },
}

impl PolicyChoice {
    /// The policy's wire name (matches [`AllocationPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyChoice::Static { .. } => "static",
            PolicyChoice::Greedy { .. } => "greedy-rebalance",
            PolicyChoice::ProportionalFair { .. } => "proportional-fair",
        }
    }

    /// The closed-loop round budget.
    pub fn rounds(&self) -> u32 {
        match *self {
            PolicyChoice::Static { rounds }
            | PolicyChoice::Greedy { rounds, .. }
            | PolicyChoice::ProportionalFair { rounds, .. } => rounds,
        }
    }

    /// Instantiates the named policy with its saved parameters.
    pub fn build(&self) -> Box<dyn AllocationPolicy + Send> {
        match *self {
            PolicyChoice::Static { .. } => Box::new(StaticAllocation),
            PolicyChoice::Greedy {
                max_moves,
                tolerance,
                move_cost,
                ..
            } => Box::new(
                GreedyRebalance::new(max_moves as usize)
                    .with_tolerance(tolerance)
                    .with_move_cost(move_cost),
            ),
            PolicyChoice::ProportionalFair { epsilon, .. } => {
                Box::new(ProportionalFair { epsilon })
            }
        }
    }
}

/// A scenario as stored on disk: the full [`Scenario`] surface plus the
/// optional closed-loop [`PolicyChoice`] the batch driver should run it
/// under (`None` = one open-loop grid).
#[derive(Debug, Clone, PartialEq)]
pub struct SavedScenario {
    /// The experiment itself.
    pub scenario: Scenario,
    /// The allocation policy to close the loop with, if any.
    pub policy: Option<PolicyChoice>,
}

impl SavedScenario {
    /// Wraps a scenario with no closed-loop policy.
    pub fn open_loop(scenario: Scenario) -> Self {
        SavedScenario {
            scenario,
            policy: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn key(name: &str) -> Key {
    Key {
        name: name.to_string(),
        line: 0,
        col: 0,
    }
}

fn obj(pairs: Vec<(&str, Node)>) -> Node {
    Node::synth(Value::Obj(
        pairs.into_iter().map(|(k, v)| (key(k), v)).collect(),
    ))
}

fn uint(u: u64) -> Node {
    Node::synth(Value::UInt(u))
}

fn num(field: &'static str, x: f64) -> Result<Node, SaveError> {
    if !x.is_finite() {
        return Err(SaveError::NonFinite(field));
    }
    Ok(Node::synth(Value::Float(x)))
}

fn string(s: &str) -> Node {
    Node::synth(Value::Str(s.to_string()))
}

fn null() -> Node {
    Node::synth(Value::Null)
}

fn level_dbm(level: TxPowerLevel) -> i64 {
    level.output_power().dbm() as i64
}

fn level_from_dbm(node: &Node) -> Result<TxPowerLevel, ParseError> {
    let dbm = as_f64(node)?;
    TxPowerLevel::ALL
        .into_iter()
        .find(|l| l.output_power().dbm() == dbm)
        .ok_or_else(|| {
            ParseError::node(
                node,
                "a CC2420 output level (-25, -15, -10, -7, -5, -3, -1 or 0 dBm)",
            )
        })
}

fn dbm_node(field: &'static str, x: f64) -> Result<Node, SaveError> {
    if !x.is_finite() {
        return Err(SaveError::NonFinite(field));
    }
    // Integral dBm values render without a fraction either way; route
    // through Float so -25 and -25.5 share one code path.
    Ok(Node::synth(Value::Float(x)))
}

fn encode_deployment(d: &DeploymentSpec) -> Result<Node, SaveError> {
    Ok(match d {
        DeploymentSpec::UniformLossGrid { min_db, max_db } => obj(vec![
            ("kind", string("uniform_loss_grid")),
            ("min_db", num("deployment.min_db", *min_db)?),
            ("max_db", num("deployment.max_db", *max_db)?),
        ]),
        DeploymentSpec::Disc {
            radius_m,
            exponent,
            shadowing_db,
        } => obj(vec![
            ("kind", string("disc")),
            ("radius_m", num("deployment.radius_m", *radius_m)?),
            ("exponent", num("deployment.exponent", *exponent)?),
            ("shadowing_db", num("deployment.shadowing_db", *shadowing_db)?),
        ]),
        DeploymentSpec::Rings {
            radii_m,
            exponent,
            shadowing_db,
        } => {
            let radii = radii_m
                .iter()
                .map(|&r| num("deployment.radii_m", r))
                .collect::<Result<Vec<_>, _>>()?;
            obj(vec![
                ("kind", string("rings")),
                ("radii_m", Node::synth(Value::Arr(radii))),
                ("exponent", num("deployment.exponent", *exponent)?),
                ("shadowing_db", num("deployment.shadowing_db", *shadowing_db)?),
            ])
        }
        DeploymentSpec::Clustered {
            field_radius_m,
            cluster_radius_m,
            exponent,
            shadowing_db,
        } => obj(vec![
            ("kind", string("clustered")),
            (
                "field_radius_m",
                num("deployment.field_radius_m", *field_radius_m)?,
            ),
            (
                "cluster_radius_m",
                num("deployment.cluster_radius_m", *cluster_radius_m)?,
            ),
            ("exponent", num("deployment.exponent", *exponent)?),
            ("shadowing_db", num("deployment.shadowing_db", *shadowing_db)?),
        ]),
    })
}

fn encode_ber(b: &BerChoice) -> Result<Node, SaveError> {
    Ok(match b {
        BerChoice::EmpiricalCc2420 => obj(vec![("kind", string("empirical_cc2420"))]),
        BerChoice::HardDecisionDsss { noise_figure_db } => obj(vec![
            ("kind", string("hard_decision_dsss")),
            (
                "noise_figure_db",
                num("ber.noise_figure_db", *noise_figure_db)?,
            ),
        ]),
        BerChoice::StandardOqpsk { noise_figure_db } => obj(vec![
            ("kind", string("standard_oqpsk")),
            (
                "noise_figure_db",
                num("ber.noise_figure_db", *noise_figure_db)?,
            ),
        ]),
    })
}

fn encode_tx_policy(p: &TxPowerPolicy) -> Result<Node, SaveError> {
    Ok(match p {
        TxPowerPolicy::Fixed(level) => obj(vec![
            ("kind", string("fixed")),
            ("level_dbm", Node::synth(Value::Float(level_dbm(*level) as f64))),
        ]),
        TxPowerPolicy::ChannelInversion { target_rx } => obj(vec![
            ("kind", string("channel_inversion")),
            ("target_rx_dbm", dbm_node("tx_policy.target_rx_dbm", target_rx.dbm())?),
        ]),
        TxPowerPolicy::PerNode(levels) => {
            let items = levels
                .iter()
                .map(|&l| Node::synth(Value::Float(level_dbm(l) as f64)))
                .collect();
            obj(vec![
                ("kind", string("per_node")),
                ("levels_dbm", Node::synth(Value::Arr(items))),
            ])
        }
    })
}

fn encode_policy(p: &PolicyChoice) -> Result<Node, SaveError> {
    Ok(match *p {
        PolicyChoice::Static { rounds } => obj(vec![
            ("name", string("static")),
            ("rounds", uint(rounds as u64)),
        ]),
        PolicyChoice::Greedy {
            rounds,
            max_moves,
            tolerance,
            move_cost,
        } => obj(vec![
            ("name", string("greedy-rebalance")),
            ("rounds", uint(rounds as u64)),
            ("max_moves", uint(max_moves as u64)),
            ("tolerance", num("policy.tolerance", tolerance)?),
            ("move_cost", num("policy.move_cost", move_cost)?),
        ]),
        PolicyChoice::ProportionalFair { rounds, epsilon } => obj(vec![
            ("name", string("proportional-fair")),
            ("rounds", uint(rounds as u64)),
            ("epsilon", num("policy.epsilon", epsilon)?),
        ]),
    })
}

/// Encodes a [`SavedScenario`] as a canonical format-1 [`Node`] tree.
///
/// # Errors
///
/// Returns a [`SaveError`] for state format 1 cannot represent (a
/// non-CC2420 radio model, non-finite numbers).
pub fn encode_scenario(saved: &SavedScenario) -> Result<Node, SaveError> {
    let s = &saved.scenario;
    if s.radio != RadioModel::cc2420() {
        return Err(SaveError::UnsupportedRadio);
    }
    let payloads = match &s.traffic.payloads {
        PayloadSpec::Uniform { payload_bytes } => uint(*payload_bytes as u64),
        PayloadSpec::PerChannel { payload_bytes } => Node::synth(Value::Arr(
            payload_bytes.iter().map(|&b| uint(b as u64)).collect(),
        )),
    };
    let traffic = obj(vec![
        ("payload_bytes", payloads),
        ("gts_slots_per_node", uint(s.traffic.gts_slots_per_node as u64)),
        (
            "gts_demand",
            match s.traffic.gts_demand {
                Some(n) => uint(n as u64),
                None => null(),
            },
        ),
        (
            "downlink_rate",
            num("traffic.downlink_rate", s.traffic.downlink_rate)?,
        ),
    ]);
    let csma = obj(vec![
        ("min_be", uint(s.csma.min_be as u64)),
        ("max_be", uint(s.csma.max_be as u64)),
        ("max_backoffs", uint(s.csma.max_backoffs as u64)),
        ("cw", uint(s.csma.cw as u64)),
    ]);
    let f = &s.faults;
    let faults = obj(vec![
        ("death_rate", num("faults.death_rate", f.death_rate)?),
        ("rejoin_delay", uint(f.rejoin_delay as u64)),
        ("max_join_retries", uint(f.max_join_retries as u64)),
        ("outage_rate", num("faults.outage_rate", f.outage_rate)?),
        ("outage_superframes", uint(f.outage_superframes as u64)),
        (
            "drift_amplitude_db",
            num("faults.drift_amplitude_db", f.drift_amplitude_db)?,
        ),
        ("drift_period_rounds", uint(f.drift_period_rounds as u64)),
        ("burst_every_rounds", uint(f.burst_every_rounds as u64)),
        (
            "burst_downlink_rate",
            num("faults.burst_downlink_rate", f.burst_downlink_rate)?,
        ),
    ]);
    let channel_ber = match &s.channel_ber {
        None => null(),
        Some(bers) => Node::synth(Value::Arr(
            bers.iter().map(encode_ber).collect::<Result<_, _>>()?,
        )),
    };
    let channel_loss_offsets = match &s.channel_loss_offsets_db {
        None => null(),
        Some(offsets) => Node::synth(Value::Arr(
            offsets
                .iter()
                .map(|&o| num("channel_loss_offsets_db", o))
                .collect::<Result<_, _>>()?,
        )),
    };
    let allocation = match s.allocation {
        ChannelAllocation::RoundRobin => "round_robin",
        ChannelAllocation::Contiguous => "contiguous",
        ChannelAllocation::RingStratified => "ring_stratified",
    };
    Ok(obj(vec![
        ("format", uint(FORMAT_VERSION)),
        ("name", string(&s.name)),
        ("channels", uint(s.channels as u64)),
        ("nodes_per_channel", uint(s.nodes_per_channel as u64)),
        ("deployment", encode_deployment(&s.deployment)?),
        ("allocation", string(allocation)),
        ("traffic", traffic),
        ("beacon_order", uint(s.beacon_order.value() as u64)),
        ("csma", csma),
        ("max_transmissions", uint(s.retries.n_max() as u64)),
        ("superframes", uint(s.superframes as u64)),
        ("replications", uint(s.replications as u64)),
        ("seed", uint(s.seed)),
        ("radio", string("cc2420")),
        ("tx_policy", encode_tx_policy(&s.tx_policy)?),
        (
            "coordinator_tx_dbm",
            dbm_node("coordinator_tx_dbm", s.coordinator_tx.dbm())?,
        ),
        (
            "wakeup_margin_s",
            num("wakeup_margin_s", s.wakeup_margin.secs())?,
        ),
        ("ber", encode_ber(&s.ber)?),
        ("channel_ber", channel_ber),
        ("channel_loss_offsets_db", channel_loss_offsets),
        ("min_cap_slots", uint(s.min_cap_slots as u64)),
        (
            "synchronized_arrivals",
            Node::synth(Value::Bool(s.synchronized_arrivals)),
        ),
        ("faults", faults),
        ("shards", uint(s.shards as u64)),
        (
            "policy",
            match &saved.policy {
                None => null(),
                Some(p) => encode_policy(p)?,
            },
        ),
    ]))
}

/// Serializes a [`SavedScenario`] as the canonical format-1 document.
///
/// # Errors
///
/// Returns a [`SaveError`] for state format 1 cannot represent.
pub fn save_scenario(saved: &SavedScenario) -> Result<String, SaveError> {
    Ok(render_document(&encode_scenario(saved)?))
}

/// Stable config fingerprint: FNV-1a 64 over the canonical format-1
/// rendering, printed as 16 lowercase hex digits.
///
/// The canonical rendering already embeds every field that affects a run —
/// including the seed and the policy choice — so two saved scenarios share a
/// fingerprint exactly when a batch would produce bit-identical records for
/// them. The resume journal matches on this value: a changed file gets a new
/// fingerprint and is re-run instead of being skipped.
///
/// Scenarios format 1 cannot represent still get a digest (over the debug
/// rendering, which `save_scenario` never emits), so they never collide with
/// a journaled fingerprint and are always re-run.
pub fn fingerprint_scenario(saved: &SavedScenario) -> String {
    let text = match save_scenario(saved) {
        Ok(text) => text,
        Err(e) => format!("unsaveable:{e}:{saved:?}"),
    };
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in text.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{hash:016x}")
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn decode_deployment(node: &Node) -> Result<DeploymentSpec, ParseError> {
    let mut o = ObjReader::new(node, "`deployment`")?;
    let kind_node = o.get("kind")?;
    let spec = match as_str(kind_node)? {
        "uniform_loss_grid" => DeploymentSpec::UniformLossGrid {
            min_db: as_f64(o.get("min_db")?)?,
            max_db: as_f64(o.get("max_db")?)?,
        },
        "disc" => DeploymentSpec::Disc {
            radius_m: as_f64(o.get("radius_m")?)?,
            exponent: as_f64(o.get("exponent")?)?,
            shadowing_db: as_f64(o.get("shadowing_db")?)?,
        },
        "rings" => DeploymentSpec::Rings {
            radii_m: as_arr(o.get("radii_m")?)?
                .iter()
                .map(as_f64)
                .collect::<Result<_, _>>()?,
            exponent: as_f64(o.get("exponent")?)?,
            shadowing_db: as_f64(o.get("shadowing_db")?)?,
        },
        "clustered" => DeploymentSpec::Clustered {
            field_radius_m: as_f64(o.get("field_radius_m")?)?,
            cluster_radius_m: as_f64(o.get("cluster_radius_m")?)?,
            exponent: as_f64(o.get("exponent")?)?,
            shadowing_db: as_f64(o.get("shadowing_db")?)?,
        },
        _ => {
            return Err(ParseError::node(
                kind_node,
                "a deployment kind (`uniform_loss_grid`, `disc`, `rings` or `clustered`)",
            ))
        }
    };
    o.finish()?;
    Ok(spec)
}

fn decode_ber(node: &Node) -> Result<BerChoice, ParseError> {
    let mut o = ObjReader::new(node, "`ber`")?;
    let kind_node = o.get("kind")?;
    let ber = match as_str(kind_node)? {
        "empirical_cc2420" => BerChoice::EmpiricalCc2420,
        "hard_decision_dsss" => BerChoice::HardDecisionDsss {
            noise_figure_db: as_f64(o.get("noise_figure_db")?)?,
        },
        "standard_oqpsk" => BerChoice::StandardOqpsk {
            noise_figure_db: as_f64(o.get("noise_figure_db")?)?,
        },
        _ => {
            return Err(ParseError::node(
                kind_node,
                "a BER kind (`empirical_cc2420`, `hard_decision_dsss` or `standard_oqpsk`)",
            ))
        }
    };
    o.finish()?;
    Ok(ber)
}

fn decode_tx_policy(node: &Node) -> Result<TxPowerPolicy, ParseError> {
    let mut o = ObjReader::new(node, "`tx_policy`")?;
    let kind_node = o.get("kind")?;
    let policy = match as_str(kind_node)? {
        "fixed" => TxPowerPolicy::Fixed(level_from_dbm(o.get("level_dbm")?)?),
        "channel_inversion" => TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(as_f64(o.get("target_rx_dbm")?)?),
        },
        "per_node" => {
            let levels: Vec<TxPowerLevel> = as_arr(o.get("levels_dbm")?)?
                .iter()
                .map(level_from_dbm)
                .collect::<Result<_, _>>()?;
            TxPowerPolicy::PerNode(levels.into())
        }
        _ => {
            return Err(ParseError::node(
                kind_node,
                "a tx-policy kind (`fixed`, `channel_inversion` or `per_node`)",
            ))
        }
    };
    o.finish()?;
    Ok(policy)
}

fn decode_policy(node: &Node) -> Result<PolicyChoice, ParseError> {
    let mut o = ObjReader::new(node, "`policy`")?;
    let name_node = o.get("name")?;
    let rounds_node = o.get("rounds")?;
    let rounds = as_u32(rounds_node)?;
    if rounds == 0 {
        return Err(ParseError::node(rounds_node, "at least one policy round"));
    }
    let choice = match as_str(name_node)? {
        "static" => PolicyChoice::Static { rounds },
        "greedy-rebalance" => PolicyChoice::Greedy {
            rounds,
            max_moves: as_u32(o.get("max_moves")?)?,
            tolerance: as_f64(o.get("tolerance")?)?,
            move_cost: as_f64(o.get("move_cost")?)?,
        },
        "proportional-fair" => PolicyChoice::ProportionalFair {
            rounds,
            epsilon: as_f64(o.get("epsilon")?)?,
        },
        _ => {
            return Err(ParseError::node(
                name_node,
                "a policy name (`static`, `greedy-rebalance` or `proportional-fair`)",
            ))
        }
    };
    o.finish()?;
    Ok(choice)
}

fn decode_traffic(node: &Node) -> Result<TrafficSpec, ParseError> {
    let mut o = ObjReader::new(node, "`traffic`")?;
    let payloads_node = o.get("payload_bytes")?;
    let payloads = match &payloads_node.value {
        Value::UInt(_) => PayloadSpec::Uniform {
            payload_bytes: as_usize(payloads_node)?,
        },
        Value::Arr(items) => PayloadSpec::PerChannel {
            payload_bytes: items.iter().map(as_usize).collect::<Result<_, _>>()?,
        },
        _ => {
            return Err(ParseError::node(
                payloads_node,
                "a payload byte count or one per channel",
            ))
        }
    };
    let gts_demand_node = o.get("gts_demand")?;
    let gts_demand = if is_null(gts_demand_node) {
        None
    } else {
        Some(as_u32(gts_demand_node)?)
    };
    let traffic = TrafficSpec {
        payloads,
        gts_slots_per_node: as_u8(o.get("gts_slots_per_node")?)?,
        gts_demand,
        downlink_rate: as_f64(o.get("downlink_rate")?)?,
    };
    o.finish()?;
    Ok(traffic)
}

fn decode_faults(node: &Node) -> Result<FaultPlan, ParseError> {
    let mut o = ObjReader::new(node, "`faults`")?;
    let plan = FaultPlan {
        death_rate: as_f64(o.get("death_rate")?)?,
        rejoin_delay: as_u32(o.get("rejoin_delay")?)?,
        max_join_retries: as_u32(o.get("max_join_retries")?)?,
        outage_rate: as_f64(o.get("outage_rate")?)?,
        outage_superframes: as_u32(o.get("outage_superframes")?)?,
        drift_amplitude_db: as_f64(o.get("drift_amplitude_db")?)?,
        drift_period_rounds: as_u32(o.get("drift_period_rounds")?)?,
        burst_every_rounds: as_u32(o.get("burst_every_rounds")?)?,
        burst_downlink_rate: as_f64(o.get("burst_downlink_rate")?)?,
    };
    o.finish()?;
    Ok(plan)
}

/// Decodes a parsed format-1 document into a [`SavedScenario`].
///
/// # Errors
///
/// Returns a [`ParseError`] at the offending node for unknown fields,
/// missing fields, wrong types, out-of-range values or an unsupported
/// `"format"` tag. Structural consistency beyond per-field ranges (loads,
/// list lengths) is [`Scenario::validate`]'s job.
pub fn decode_scenario(root: &Node) -> Result<SavedScenario, ParseError> {
    let mut o = ObjReader::new(root, "the scenario document")?;
    let format_node = o.get("format")?;
    let format = as_u64(format_node)?;
    if format != FORMAT_VERSION {
        return Err(ParseError::node(
            format_node,
            format!("format {FORMAT_VERSION} (found {format})"),
        ));
    }

    let name = as_str(o.get("name")?)?.to_string();
    let channels = as_usize(o.get("channels")?)?;
    let nodes_per_channel = as_usize(o.get("nodes_per_channel")?)?;
    let deployment = decode_deployment(o.get("deployment")?)?;

    let allocation_node = o.get("allocation")?;
    let allocation = match as_str(allocation_node)? {
        "round_robin" => ChannelAllocation::RoundRobin,
        "contiguous" => ChannelAllocation::Contiguous,
        "ring_stratified" => ChannelAllocation::RingStratified,
        _ => {
            return Err(ParseError::node(
                allocation_node,
                "an allocation (`round_robin`, `contiguous` or `ring_stratified`)",
            ))
        }
    };

    let traffic = decode_traffic(o.get("traffic")?)?;

    let bo_node = o.get("beacon_order")?;
    let beacon_order = BeaconOrder::new(as_u8(bo_node)?)
        .map_err(|_| ParseError::node(bo_node, "a beacon order in 0..=14"))?;

    let csma_node = o.get("csma")?;
    let mut co = ObjReader::new(csma_node, "`csma`")?;
    let csma = CsmaParams {
        min_be: as_u8(co.get("min_be")?)?,
        max_be: as_u8(co.get("max_be")?)?,
        max_backoffs: as_u8(co.get("max_backoffs")?)?,
        cw: as_u8(co.get("cw")?)?,
    };
    co.finish()?;

    let nmax_node = o.get("max_transmissions")?;
    let n_max = as_u32(nmax_node)?;
    if n_max == 0 {
        return Err(ParseError::node(nmax_node, "at least one transmission"));
    }
    let retries = RetryPolicy::new(n_max);

    let superframes = as_u32(o.get("superframes")?)?;
    let replications = as_u32(o.get("replications")?)?;
    let seed = as_u64(o.get("seed")?)?;

    let radio_node = o.get("radio")?;
    let radio = match as_str(radio_node)? {
        "cc2420" => RadioModel::cc2420(),
        _ => return Err(ParseError::node(radio_node, "the radio name `cc2420`")),
    };

    let tx_policy = decode_tx_policy(o.get("tx_policy")?)?;
    let coordinator_tx = DBm::new(as_f64(o.get("coordinator_tx_dbm")?)?);
    let wakeup_margin = Seconds::from_secs(as_f64(o.get("wakeup_margin_s")?)?);
    let ber = decode_ber(o.get("ber")?)?;

    let channel_ber_node = o.get("channel_ber")?;
    let channel_ber = if is_null(channel_ber_node) {
        None
    } else {
        Some(
            as_arr(channel_ber_node)?
                .iter()
                .map(decode_ber)
                .collect::<Result<Vec<_>, _>>()?,
        )
    };

    let offsets_node = o.get("channel_loss_offsets_db")?;
    let channel_loss_offsets_db = if is_null(offsets_node) {
        None
    } else {
        Some(
            as_arr(offsets_node)?
                .iter()
                .map(as_f64)
                .collect::<Result<Vec<_>, _>>()?,
        )
    };

    let min_cap_slots = as_u8(o.get("min_cap_slots")?)?;
    let synchronized_arrivals = as_bool(o.get("synchronized_arrivals")?)?;
    let faults = decode_faults(o.get("faults")?)?;
    let shards = as_usize(o.get("shards")?)?.max(1);

    let policy_node = o.get("policy")?;
    let policy = if is_null(policy_node) {
        None
    } else {
        Some(decode_policy(policy_node)?)
    };

    o.finish()?;

    Ok(SavedScenario {
        scenario: Scenario {
            name,
            channels,
            nodes_per_channel,
            deployment,
            allocation,
            traffic,
            beacon_order,
            csma,
            retries,
            superframes,
            replications,
            seed,
            radio,
            tx_policy,
            coordinator_tx,
            wakeup_margin,
            ber,
            channel_ber,
            channel_loss_offsets_db,
            min_cap_slots,
            synchronized_arrivals,
            faults,
            shards,
        },
        policy,
    })
}

/// Parses and decodes a saved-scenario document.
///
/// # Errors
///
/// Returns a [`ParseError`] — syntax, duplicate keys, unknown/missing
/// fields, wrong types, unsupported format tag — at the offending source
/// position. Never panics on malformed input.
pub fn load_scenario(text: &str) -> Result<SavedScenario, ParseError> {
    decode_scenario(&parse_document(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TrafficSpec;

    fn sample() -> SavedScenario {
        let scenario = Scenario::new(
            "sample",
            4,
            10,
            DeploymentSpec::Rings {
                radii_m: vec![5.0, 12.5, 20.0, 28.0],
                exponent: 3.0,
                shadowing_db: 2.5,
            },
        )
        .with_allocation(ChannelAllocation::Contiguous)
        .with_traffic(
            TrafficSpec::per_channel(vec![40, 80, 120, 123])
                .with_gts(1)
                .with_gts_demand(3)
                .with_downlink(0.25),
        )
        .with_channel_ber(vec![
            BerChoice::EmpiricalCc2420,
            BerChoice::HardDecisionDsss {
                noise_figure_db: 23.0,
            },
            BerChoice::StandardOqpsk {
                noise_figure_db: 24.5,
            },
            BerChoice::EmpiricalCc2420,
        ])
        .with_channel_loss_offsets(vec![0.0, 1.5, -2.0, 0.75])
        .with_faults(
            FaultPlan::inert()
                .with_churn(0.02, 1, 3)
                .with_outages(0.1, 2)
                .with_drift(3.0, 6)
                .with_bursts(4, 0.5),
        )
        .with_seed(0xDEAD_BEEF_CAFE_F00D)
        .with_replications(3);
        SavedScenario {
            scenario,
            policy: Some(PolicyChoice::Greedy {
                rounds: 6,
                max_moves: 4,
                tolerance: 0.02,
                move_cost: 0.01,
            }),
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let saved = sample();
        let text = save_scenario(&saved).unwrap();
        let loaded = load_scenario(&text).unwrap();
        assert_eq!(loaded, saved);
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let saved = sample();
        let text = save_scenario(&saved).unwrap();
        let again = save_scenario(&load_scenario(&text).unwrap()).unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn seeds_beyond_f64_precision_survive() {
        let mut saved = SavedScenario::open_loop(Scenario::paper_case_study());
        // 2^63 + 3: not representable as f64.
        saved.scenario.seed = 9_223_372_036_854_775_811;
        let text = save_scenario(&saved).unwrap();
        assert_eq!(
            load_scenario(&text).unwrap().scenario.seed,
            9_223_372_036_854_775_811
        );
    }

    #[test]
    fn per_node_tx_policy_round_trips() {
        let mut saved = SavedScenario::open_loop(
            Scenario::new(
                "per-node",
                1,
                3,
                DeploymentSpec::UniformLossGrid {
                    min_db: 60.0,
                    max_db: 80.0,
                },
            ),
        );
        saved.scenario.tx_policy = TxPowerPolicy::PerNode(
            vec![TxPowerLevel::Neg25, TxPowerLevel::Neg5, TxPowerLevel::Zero].into(),
        );
        let text = save_scenario(&saved).unwrap();
        assert_eq!(load_scenario(&text).unwrap(), saved);
    }

    #[test]
    fn unknown_fields_are_rejected_with_position() {
        let mut text = save_scenario(&sample()).unwrap();
        text = text.replacen("\"name\":", "\"namex\": 1,\n  \"name\":", 1);
        let err = load_scenario(&text).unwrap_err();
        assert!(err.expected.contains("no field `namex`"), "{err}");
        assert!(err.line >= 2, "{err}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let text = "{\"format\": 1, \"format\": 1}";
        let err = load_scenario(text).unwrap_err();
        assert!(err.expected.contains("duplicate key `format`"), "{err}");
    }

    #[test]
    fn missing_fields_are_rejected() {
        let err = load_scenario("{\"format\": 1}").unwrap_err();
        assert!(err.expected.contains("field `name`"), "{err}");
    }

    #[test]
    fn wrong_types_are_rejected() {
        let mut text = save_scenario(&sample()).unwrap();
        text = text.replacen("\"channels\": 4", "\"channels\": \"four\"", 1);
        let err = load_scenario(&text).unwrap_err();
        assert!(err.expected.contains("integer"), "{err}");
    }

    #[test]
    fn truncated_documents_are_rejected() {
        let text = save_scenario(&sample()).unwrap();
        for cut in [1, text.len() / 4, text.len() / 2, text.len() - 2] {
            let trunc: String = text.chars().take(cut).collect();
            assert!(load_scenario(&trunc).is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn future_formats_are_rejected() {
        let mut text = save_scenario(&sample()).unwrap();
        text = text.replacen("\"format\": 1", "\"format\": 2", 1);
        let err = load_scenario(&text).unwrap_err();
        assert!(err.expected.contains("format 1"), "{err}");
    }

    #[test]
    fn parse_error_positions_point_at_the_token() {
        let err = parse_document("{\n  \"a\": [1, 2,\n}").unwrap_err();
        assert_eq!((err.line, err.col), (3, 1), "{err}");
    }

    #[test]
    fn compact_render_round_trips() {
        let node = encode_scenario(&sample()).unwrap();
        let compact = render_compact(&node);
        assert!(!compact.contains('\n'));
        let reparsed = parse_document(&compact).unwrap();
        assert_eq!(decode_scenario(&reparsed).unwrap(), sample());
    }

    #[test]
    fn non_cc2420_radios_are_unsupported() {
        let mut saved = SavedScenario::open_loop(Scenario::paper_case_study());
        saved.scenario.radio = wsn_radio::RadioModel::builder()
            .transition_scale(0.5)
            .build();
        assert_eq!(
            save_scenario(&saved).unwrap_err(),
            SaveError::UnsupportedRadio
        );
    }
}
