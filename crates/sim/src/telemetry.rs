//! Process-wide metrics for the engine → runner → farm stack,
//! deterministically inert by construction.
//!
//! The registry holds two strictly separated sections (the
//! `BENCH_scale.json` deterministic-vs-timing line split, promoted to a
//! schema rule — see `SCHEMA.md` § OBSERVABILITY):
//!
//! * **Deterministic** ([`MetricSet`]): monotonic `u64` counters,
//!   max-merged gauges and log₂-bucketed histograms ([`Hist`]). Every
//!   merge operation is a commutative, associative integer fold, so the
//!   totals are bit-identical for every worker count and every shard
//!   arrival order — the same merge-algebra discipline as the
//!   accumulator shards in [`crate::stats`].
//! * **Timing** ([`TimingSet`]): wall-clock span statistics
//!   ([`TimingStat`]) and pool-occupancy gauges. These depend on the
//!   host and scheduling and are emitted as a *separate* JSONL record so
//!   downstream tooling can diff the deterministic records alone.
//!
//! The inertness contract: telemetry draws from no RNG stream and only
//! *reads* values the simulation already computed, so a metrics-enabled
//! run is bit-identical on every simulation output to a metrics-disabled
//! one (pinned by the `telemetry_inert` suite). When disabled — the
//! default — the hot-path cost is one relaxed atomic load per run plus a
//! branch on an `Option` handle per event; `bench_core` guards the
//! overhead.
//!
//! Shards: the engine accumulates into a private [`EngineMetrics`] per
//! simulation run and folds it into the global registry once at the end
//! (one mutex acquisition per run); runner workers accumulate per-job
//! wall statistics locally and flush once per worker. Since the merges
//! commute, the global deterministic totals do not depend on which
//! worker ran which job.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::persist::{json, render_compact, Node};

/// Version key carried by every metrics record (`"telemetry"`).
pub const TELEMETRY_VERSION: u64 = 1;

/// Number of log₂ histogram buckets: bucket 0 counts exact zeros and
/// bucket `b ≥ 1` counts values `2^(b-1) ≤ v < 2^b`, up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

// ---------------------------------------------------------------------------
// Deterministic primitives
// ---------------------------------------------------------------------------

/// A log₂-bucketed histogram over `u64` samples.
///
/// All fields are unsigned integers and [`merge`](Self::merge) is a
/// field-wise add (max for `max`), so histogram shards form a
/// commutative monoid: merge order never changes the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating — a practical impossibility to
    /// overflow, but saturation keeps the merge total-ordered anyway).
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Bucket counts; see [`HIST_BUCKETS`] for the bucket rule.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    /// The empty histogram.
    pub const NEW: Hist = Hist {
        count: 0,
        sum: 0,
        max: 0,
        buckets: [0; HIST_BUCKETS],
    };

    /// Bucket index of `v`: 0 for 0, otherwise `floor(log2(v)) + 1`.
    pub fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Folds `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// JSON form: `{"count","sum","max","buckets":[…]}` with the bucket
    /// array trimmed after the last nonzero bucket (empty when empty).
    pub fn to_json(&self) -> Node {
        let last = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        json::obj(vec![
            ("count", json::uint(self.count)),
            ("sum", json::uint(self.sum)),
            ("max", json::uint(self.max)),
            (
                "buckets",
                json::arr(self.buckets[..last].iter().map(|&b| json::uint(b)).collect()),
            ),
        ])
    }
}

impl Default for Hist {
    fn default() -> Self {
        Hist::NEW
    }
}

// ---------------------------------------------------------------------------
// Deterministic section
// ---------------------------------------------------------------------------

/// Engine-layer metrics: one shard per simulation run, folded into the
/// global registry at run end. Counts cover the whole horizon (warm-up
/// included) for event/queue metrics; attempt, transaction and downlink
/// metrics mirror the accumulators and count the recorded (post-warm-up)
/// window only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Simulation runs folded into this set.
    pub runs: u64,
    /// Events popped and dispatched (all kinds, warm-up included).
    pub events: u64,
    /// Beacon events.
    pub ev_beacon: u64,
    /// Packet-arrival events.
    pub ev_arrival: u64,
    /// CCA (clear-channel assessment) events.
    pub ev_cca: u64,
    /// Transmission-end events.
    pub ev_tx_end: u64,
    /// Contention-free (GTS) uplink slot events.
    pub ev_gts: u64,
    /// Downlink poll events.
    pub ev_dl_poll: u64,
    /// Recorded uplink attempts that were delivered.
    pub attempts_delivered: u64,
    /// Recorded uplink attempts lost to same-slot collision.
    pub attempts_collided: u64,
    /// Recorded uplink attempts lost to FCS corruption.
    pub attempts_corrupted: u64,
    /// Recorded uplink attempts abandoned at channel-access failure.
    pub attempts_access_failure: u64,
    /// Recorded transactions (delivered or finally failed).
    pub transactions: u64,
    /// Recorded transactions that delivered.
    pub transactions_delivered: u64,
    /// Calendar-queue pushes.
    pub queue_pushes: u64,
    /// Calendar-queue pops. Window growths are *not* here: a ring only
    /// grows the first time a workspace sees a long horizon, so the
    /// count follows workspace reuse (scheduling) and lives in
    /// [`TimingSet`].
    pub queue_pops: u64,
    /// Bitmap cursor skip distances in ring slots (one sample per pop
    /// that found its slot empty and hopped).
    pub queue_skip_slots: Hist,
    /// Same-slot transmission cohort sizes (collision cohorts are the
    /// samples ≥ 2).
    pub cohort_size: Hist,
    /// CCAs performed per recorded uplink attempt (the CSMA backoff
    /// stage reached, since each failed CCA escalates the stage).
    pub ccas_per_attempt: Hist,
    /// Contention duration per recorded uplink attempt, in backoff slots.
    pub contention_slots: Hist,
    /// Attempts consumed per recorded transaction.
    pub attempts_per_transaction: Hist,
}

impl EngineMetrics {
    /// The zeroed shard.
    pub const NEW: EngineMetrics = EngineMetrics {
        runs: 0,
        events: 0,
        ev_beacon: 0,
        ev_arrival: 0,
        ev_cca: 0,
        ev_tx_end: 0,
        ev_gts: 0,
        ev_dl_poll: 0,
        attempts_delivered: 0,
        attempts_collided: 0,
        attempts_corrupted: 0,
        attempts_access_failure: 0,
        transactions: 0,
        transactions_delivered: 0,
        queue_pushes: 0,
        queue_pops: 0,
        queue_skip_slots: Hist::NEW,
        cohort_size: Hist::NEW,
        ccas_per_attempt: Hist::NEW,
        contention_slots: Hist::NEW,
        attempts_per_transaction: Hist::NEW,
    };

    /// Folds `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.runs += other.runs;
        self.events += other.events;
        self.ev_beacon += other.ev_beacon;
        self.ev_arrival += other.ev_arrival;
        self.ev_cca += other.ev_cca;
        self.ev_tx_end += other.ev_tx_end;
        self.ev_gts += other.ev_gts;
        self.ev_dl_poll += other.ev_dl_poll;
        self.attempts_delivered += other.attempts_delivered;
        self.attempts_collided += other.attempts_collided;
        self.attempts_corrupted += other.attempts_corrupted;
        self.attempts_access_failure += other.attempts_access_failure;
        self.transactions += other.transactions;
        self.transactions_delivered += other.transactions_delivered;
        self.queue_pushes += other.queue_pushes;
        self.queue_pops += other.queue_pops;
        self.queue_skip_slots.merge(&other.queue_skip_slots);
        self.cohort_size.merge(&other.cohort_size);
        self.ccas_per_attempt.merge(&other.ccas_per_attempt);
        self.contention_slots.merge(&other.contention_slots);
        self.attempts_per_transaction
            .merge(&other.attempts_per_transaction);
    }

    fn to_json(&self) -> Node {
        json::obj(vec![
            ("runs", json::uint(self.runs)),
            ("events", json::uint(self.events)),
            (
                "events_by_kind",
                json::obj(vec![
                    ("beacon", json::uint(self.ev_beacon)),
                    ("arrival", json::uint(self.ev_arrival)),
                    ("cca", json::uint(self.ev_cca)),
                    ("tx_end", json::uint(self.ev_tx_end)),
                    ("gts", json::uint(self.ev_gts)),
                    ("dl_poll", json::uint(self.ev_dl_poll)),
                ]),
            ),
            (
                "attempts",
                json::obj(vec![
                    ("delivered", json::uint(self.attempts_delivered)),
                    ("collided", json::uint(self.attempts_collided)),
                    ("corrupted", json::uint(self.attempts_corrupted)),
                    ("access_failure", json::uint(self.attempts_access_failure)),
                ]),
            ),
            (
                "transactions",
                json::obj(vec![
                    ("total", json::uint(self.transactions)),
                    ("delivered", json::uint(self.transactions_delivered)),
                ]),
            ),
            (
                "queue",
                json::obj(vec![
                    ("pushes", json::uint(self.queue_pushes)),
                    ("pops", json::uint(self.queue_pops)),
                    ("skip_slots", self.queue_skip_slots.to_json()),
                ]),
            ),
            ("cohort_size", self.cohort_size.to_json()),
            ("ccas_per_attempt", self.ccas_per_attempt.to_json()),
            ("contention_slots", self.contention_slots.to_json()),
            (
                "attempts_per_transaction",
                self.attempts_per_transaction.to_json(),
            ),
        ])
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::NEW
    }
}

/// Runner-layer deterministic metrics. The total *job* count is a
/// property of the work list, not of scheduling, so it stays in the
/// deterministic section; the `map` call count is not (the farm sizes
/// its waves from the worker count), so it lives in [`TimingSet`] along
/// with pool occupancy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunnerMetrics {
    /// Jobs executed across all maps.
    pub jobs: u64,
}

impl RunnerMetrics {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &RunnerMetrics) {
        self.jobs += other.jobs;
    }

    fn to_json(&self) -> Node {
        json::obj(vec![("jobs", json::uint(self.jobs))])
    }
}

/// Policy-loop deterministic metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyMetrics {
    /// Policy rounds executed.
    pub rounds: u64,
    /// Channel moves across all rounds.
    pub moves: u64,
    /// Moves per round.
    pub moves_per_round: Hist,
    /// Absolute round-over-round change of the worst-channel failure
    /// ratio, in permille (×1000, rounded) — the convergence signal.
    pub convergence_delta_permille: Hist,
}

impl PolicyMetrics {
    /// The zeroed set.
    pub const NEW: PolicyMetrics = PolicyMetrics {
        rounds: 0,
        moves: 0,
        moves_per_round: Hist::NEW,
        convergence_delta_permille: Hist::NEW,
    };

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &PolicyMetrics) {
        self.rounds += other.rounds;
        self.moves += other.moves;
        self.moves_per_round.merge(&other.moves_per_round);
        self.convergence_delta_permille
            .merge(&other.convergence_delta_permille);
    }

    fn to_json(&self) -> Node {
        json::obj(vec![
            ("rounds", json::uint(self.rounds)),
            ("moves", json::uint(self.moves)),
            ("moves_per_round", self.moves_per_round.to_json()),
            (
                "convergence_delta_permille",
                self.convergence_delta_permille.to_json(),
            ),
        ])
    }
}

impl Default for PolicyMetrics {
    fn default() -> Self {
        PolicyMetrics::NEW
    }
}

/// Farm-layer deterministic metrics: batch outcome tallies. Wave counts
/// (sized from the worker pool) and sink counters (shaped by network
/// weather) are *not* here — they live in [`TimingSet`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FarmMetrics {
    /// Scenarios known to the farm (skipped ones included); max-merged
    /// gauge, so concurrent farms report the largest.
    pub total_scenarios: u64,
    /// Scenarios that completed ok.
    pub ok: u64,
    /// Scenarios that failed (panicked past the retry budget).
    pub failed: u64,
    /// Scenarios that hit the wall-clock watchdog.
    pub timeout: u64,
    /// Scenarios skipped by `--resume` (journal said done).
    pub skipped: u64,
    /// Extra attempts spent on panicking scenarios (retry budget draws).
    pub retries: u64,
}

impl FarmMetrics {
    /// Folds `other` into `self` (adds; `total_scenarios` merges by max).
    pub fn merge(&mut self, other: &FarmMetrics) {
        self.total_scenarios = self.total_scenarios.max(other.total_scenarios);
        self.ok += other.ok;
        self.failed += other.failed;
        self.timeout += other.timeout;
        self.skipped += other.skipped;
        self.retries += other.retries;
    }

    fn to_json(&self) -> Node {
        json::obj(vec![
            ("total_scenarios", json::uint(self.total_scenarios)),
            ("ok", json::uint(self.ok)),
            ("failed", json::uint(self.failed)),
            ("timeout", json::uint(self.timeout)),
            ("skipped", json::uint(self.skipped)),
            ("retries", json::uint(self.retries)),
        ])
    }
}

/// The full deterministic section: every value is bit-identical across
/// 1/2/4 worker threads, shard orderings and wave splits, because every
/// merge is a commutative integer fold over a fixed job set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSet {
    /// Engine-layer metrics.
    pub engine: EngineMetrics,
    /// Runner-layer metrics.
    pub runner: RunnerMetrics,
    /// Policy-loop metrics.
    pub policy: PolicyMetrics,
    /// Farm-layer metrics.
    pub farm: FarmMetrics,
}

impl MetricSet {
    /// The zeroed registry section.
    pub const NEW: MetricSet = MetricSet {
        engine: EngineMetrics::NEW,
        runner: RunnerMetrics { jobs: 0 },
        policy: PolicyMetrics::NEW,
        farm: FarmMetrics {
            total_scenarios: 0,
            ok: 0,
            failed: 0,
            timeout: 0,
            skipped: 0,
            retries: 0,
        },
    };

    /// Folds `other` into `self` (commutative, associative).
    pub fn merge(&mut self, other: &MetricSet) {
        self.engine.merge(&other.engine);
        self.runner.merge(&other.runner);
        self.policy.merge(&other.policy);
        self.farm.merge(&other.farm);
    }

    /// The deterministic snapshot record (one JSONL object; see
    /// `SCHEMA.md` § OBSERVABILITY). `last` marks the end-of-run
    /// snapshot — the one whose bytes are thread-count invariant
    /// (intermediate snapshots land on wave boundaries, which depend on
    /// the worker count).
    pub fn to_json(&self, last: bool) -> Node {
        json::obj(vec![
            ("telemetry", json::uint(TELEMETRY_VERSION)),
            ("section", json::string("deterministic")),
            ("final", json::boolean(last)),
            ("engine", self.engine.to_json()),
            ("runner", self.runner.to_json()),
            ("policy", self.policy.to_json()),
            ("farm", self.farm.to_json()),
        ])
    }
}

impl Default for MetricSet {
    fn default() -> Self {
        MetricSet::NEW
    }
}

// ---------------------------------------------------------------------------
// Timing section (nondeterministic)
// ---------------------------------------------------------------------------

/// Wall-clock statistics for one span kind. Host- and scheduling-
/// dependent; never mixed into the deterministic section.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStat {
    /// Spans recorded.
    pub count: u64,
    /// Total wall-clock milliseconds.
    pub total_ms: f64,
    /// Shortest span, ms (0.0 while empty).
    pub min_ms: f64,
    /// Longest span, ms.
    pub max_ms: f64,
}

impl TimingStat {
    /// The empty statistic.
    pub const NEW: TimingStat = TimingStat {
        count: 0,
        total_ms: 0.0,
        min_ms: 0.0,
        max_ms: 0.0,
    };

    /// Records one span of `ms` milliseconds.
    pub fn record(&mut self, ms: f64) {
        self.min_ms = if self.count == 0 { ms } else { self.min_ms.min(ms) };
        self.count += 1;
        self.total_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &TimingStat) {
        if other.count == 0 {
            return;
        }
        self.min_ms = if self.count == 0 {
            other.min_ms
        } else {
            self.min_ms.min(other.min_ms)
        };
        self.count += other.count;
        self.total_ms += other.total_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    fn to_json(&self) -> Node {
        json::obj(vec![
            ("count", json::uint(self.count)),
            ("total_ms", json::num(self.total_ms)),
            ("min_ms", json::num(self.min_ms)),
            ("max_ms", json::num(self.max_ms)),
        ])
    }
}

impl Default for TimingStat {
    fn default() -> Self {
        TimingStat::NEW
    }
}

/// A wall-clock span kind; see [`Span`] and [`record_phase_ms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// One runner job.
    Job,
    /// One `Runner::map` call, queue-to-join.
    Map,
    /// One policy round (its full scenario grid).
    PolicyRound,
    /// One farm wave.
    Wave,
    /// One whole batch farm.
    Batch,
}

/// The nondeterministic section: wall-clock spans, pool occupancy, and
/// the counters whose values depend on the execution environment rather
/// than the job set — `Runner::map` calls and farm waves (both sized
/// from the worker count) and the result-sink retry counters (shaped by
/// network behaviour).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimingSet {
    /// Per-job wall clock.
    pub job: TimingStat,
    /// Per-map wall clock.
    pub map: TimingStat,
    /// Per-policy-round wall clock.
    pub policy_round: TimingStat,
    /// Per-wave wall clock.
    pub wave: TimingStat,
    /// Whole-batch wall clock.
    pub batch: TimingStat,
    /// Largest worker count any map ran with (pool occupancy gauge —
    /// thread-count dependent by definition, hence in this section).
    pub peak_workers: u64,
    /// `Runner::map`/`map_catching` invocations (the farm sizes waves —
    /// and therefore map calls — from the worker count).
    pub maps: u64,
    /// Farm waves dispatched.
    pub waves: u64,
    /// Calendar-ring window growths (reallocation + relink). A ring
    /// grows the first time its workspace sees a long horizon, so the
    /// count follows workspace reuse — scheduling, not the job set.
    pub queue_window_growths: u64,
    /// Sink connect retries (folded from `SinkCounters`).
    pub sink_connect_retries: u64,
    /// Sink reconnects after an established connection dropped.
    pub sink_reconnects: u64,
    /// Lines spilled to the sink overflow queue.
    pub sink_spilled_lines: u64,
    /// Lines drained back out of the overflow queue.
    pub sink_drained_lines: u64,
}

impl TimingSet {
    /// The empty set.
    pub const NEW: TimingSet = TimingSet {
        job: TimingStat::NEW,
        map: TimingStat::NEW,
        policy_round: TimingStat::NEW,
        wave: TimingStat::NEW,
        batch: TimingStat::NEW,
        peak_workers: 0,
        maps: 0,
        waves: 0,
        queue_window_growths: 0,
        sink_connect_retries: 0,
        sink_reconnects: 0,
        sink_spilled_lines: 0,
        sink_drained_lines: 0,
    };

    fn stat_mut(&mut self, phase: Phase) -> &mut TimingStat {
        match phase {
            Phase::Job => &mut self.job,
            Phase::Map => &mut self.map,
            Phase::PolicyRound => &mut self.policy_round,
            Phase::Wave => &mut self.wave,
            Phase::Batch => &mut self.batch,
        }
    }

    /// The timing snapshot record (one JSONL object). `events` is the
    /// deterministic engine event count, used for the derived
    /// `events_per_sec` rate (aggregate per-worker CPU rate over the
    /// summed job wall); `last` mirrors the deterministic record's flag.
    pub fn to_json(&self, events: u64, last: bool) -> Node {
        let jobs_per_sec = if self.job.total_ms > 0.0 {
            self.job.count as f64 / (self.job.total_ms / 1e3)
        } else {
            0.0
        };
        let events_per_sec = if self.job.total_ms > 0.0 {
            events as f64 / (self.job.total_ms / 1e3)
        } else {
            0.0
        };
        json::obj(vec![
            ("telemetry", json::uint(TELEMETRY_VERSION)),
            ("section", json::string("timing")),
            ("final", json::boolean(last)),
            (
                "phases",
                json::obj(vec![
                    ("job", self.job.to_json()),
                    ("map", self.map.to_json()),
                    ("policy_round", self.policy_round.to_json()),
                    ("wave", self.wave.to_json()),
                    ("batch", self.batch.to_json()),
                ]),
            ),
            (
                "pool",
                json::obj(vec![
                    ("peak_workers", json::uint(self.peak_workers)),
                    ("maps", json::uint(self.maps)),
                    ("waves", json::uint(self.waves)),
                    ("queue_window_growths", json::uint(self.queue_window_growths)),
                ]),
            ),
            (
                "sink",
                json::obj(vec![
                    ("connect_retries", json::uint(self.sink_connect_retries)),
                    ("reconnects", json::uint(self.sink_reconnects)),
                    ("spilled_lines", json::uint(self.sink_spilled_lines)),
                    ("drained_lines", json::uint(self.sink_drained_lines)),
                ]),
            ),
            (
                "rates",
                json::obj(vec![
                    ("jobs_per_sec", json::num(jobs_per_sec)),
                    ("events_per_sec", json::num(events_per_sec)),
                ]),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// The global registry
// ---------------------------------------------------------------------------

struct Registry {
    det: MetricSet,
    timing: TimingSet,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Registry> = Mutex::new(Registry {
    det: MetricSet::NEW,
    timing: TimingSet::NEW,
});

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    // A panic while holding this lock means a telemetry bug; recovering
    // the data beats poisoning every later run.
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turns collection on or off process-wide. Off (the default) reduces
/// every instrumentation site to a relaxed atomic load and a never-taken
/// branch; existing accumulated values are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` while collection is on (one relaxed atomic load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes both registry sections (test isolation and run boundaries).
pub fn reset() {
    let mut reg = registry();
    reg.det = MetricSet::NEW;
    reg.timing = TimingSet::NEW;
}

/// Clones the deterministic section.
pub fn snapshot() -> MetricSet {
    registry().det.clone()
}

/// Clones the timing section.
pub fn timing_snapshot() -> TimingSet {
    registry().timing.clone()
}

/// Renders the two snapshot records as compact JSON lines
/// (deterministic first, timing second), under one lock acquisition.
pub fn snapshot_lines(last: bool) -> (String, String) {
    let reg = registry();
    let det = render_compact(&reg.det.to_json(last));
    let timing = render_compact(&reg.timing.to_json(reg.det.engine.events, last));
    (det, timing)
}

/// Folds an engine run shard into the registry (one lock per run).
/// `window_growths` rides along into the timing section — ring growth
/// follows workspace reuse, so it is scheduling-dependent.
pub fn merge_engine(shard: &EngineMetrics, window_growths: u64) {
    let mut reg = registry();
    reg.det.engine.merge(shard);
    reg.timing.queue_window_growths += window_growths;
}

/// Notes one `Runner::map`: the job count (deterministic) and the map
/// call itself plus the worker count it ran with (timing-section pool
/// gauges — wave splitting makes the call count scheduling-dependent).
pub fn note_map(jobs: u64, workers: u64) {
    let mut reg = registry();
    reg.det.runner.jobs += jobs;
    reg.timing.maps += 1;
    reg.timing.peak_workers = reg.timing.peak_workers.max(workers);
}

/// Notes one policy round: moves made, the round-over-round worst-channel
/// failure delta (permille; `None` for the first round) and its grid wall.
pub fn note_policy_round(moves: u64, delta_permille: Option<u64>, wall_ms: f64) {
    let mut reg = registry();
    reg.det.policy.rounds += 1;
    reg.det.policy.moves += moves;
    reg.det.policy.moves_per_round.record(moves);
    if let Some(delta) = delta_permille {
        reg.det.policy.convergence_delta_permille.record(delta);
    }
    reg.timing.policy_round.record(wall_ms);
}

/// Notes a farm starting: its scenario population and how many the
/// resume journal skipped.
pub fn note_farm_start(total: u64, skipped: u64) {
    let mut reg = registry();
    reg.det.farm.total_scenarios = reg.det.farm.total_scenarios.max(total);
    reg.det.farm.skipped += skipped;
}

/// How one farm scenario ended; see [`note_farm_record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FarmOutcome {
    /// Completed ok.
    Ok,
    /// Panicked past the retry budget.
    Failed,
    /// Hit the wall-clock watchdog.
    Timeout,
}

/// Notes one completed farm scenario and the extra attempts its retry
/// budget consumed.
pub fn note_farm_record(outcome: FarmOutcome, extra_attempts: u64) {
    let mut reg = registry();
    match outcome {
        FarmOutcome::Ok => reg.det.farm.ok += 1,
        FarmOutcome::Failed => reg.det.farm.failed += 1,
        FarmOutcome::Timeout => reg.det.farm.timeout += 1,
    }
    reg.det.farm.retries += extra_attempts;
}

/// Notes one dispatched farm wave and its wall clock (timing section:
/// wave count follows the worker pool).
pub fn note_wave(wall_ms: f64) {
    let mut reg = registry();
    reg.timing.waves += 1;
    reg.timing.wave.record(wall_ms);
}

/// Folds a result sink's end-of-farm counters into the registry (timing
/// section: retry counts follow network behaviour, not the job set).
pub fn note_sink_counters(connect_retries: u64, reconnects: u64, spilled: u64, drained: u64) {
    let mut reg = registry();
    reg.timing.sink_connect_retries += connect_retries;
    reg.timing.sink_reconnects += reconnects;
    reg.timing.sink_spilled_lines += spilled;
    reg.timing.sink_drained_lines += drained;
}

/// Records one pre-measured wall-clock span.
pub fn record_phase_ms(phase: Phase, ms: f64) {
    registry().timing.stat_mut(phase).record(ms);
}

/// Folds a worker-local per-job [`TimingStat`] shard into the registry
/// (one lock per worker per map instead of one per job).
pub fn merge_job_timing(stat: &TimingStat) {
    registry().timing.job.merge(stat);
}

/// A span-style timing scope: measures from construction to drop and
/// records into the timing section — nothing at all when telemetry was
/// disabled at entry.
#[derive(Debug)]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Span {
    /// Opens a span for `phase` (inert when telemetry is disabled).
    pub fn enter(phase: Phase) -> Span {
        Span {
            phase,
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_phase_ms(self.phase, start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no external entropy in tests).
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 16
    }

    fn random_set(seed: u64) -> MetricSet {
        let mut s = seed;
        let mut set = MetricSet::NEW;
        set.engine.runs = lcg(&mut s) % 10;
        set.engine.events = lcg(&mut s) % 100_000;
        set.engine.ev_cca = lcg(&mut s) % 50_000;
        set.engine.attempts_delivered = lcg(&mut s) % 10_000;
        for _ in 0..200 {
            set.engine.queue_skip_slots.record(lcg(&mut s) % (1 << 20));
            set.engine.cohort_size.record(lcg(&mut s) % 40);
            set.engine.ccas_per_attempt.record(lcg(&mut s) % 6);
        }
        set.runner.jobs = lcg(&mut s) % 10_000;
        set.policy.rounds = lcg(&mut s) % 20;
        set.policy.moves_per_round.record(lcg(&mut s) % 16);
        set.farm.ok = lcg(&mut s) % 1_000;
        set.farm.total_scenarios = lcg(&mut s) % 1_000;
        set
    }

    #[test]
    fn hist_buckets_follow_log2() {
        assert_eq!(Hist::bucket(0), 0);
        assert_eq!(Hist::bucket(1), 1);
        assert_eq!(Hist::bucket(2), 2);
        assert_eq!(Hist::bucket(3), 2);
        assert_eq!(Hist::bucket(4), 3);
        assert_eq!(Hist::bucket(u64::MAX), 64);
        let mut h = Hist::NEW;
        h.record(0);
        h.record(5);
        h.record(5);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 10);
        assert_eq!(h.max, 5);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 2);
    }

    #[test]
    fn merges_are_commutative_and_associative() {
        let a = random_set(1);
        let b = random_set(2);
        let c = random_set(3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must associate");
    }

    #[test]
    fn shard_order_never_changes_the_total() {
        let shards: Vec<MetricSet> = (0..6).map(|i| random_set(100 + i)).collect();
        let mut forward = MetricSet::NEW;
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = MetricSet::NEW;
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        let mut interleaved = MetricSet::NEW;
        for s in shards.iter().step_by(2).chain(shards.iter().skip(1).step_by(2)) {
            interleaved.merge(s);
        }
        assert_eq!(forward, reverse);
        assert_eq!(forward, interleaved);
        // The rendered record is therefore order-invariant too.
        assert_eq!(
            render_compact(&forward.to_json(true)),
            render_compact(&reverse.to_json(true))
        );
    }

    #[test]
    fn merging_the_identity_is_a_noop() {
        let a = random_set(7);
        let mut merged = a.clone();
        merged.merge(&MetricSet::NEW);
        assert_eq!(merged, a);
        let mut from_zero = MetricSet::NEW;
        from_zero.merge(&a);
        assert_eq!(from_zero, a);
    }

    #[test]
    fn timing_stat_merges_like_its_records() {
        let mut whole = TimingStat::NEW;
        for ms in [3.0, 1.0, 2.0, 8.0] {
            whole.record(ms);
        }
        let mut left = TimingStat::NEW;
        left.record(3.0);
        left.record(1.0);
        let mut right = TimingStat::NEW;
        right.record(2.0);
        right.record(8.0);
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole);
        merged.merge(&TimingStat::NEW);
        assert_eq!(merged, whole);
    }

    #[test]
    fn snapshot_records_split_sections_and_carry_the_version() {
        let det = render_compact(&random_set(9).to_json(true));
        let timing = render_compact(&TimingSet::NEW.to_json(0, true));
        assert!(det.starts_with("{\"telemetry\":1,\"section\":\"deterministic\",\"final\":true"));
        assert!(timing.starts_with("{\"telemetry\":1,\"section\":\"timing\",\"final\":true"));
        assert!(!det.contains("_ms"), "no wall clocks in the deterministic record");
    }

    #[test]
    fn global_registry_accumulates_and_resets() {
        // Other tests in this process may fold their own shards while
        // telemetry happens to be enabled, so assert monotonically (≥).
        set_enabled(false);
        reset();
        let mut shard = EngineMetrics::NEW;
        shard.runs = 1;
        shard.events = 42;
        merge_engine(&shard, 0);
        let snap = snapshot();
        assert!(snap.engine.runs >= 1);
        assert!(snap.engine.events >= 42);
        reset();
        assert!(!enabled());
    }
}
