//! Full-network energy simulation: the contention engine combined with the
//! paper's radio activation policy and per-node energy ledgers.
//!
//! For every node and superframe the simulated lifecycle is the one in the
//! paper's Figure 5:
//!
//! 1. wake the chip ~1 ms before the beacon (shutdown → idle), turn the
//!    receiver on (`T_ia`) and receive the beacon;
//! 2. return to shutdown until the node's packet is ready, then wake again
//!    and run slotted CSMA/CA — idle between CCAs, receiver on for each
//!    194 µs turn-on plus the 128 µs assessment;
//! 3. transmit the packet at the node's power level;
//! 4. turn around to RX and listen for the acknowledgement (ACK duration
//!    when acknowledged, the full `t_ack⁺ − t_ack⁻` window otherwise);
//! 5. observe the interframe spacing and shut down.
//!
//! Energy is derived from the contention trace (backoff wall-time, CCA
//! counts, attempts, outcomes) — every state residency is known exactly, so
//! the ledger is bit-deterministic given the seed.

use wsn_channel::received_power;
use wsn_phy::ber::BerModel;
use wsn_phy::frame::{ack_duration, beacon_duration};
use wsn_radio::ledger::{EnergyLedger, PhaseTag};
use wsn_radio::{RadioModel, RadioState, TxPowerLevel};
use wsn_units::{DBm, Db, Power, Probability, Seconds};

use crate::contention::{run_channel_sim, AttemptOutcome, ChannelSimConfig, SimTrace};
use crate::rng::Xoshiro256StarStar;

/// Per-node transmit power assignment.
#[derive(Debug, Clone)]
pub enum TxPowerPolicy {
    /// Every node transmits at the same level.
    Fixed(TxPowerLevel),
    /// Channel inversion: each node picks the cheapest level whose received
    /// power at the coordinator is at least `target_rx`; nodes that cannot
    /// reach it use 0 dBm.
    ChannelInversion {
        /// Desired received power at the coordinator.
        target_rx: DBm,
    },
    /// Explicit per-node levels (e.g. computed by the analytical link
    /// adaptation).
    PerNode(Vec<TxPowerLevel>),
}

impl TxPowerPolicy {
    /// Resolves the policy into per-node levels.
    ///
    /// # Panics
    ///
    /// Panics if a `PerNode` assignment has the wrong length.
    pub fn resolve(&self, path_losses: &[Db]) -> Vec<TxPowerLevel> {
        match self {
            TxPowerPolicy::Fixed(level) => vec![*level; path_losses.len()],
            TxPowerPolicy::ChannelInversion { target_rx } => path_losses
                .iter()
                .map(|a| {
                    let required = DBm::new(target_rx.dbm() + a.db());
                    TxPowerLevel::cheapest_reaching(required).unwrap_or(TxPowerLevel::strongest())
                })
                .collect(),
            TxPowerPolicy::PerNode(levels) => {
                assert_eq!(
                    levels.len(),
                    path_losses.len(),
                    "per-node level count must match node count"
                );
                levels.clone()
            }
        }
    }
}

/// Configuration of the network energy simulation.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Channel/contention parameters (node count, packet, load, CSMA…).
    pub channel: ChannelSimConfig,
    /// Radio energy model.
    pub radio: RadioModel,
    /// Per-node path losses to the coordinator (length = node count).
    pub path_losses: Vec<Db>,
    /// Transmit power assignment.
    pub tx_policy: TxPowerPolicy,
    /// Coordinator transmit power (beacon and acknowledgements).
    pub coordinator_tx: DBm,
    /// How early the chip wakes before the beacon (the paper uses 1 ms to
    /// cover the ~970 µs shutdown→idle transition).
    pub wakeup_margin: Seconds,
}

impl NetworkConfig {
    /// Validates structural consistency.
    ///
    /// # Panics
    ///
    /// Panics if the path-loss vector length differs from the node count.
    fn validate(&self) {
        assert_eq!(
            self.path_losses.len(),
            self.channel.nodes,
            "one path loss per node required"
        );
    }
}

/// Aggregated results of a network simulation.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Mean average power per node over the recorded window.
    pub mean_node_power: Power,
    /// Per-node average powers.
    pub node_powers: Vec<Power>,
    /// Population energy ledger (all nodes merged) — Figure 9 material.
    pub ledger: EnergyLedger,
    /// Fraction of transactions that failed (`Pr_fail`).
    pub failure_ratio: Probability,
    /// Mean delivery delay.
    pub mean_delay: Seconds,
    /// Mean transmission attempts per transaction.
    pub mean_attempts: f64,
    /// Energy per delivered payload bit.
    pub energy_per_bit_nj: f64,
    /// The raw contention trace (for further analysis).
    pub trace: SimTrace,
}

/// The network energy simulator.
#[derive(Debug, Clone)]
pub struct NetworkSimulator {
    config: NetworkConfig,
}

impl NetworkSimulator {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally inconsistent.
    pub fn new(config: NetworkConfig) -> Self {
        config.validate();
        NetworkSimulator { config }
    }

    /// Runs the simulation against a BER model.
    pub fn run<B: BerModel>(&self, ber: &B) -> NetworkReport {
        let cfg = &self.config;
        let levels = cfg.tx_policy.resolve(&cfg.path_losses);

        // Pre-compute per-node packet and ACK corruption probabilities.
        let packet = cfg.channel.packet;
        let ack_exposed_bits = 8.0 * (11.0 - 4.0);
        let per_node_corrupt: Vec<f64> = cfg
            .path_losses
            .iter()
            .zip(&levels)
            .map(|(a, lvl)| {
                let p_rx = received_power(lvl.output_power(), *a);
                let pr_packet = ber.packet_error_probability(p_rx, packet).value();
                let p_rx_ack = received_power(cfg.coordinator_tx, *a);
                let pr_bit_ack = ber.bit_error_probability(p_rx_ack).value();
                let pr_ack = 1.0 - (1.0 - pr_bit_ack).powf(ack_exposed_bits);
                // Either direction failing costs the acknowledgement.
                1.0 - (1.0 - pr_packet) * (1.0 - pr_ack)
            })
            .collect();

        let mut noise_rng =
            Xoshiro256StarStar::seed_from_u64(cfg.channel.seed ^ 0x5EED_CAFE_F00D_u64);
        let trace = run_channel_sim(&cfg.channel, |node| {
            noise_rng.bernoulli(per_node_corrupt[node as usize])
        });

        self.account_energy(&trace, &levels)
    }

    /// Derives ledgers and the report from a contention trace.
    fn account_energy(&self, trace: &SimTrace, levels: &[TxPowerLevel]) -> NetworkReport {
        let cfg = &self.config;
        let radio = &cfg.radio;
        let n_nodes = cfg.channel.nodes;
        let recorded_superframes = cfg.channel.superframes as f64 - 1.0;
        let t_ib = cfg.channel.beacon_interval();
        let window = t_ib * recorded_superframes;

        let slot = Seconds::from_micros(320.0);
        let t_beacon = beacon_duration();
        let t_ack = ack_duration();
        let cca_sense = Seconds::from_micros(128.0);
        let noack_listen = Seconds::from_micros(864.0 - 192.0);
        let ifs = Seconds::from_micros(640.0);
        let turn_on = radio.turn_on_time();

        let mut ledgers: Vec<EnergyLedger> = vec![EnergyLedger::new(); n_nodes];

        // Fixed per-superframe beacon overhead for every node.
        for ledger in &mut ledgers {
            for _ in 0..recorded_superframes as usize {
                // Preemptive wake-up: the shutdown→idle transition (billed
                // idle) plus any margin spent in idle.
                ledger.accrue_transition(
                    radio,
                    RadioState::Shutdown,
                    RadioState::Idle,
                    PhaseTag::Beacon,
                );
                let margin = (cfg.wakeup_margin - radio.wakeup_time()).max(Seconds::ZERO);
                ledger.accrue(radio, RadioState::Idle, PhaseTag::Beacon, margin);
                ledger.accrue_transition(radio, RadioState::Idle, RadioState::Rx, PhaseTag::Beacon);
                ledger.accrue(radio, RadioState::Rx, PhaseTag::Beacon, t_beacon);
            }
        }

        // Attempt-driven activity.
        for a in &trace.attempts {
            let node = a.node as usize;
            let ledger = &mut ledgers[node];
            let level = levels[node];

            // Contention wall time: idle except for the CCA turn-ons.
            let wall = slot * a.contention_slots as f64;
            let cca_active = (turn_on + cca_sense) * a.ccas as f64;
            let idle_time = (wall - cca_active).max(Seconds::ZERO);
            ledger.accrue(radio, RadioState::Idle, PhaseTag::Contention, idle_time);
            for _ in 0..a.ccas {
                ledger.accrue_transition(
                    radio,
                    RadioState::Idle,
                    RadioState::Rx,
                    PhaseTag::Contention,
                );
                ledger.accrue_listen(radio, PhaseTag::Contention, cca_sense);
            }

            if a.outcome == AttemptOutcome::AccessFailure {
                continue;
            }

            // Transmission.
            ledger.accrue_transition(
                radio,
                RadioState::Idle,
                RadioState::Tx(level),
                PhaseTag::Transmit,
            );
            ledger.accrue(
                radio,
                RadioState::Tx(level),
                PhaseTag::Transmit,
                cfg.channel.packet.duration(),
            );

            // Acknowledgement window.
            ledger.accrue_transition(
                radio,
                RadioState::Tx(level),
                RadioState::Rx,
                PhaseTag::AckWait,
            );
            match a.outcome {
                AttemptOutcome::Delivered => {
                    ledger.accrue_listen(radio, PhaseTag::AckWait, t_ack);
                }
                AttemptOutcome::Corrupted | AttemptOutcome::Collided => {
                    ledger.accrue_listen(radio, PhaseTag::AckWait, noack_listen);
                }
                AttemptOutcome::AccessFailure => unreachable!("handled above"),
            }
            ledger.accrue(radio, RadioState::Idle, PhaseTag::Ifs, ifs);
        }

        // Second wake-up for each transaction (the node slept between the
        // beacon and its packet-ready offset).
        for t in &trace.transactions {
            ledgers[t.node as usize].accrue_transition(
                radio,
                RadioState::Shutdown,
                RadioState::Idle,
                PhaseTag::Contention,
            );
        }

        // Sleep is the remainder of the window.
        let mut node_powers = Vec::with_capacity(n_nodes);
        let mut population = EnergyLedger::new();
        for ledger in &mut ledgers {
            let active = ledger.total_time();
            let sleep = (window - active).max(Seconds::ZERO);
            ledger.accrue(radio, RadioState::Shutdown, PhaseTag::Sleep, sleep);
            node_powers.push(ledger.average_power(window));
            population.merge(ledger);
        }

        let mean_node_power = Power::from_watts(
            node_powers.iter().map(|p| p.watts()).sum::<f64>() / n_nodes.max(1) as f64,
        );

        let delivered_bits: f64 = trace.transactions.iter().filter(|t| t.delivered).count() as f64
            * cfg.channel.packet.payload_bits() as f64;
        let energy_per_bit_nj = if delivered_bits > 0.0 {
            population.total_energy().nanojoules() / delivered_bits
        } else {
            f64::INFINITY
        };

        NetworkReport {
            mean_node_power,
            node_powers,
            ledger: population,
            failure_ratio: trace.transaction_failure_ratio(),
            mean_delay: t_ib * trace.mean_delivery_superframes(),
            mean_attempts: trace.mean_attempts(),
            energy_per_bit_nj,
            trace: trace.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_phy::ber::EmpiricalCc2420Ber;
    use wsn_radio::state::StateKind;

    fn small_config(load: f64, loss_db: f64, seed: u64) -> NetworkConfig {
        let mut channel = ChannelSimConfig::figure6(120, load, seed);
        channel.nodes = 20;
        channel.superframes = 8;
        NetworkConfig {
            path_losses: vec![Db::new(loss_db); channel.nodes],
            channel,
            radio: RadioModel::cc2420(),
            tx_policy: TxPowerPolicy::ChannelInversion {
                target_rx: DBm::new(-88.0),
            },
            coordinator_tx: DBm::new(0.0),
            wakeup_margin: Seconds::from_millis(1.0),
        }
    }

    #[test]
    fn average_power_is_hundreds_of_microwatts() {
        let report =
            NetworkSimulator::new(small_config(0.4, 70.0, 1)).run(&EmpiricalCc2420Ber::paper());
        let uw = report.mean_node_power.microwatts();
        assert!(
            (50.0..1000.0).contains(&uw),
            "mean node power {uw} µW outside plausible band"
        );
    }

    #[test]
    fn sleep_dominates_time_but_not_energy() {
        let report =
            NetworkSimulator::new(small_config(0.4, 70.0, 2)).run(&EmpiricalCc2420Ber::paper());
        let fractions = report.ledger.state_time_fractions();
        let shutdown_frac = fractions
            .iter()
            .find(|(k, _)| *k == StateKind::Shutdown)
            .unwrap()
            .1;
        assert!(
            shutdown_frac > 0.90,
            "nodes should sleep ≥90 % of the time, got {shutdown_frac}"
        );
        let sleep_energy = report.ledger.energy_in_phase(PhaseTag::Sleep);
        assert!(sleep_energy < report.ledger.total_energy() * 0.05);
    }

    #[test]
    fn good_links_deliver_reliably() {
        let report =
            NetworkSimulator::new(small_config(0.2, 60.0, 3)).run(&EmpiricalCc2420Ber::paper());
        assert!(
            report.failure_ratio.value() < 0.1,
            "failure ratio {} too high for a 60 dB path",
            report.failure_ratio
        );
        assert!(report.mean_delay >= Seconds::ZERO);
        assert!(report.mean_attempts >= 1.0);
    }

    #[test]
    fn bad_links_fail_often_and_spend_more() {
        let good =
            NetworkSimulator::new(small_config(0.3, 60.0, 4)).run(&EmpiricalCc2420Ber::paper());
        // 94 dB path: even 0 dBm arrives at −94 dBm where BER is high.
        let bad =
            NetworkSimulator::new(small_config(0.3, 94.0, 4)).run(&EmpiricalCc2420Ber::paper());
        assert!(bad.failure_ratio.value() > good.failure_ratio.value());
        assert!(bad.mean_attempts > good.mean_attempts);
        assert!(bad.energy_per_bit_nj > good.energy_per_bit_nj);
    }

    #[test]
    fn channel_inversion_picks_cheapest_sufficient_level() {
        let losses = [Db::new(55.0), Db::new(75.0), Db::new(95.0)];
        let levels = TxPowerPolicy::ChannelInversion {
            target_rx: DBm::new(-88.0),
        }
        .resolve(&losses);
        assert_eq!(levels[0], TxPowerLevel::Neg25); // −25 − 55 = −80 ≥ −88
        assert_eq!(levels[1], TxPowerLevel::Neg10); // −10 − 75 = −85 ≥ −88
        assert_eq!(levels[2], TxPowerLevel::Zero); // unreachable → strongest
    }

    #[test]
    fn ledger_views_agree() {
        let report =
            NetworkSimulator::new(small_config(0.4, 75.0, 5)).run(&EmpiricalCc2420Ber::paper());
        let by_state: f64 = StateKind::ALL
            .iter()
            .map(|&k| report.ledger.energy_in(k).joules())
            .sum();
        let by_phase: f64 = PhaseTag::ALL
            .iter()
            .map(|&p| report.ledger.energy_in_phase(p).joules())
            .sum();
        assert!((by_state - by_phase).abs() < 1e-12);
    }

    #[test]
    fn deterministic_reports() {
        let a = NetworkSimulator::new(small_config(0.4, 70.0, 9)).run(&EmpiricalCc2420Ber::paper());
        let b = NetworkSimulator::new(small_config(0.4, 70.0, 9)).run(&EmpiricalCc2420Ber::paper());
        assert_eq!(a.mean_node_power, b.mean_node_power);
        assert_eq!(a.failure_ratio, b.failure_ratio);
    }

    #[test]
    #[should_panic(expected = "one path loss per node")]
    fn mismatched_losses_rejected() {
        let mut cfg = small_config(0.4, 70.0, 1);
        cfg.path_losses.pop();
        let _ = NetworkSimulator::new(cfg);
    }
}
